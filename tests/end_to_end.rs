//! Cross-crate integration: functional equivalence across memory systems.
//!
//! The strongest property of the design: workloads compute *real* results
//! over simulated memory, so every backend — local machine, the paper's
//! remote memory, remote swap, disk swap — must produce **bit-identical
//! outputs**. Timing differs wildly; answers never do.

use cohfree::core::backend::{RemoteOptions, SwapConfig, SwapTransport};
use cohfree::os::disk::DiskConfig;
use cohfree::workloads::parsec::{BlackScholes, Canneal, RayTrace, StreamCluster};
use cohfree::workloads::{BTree, HashIndex};
use cohfree::{
    AllocPolicy, ClusterConfig, LocalMachine, MemSpace, NodeId, RemoteMemorySpace, Rng, SwapSpace,
};

fn all_backends() -> Vec<(&'static str, Box<dyn MemSpace>)> {
    let cfg = ClusterConfig::prototype();
    vec![
        ("local", Box::new(LocalMachine::new(cfg, 32 << 30))),
        (
            "remote-memory",
            Box::new(RemoteMemorySpace::new(
                cfg,
                NodeId::new(1),
                AllocPolicy::AlwaysRemote,
            )),
        ),
        (
            "remote-memory-uncached",
            Box::new(RemoteMemorySpace::with_options(
                cfg,
                NodeId::new(1),
                AllocPolicy::AlwaysRemote,
                RemoteOptions {
                    cacheable: false,
                    ..RemoteOptions::default()
                },
            )),
        ),
        (
            "remote-swap-ethernet",
            Box::new(SwapSpace::remote(
                cfg,
                NodeId::new(1),
                SwapConfig {
                    cache_pages: 64,
                    ..SwapConfig::default()
                },
            )),
        ),
        (
            "remote-swap-fabric",
            Box::new(SwapSpace::remote(
                cfg,
                NodeId::new(1),
                SwapConfig {
                    cache_pages: 64,
                    transport: SwapTransport::Fabric,
                    servers: Some(vec![NodeId::new(2)]),
                    ..SwapConfig::default()
                },
            )),
        ),
        (
            "disk-swap",
            Box::new(SwapSpace::disk(
                cfg,
                NodeId::new(1),
                SwapConfig {
                    cache_pages: 64,
                    ..SwapConfig::default()
                },
                DiskConfig::default(),
            )),
        ),
    ]
}

#[test]
fn blackscholes_checksum_identical_everywhere() {
    let kernel = BlackScholes {
        options: 3_000,
        passes: 1,
        seed: 31,
    };
    let mut checksums = Vec::new();
    for (name, mut m) in all_backends() {
        let (_, c) = kernel.run(m.as_mut());
        checksums.push((name, c));
    }
    let (ref_name, reference) = checksums[0];
    for &(name, c) in &checksums {
        assert_eq!(
            c.to_bits(),
            reference.to_bits(),
            "{name} checksum differs from {ref_name}"
        );
    }
}

#[test]
fn raytrace_hits_identical_everywhere() {
    let kernel = RayTrace {
        extent: 8,
        spheres: 3_000,
        rays: 400,
        cell_capacity: 8,
        seed: 32,
    };
    let mut all = Vec::new();
    for (name, mut m) in all_backends() {
        let (_, hits) = kernel.run(m.as_mut());
        all.push((name, hits));
    }
    for &(name, h) in &all {
        assert_eq!(h, all[0].1, "{name} hit count differs");
    }
}

#[test]
fn canneal_accepted_swaps_identical_everywhere() {
    let kernel = Canneal {
        elements: 10_000,
        steps: 600,
        temperature: 100.0,
        seed: 33,
    };
    let mut all = Vec::new();
    for (name, mut m) in all_backends() {
        let (_, accepted) = kernel.run(m.as_mut());
        all.push((name, accepted));
    }
    for &(name, a) in &all {
        assert_eq!(a, all[0].1, "{name} accepted-swap count differs");
    }
}

#[test]
fn streamcluster_cost_identical_everywhere() {
    let kernel = StreamCluster {
        block_points: 256,
        dims: 8,
        centers: 4,
        blocks: 2,
        seed: 34,
    };
    let mut all = Vec::new();
    for (name, mut m) in all_backends() {
        let (_, cost) = kernel.run(m.as_mut());
        all.push((name, cost));
    }
    for &(name, c) in &all {
        assert_eq!(
            c.to_bits(),
            all[0].1.to_bits(),
            "{name} cluster cost differs"
        );
    }
}

#[test]
fn btree_answers_identical_everywhere() {
    // 2k keys, mixed present/absent probes; identical found-sets required.
    let mut rng = Rng::new(77);
    let mut keys: Vec<u64> = (0..2_500).map(|_| rng.next_u64() % 100_000).collect();
    keys.sort_unstable();
    keys.dedup();
    let probes: Vec<u64> = (0..2_000).map(|_| rng.next_u64() % 100_000).collect();

    let mut results: Vec<(&str, Vec<bool>)> = Vec::new();
    for (name, mut m) in all_backends() {
        let tree = BTree::bulk_load(m.as_mut(), &keys, 15);
        let found: Vec<bool> = probes
            .iter()
            .map(|&k| tree.search(m.as_mut(), k).found)
            .collect();
        results.push((name, found));
    }
    for (name, found) in &results {
        assert_eq!(found, &results[0].1, "{name} search answers differ");
    }
    // And the answers are correct against a host-side oracle.
    let oracle: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
    for (i, &p) in probes.iter().enumerate() {
        assert_eq!(results[0].1[i], oracle.contains(&p), "probe {p}");
    }
}

#[test]
fn hash_index_answers_identical_everywhere() {
    let mut rng = Rng::new(101);
    let pairs: Vec<(u64, u64)> = (0..2_000)
        .map(|_| (rng.below(5_000), rng.next_u64()))
        .collect();
    let probes: Vec<u64> = (0..1_000).map(|_| rng.below(5_000)).collect();

    let mut results: Vec<(&str, Vec<Option<u64>>)> = Vec::new();
    for (name, mut m) in all_backends() {
        let mut h = HashIndex::new(m.as_mut(), 8_192);
        for &(k, v) in &pairs {
            h.insert(m.as_mut(), k, v);
        }
        let got: Vec<Option<u64>> = probes.iter().map(|&k| h.get(m.as_mut(), k)).collect();
        results.push((name, got));
    }
    for (name, got) in &results {
        assert_eq!(got, &results[0].1, "{name} lookups differ");
    }
    // Oracle check.
    let mut oracle = std::collections::HashMap::new();
    for &(k, v) in &pairs {
        oracle.insert(k, v);
    }
    for (i, &p) in probes.iter().enumerate() {
        assert_eq!(results[0].1[i], oracle.get(&p).copied(), "probe {p}");
    }
}
