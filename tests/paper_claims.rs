//! The paper's central claims, asserted end-to-end through the public API.

use cohfree::core::world::ThreadSpec;
use cohfree::{
    AllocPolicy, ClusterConfig, MemSpace, MsgKind, NodeId, RemoteMemorySpace, SimDuration, SimTime,
    World,
};

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

/// "The memory granted to a process can be expanded with the memory from
/// other nodes … without increasing the number of processors used."
#[test]
fn memory_grows_without_processors() {
    let mut m = RemoteMemorySpace::new(ClusterConfig::prototype(), n(1), AllocPolicy::AlwaysRemote);
    // Allocate 3 GiB — far beyond a single node's 8 GiB pool share would
    // be exceeded with enough allocs; here we check multi-lender growth.
    for _ in 0..3 {
        m.alloc(1 << 30);
    }
    assert!(m.borrowed_bytes() >= 3 << 30);
    // The borrowing process still runs on exactly one node (one core);
    // the lenders contributed memory, not processors or caches.
    assert_eq!(m.node(), n(1));
}

/// "The size of a memory region has no impact on the performance of the
/// coherency protocol": access latency must not depend on how much memory
/// the region has aggregated.
#[test]
fn access_latency_independent_of_region_size() {
    let latency_with_zones = |gib: u64| {
        let mut w = World::new(ClusterConfig::prototype());
        // Borrow `gib` GiB spread over many donors.
        for g in 0..gib {
            let donor = n(2 + (g % 8) as u16);
            w.reserve_remote(n(1), 1 << 18, Some(donor));
        }
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let done = w.blocking_transaction(
            SimTime::ZERO,
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        done.since(SimTime::ZERO)
    };
    let small = latency_with_zones(1);
    let large = latency_with_zones(32);
    assert_eq!(small, large, "latency must not grow with aggregated memory");
}

/// "A node may extend its memory resources by borrowing memory from any
/// node in the cluster" — not just neighbors.
#[test]
fn borrowing_from_any_node_works() {
    let mut w = World::new(ClusterConfig::prototype());
    for donor in 2..=16u16 {
        let resv = w.reserve_remote(n(1), 256, Some(n(donor)));
        assert_eq!(resv.home, n(donor));
        assert_eq!((resv.prefixed_base >> 34) as u16, donor);
    }
    assert_eq!(w.region(n(1)).lenders().len(), 15);
}

/// Reservation is on the software path but accesses are pure hardware: the
/// *number of reservations* must not scale with the number of accesses.
#[test]
fn reservation_cost_is_one_time() {
    let mut m = RemoteMemorySpace::new(ClusterConfig::prototype(), n(1), AllocPolicy::AlwaysRemote);
    let va = m.alloc(32 << 20);
    let resv_before = m.stats().reservations;
    for i in 0..5_000u64 {
        m.write_u64(va + (i * 4096) % (32 << 20), i);
    }
    assert_eq!(
        m.stats().reservations,
        resv_before,
        "accesses must not reserve"
    );
    assert!(m.stats().remote_reads + m.stats().remote_writes > 0);
}

/// The overlapped loopback segment "will never happen in practice because
/// of the way memory is reserved": a donor never serves its own borrower id.
#[test]
fn reservations_never_create_loopback() {
    let mut w = World::new(ClusterConfig::prototype());
    for asker in 1..=16u16 {
        let resv = w.reserve_remote(n(asker), 64, None);
        let (prefix, _) = cohfree::rmc::addr::split(resv.prefixed_base);
        assert_ne!(prefix, asker, "donor equals asker for node {asker}");
    }
}

/// Read-only parallel phases: after a flush, data written before the flush
/// is visible at its home node (all dirty lines pushed out).
#[test]
fn flush_publishes_all_writes() {
    let mut m = RemoteMemorySpace::new(ClusterConfig::prototype(), n(1), AllocPolicy::AlwaysRemote);
    let va = m.alloc(1 << 20);
    for i in 0..1_000u64 {
        m.write_u64(va + i * 64, i);
    }
    m.flush_cache();
    // Every line written must have produced a remote write by now (either
    // a victim write-back along the way or the flush).
    let s = m.stats();
    assert!(
        s.remote_writes >= 1_000,
        "only {} remote writes for 1000 dirty lines",
        s.remote_writes
    );
    // And the data still reads back correctly afterwards.
    for i in 0..1_000u64 {
        assert_eq!(m.read_u64(va + i * 64), i);
    }
}

/// Two borrowers sharing one donor get disjoint zones and cannot observe
/// each other's data (region isolation).
#[test]
fn regions_are_isolated() {
    let cfg = ClusterConfig::prototype();
    let opts = |server| cohfree::core::backend::RemoteOptions {
        servers: Some(vec![server]),
        zone_frames: 1024,
        ..Default::default()
    };
    let mut a = RemoteMemorySpace::with_options(cfg, n(3), AllocPolicy::AlwaysRemote, opts(n(4)));
    let mut b = RemoteMemorySpace::with_options(cfg, n(5), AllocPolicy::AlwaysRemote, opts(n(4)));
    let va_a = a.alloc(1 << 20);
    let va_b = b.alloc(1 << 20);
    a.write_u64(va_a, 0xAAAA);
    b.write_u64(va_b, 0xBBBB);
    assert_eq!(a.read_u64(va_a), 0xAAAA);
    assert_eq!(b.read_u64(va_b), 0xBBBB);
    // Same donor, disjoint physical zones (the two worlds model disjoint
    // processes; their zones both live in node 4's pool).
    assert_eq!(a.world().region(n(3)).lenders(), vec![n(4)]);
    assert_eq!(b.world().region(n(5)).lenders(), vec![n(4)]);
}

/// Determinism: the same experiment with the same seed gives bit-identical
/// simulated times.
#[test]
fn whole_cluster_simulation_is_deterministic() {
    let run = || {
        let mut w = World::new(ClusterConfig::prototype());
        let resv = w.reserve_remote(n(6), 4_096, Some(n(7)));
        let ids: Vec<usize> = (0..4)
            .map(|k| {
                w.spawn_thread(
                    ThreadSpec {
                        node: n(6),
                        zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                        accesses: 500,
                        bytes: 64,
                        write_fraction: 0.3,
                        think: SimDuration::ns(5),
                        seed: 1_000 + k,
                    },
                    SimTime::ZERO,
                )
            })
            .collect();
        w.run();
        ids.iter()
            .map(|&i| w.thread_elapsed(i).as_ps())
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(), run());
}
