//! Quickstart: build the 16-node prototype, borrow remote memory, and feel
//! the difference between local and remote accesses.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cohfree::core::backend::RemoteOptions;
use cohfree::core::world::World;
use cohfree::{AllocPolicy, ClusterConfig, MemSpace, MsgKind, NodeId, RemoteMemorySpace, SimTime};

fn main() {
    // ------------------------------------------------------------------
    // 1. The cluster of the paper: 16 nodes, 4x4 mesh, 16 GiB per node of
    //    which 8 GiB join the 128 GiB shared pool.
    // ------------------------------------------------------------------
    let cfg = ClusterConfig::prototype();
    println!(
        "cluster: {} nodes, {} GiB/node, {} GiB shared pool",
        cfg.topology.num_nodes(),
        cfg.dram.node_bytes() >> 30,
        cfg.cluster_pool_bytes() >> 30,
    );

    // ------------------------------------------------------------------
    // 2. Raw transactions: node 1 reserves a zone on node 2 and reads it.
    // ------------------------------------------------------------------
    let mut w = World::new(cfg);
    let client = NodeId::new(1);
    let server = NodeId::new(2);
    let resv = w.reserve_remote(client, 1024, Some(server));
    println!(
        "reserved {} MiB on {server}; prefixed base = {:#014x} (prefix = node {})",
        (resv.frames * 4096) >> 20,
        resv.prefixed_base,
        resv.prefixed_base >> 34,
    );
    let done = w.blocking_transaction(
        SimTime::ZERO,
        client,
        server,
        MsgKind::ReadReq { bytes: 64 },
        resv.prefixed_base,
    );
    println!(
        "one 64 B remote read, 1 hop: {} (local DRAM reference: {})",
        done.since(SimTime::ZERO),
        w.memory(client).unloaded_latency(64),
    );

    // ------------------------------------------------------------------
    // 3. The process-level view: an interposed-malloc memory space whose
    //    allocations live in other nodes' memory, accessed by plain
    //    loads/stores (cached write-back, like the prototype).
    // ------------------------------------------------------------------
    let mut m = RemoteMemorySpace::with_options(
        cfg,
        client,
        AllocPolicy::AlwaysRemote,
        RemoteOptions::default(),
    );
    let va = m.alloc(64 << 20);
    println!("\nallocated 64 MiB of remote memory at VA {va:#x}");

    m.write_u64(va, 0xC0FFEE);
    let t0 = m.now();
    let v = m.read_u64(va); // cache hit
    let hit = m.now().since(t0);
    let t0 = m.now();
    m.read_u64(va + (8 << 20)); // cold line: full remote round trip
    let miss = m.now().since(t0);
    println!("read back {v:#x}: cache hit {hit}, remote miss {miss}");

    let s = m.stats();
    println!(
        "stats: {} remote reads, {} remote writes, {} reservations, cache hit ratio {:.2}",
        s.remote_reads,
        s.remote_writes,
        s.reservations,
        s.cache_hit_ratio(),
    );
    println!(
        "region of node 1 now spans {} MiB borrowed from {:?}",
        m.borrowed_bytes() >> 20,
        m.world().region(client).lenders(),
    );
}
