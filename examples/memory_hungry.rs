//! A memory-hungry application outgrowing its node — canneal-style
//! simulated annealing whose netlist exceeds local memory.
//!
//! This is the paper's headline use case: an application that cannot use
//! more cores (annealing is serial here) but needs more memory than one
//! node has. It runs with `AllocPolicy::LocalFirst`: the process fills its
//! node's private memory, then transparently spills into zones borrowed
//! from neighbors — with *no* growth in coherency traffic, because the
//! borrowed zones join node 1's coherency domain and no other node's caches
//! ever see them.
//!
//! ```sh
//! cargo run --release --example memory_hungry
//! ```

use cohfree::core::backend::RemoteOptions;
use cohfree::workloads::parsec::Canneal;
use cohfree::{AllocPolicy, ClusterConfig, MemSpace, NodeId, RemoteMemorySpace};

fn main() {
    // Shrink the node's private memory so the spill happens at example
    // scale (the mechanism is identical at 8 GiB).
    let mut cfg = ClusterConfig::prototype();
    cfg.private_bytes = 16 << 20; // 16 MiB private
    cfg.pool_bytes = 8 << 30;

    let kernel = Canneal {
        elements: 1_000_000, // 48 MiB netlist >> 16 MiB private memory
        steps: 10_000,
        temperature: 100.0,
        seed: 99,
    };
    println!(
        "netlist: {} elements = {} MiB; node 1 private memory: {} MiB",
        kernel.elements,
        kernel.footprint() >> 20,
        cfg.private_bytes >> 20,
    );

    let mut m = RemoteMemorySpace::with_options(
        cfg,
        NodeId::new(1),
        AllocPolicy::LocalFirst,
        RemoteOptions {
            zone_frames: 4_096,
            ..RemoteOptions::default()
        },
    );

    let (report, accepted) = kernel.run(&mut m);
    let region = m.world().region(NodeId::new(1));
    println!(
        "\nannealed {} steps ({} swaps accepted) in {} simulated",
        report.operations, accepted, report.elapsed,
    );
    println!(
        "memory region of node 1: {} MiB total, {} MiB borrowed from {:?}",
        region.total_bytes() >> 20,
        region.borrowed_bytes() >> 20,
        region.lenders(),
    );
    let s = m.stats();
    println!(
        "access mix: {} ops, cache hit ratio {:.2}, {} remote reads, {} remote writes",
        s.ops(),
        s.cache_hit_ratio(),
        s.remote_reads,
        s.remote_writes,
    );
    println!(
        "reservations performed: {} (each a one-time software cost; every\n\
         subsequent access was a plain load/store through the RMC)",
        s.reservations,
    );
}
