//! Trace a workload once, then answer "what would happen on any memory
//! system?" from the trace alone — the paper's Eqs. 1–2 made operational.
//!
//! The canneal-like kernel runs on a traced local machine; the trace is
//! profiled (page faults under a bounded resident set, CPU-cache misses,
//! TLB walks) and replayed against the remote-memory and remote-swap
//! backends to confirm the profile-based predictions.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use cohfree::core::backend::{SwapConfig, SwapSpace};
use cohfree::core::trace::{cache_profile, compute_total, page_profile, replay, Tracer};
use cohfree::workloads::parsec::Canneal;
use cohfree::{AllocPolicy, ClusterConfig, LocalMachine, MemSpace, NodeId, RemoteMemorySpace};

fn main() {
    let cfg = ClusterConfig::prototype();
    let kernel = Canneal {
        elements: 300_000, // 14.4 MiB netlist
        steps: 6_000,
        temperature: 100.0,
        seed: 2026,
    };

    // 1. Record.
    println!(
        "tracing canneal ({} elements, {} steps) on a local machine…",
        kernel.elements, kernel.steps
    );
    let mut traced = Tracer::new(LocalMachine::new(cfg, 8 << 30));
    let (_, accepted) = kernel.run(&mut traced);
    let (local, trace) = traced.into_parts();
    println!(
        "trace: {} ops, local run {} ({} swaps accepted)\n",
        trace.len(),
        local.now(),
        accepted
    );

    // 2. Profile.
    let cache_pages = 1_024; // 4 MiB resident set for the swap scenario
    let pages = page_profile(&trace, cache_pages, 64);
    let cpu = cache_profile(&trace, cfg.cache);
    println!(
        "page profile  : {} accesses, A_page = {:.0}, {} major faults, {} write-outs",
        pages.accesses, pages.accesses_per_page, pages.major_faults, pages.pages_out
    );
    println!(
        "cache profile : {:.1}% miss ratio, {} writebacks",
        100.0 * cpu.misses as f64 / cpu.accesses as f64,
        cpu.writebacks
    );
    println!("compute total : {}\n", compute_total(&trace));

    // 3. Validate by replaying the identical trace.
    let mut remote = RemoteMemorySpace::new(cfg, NodeId::new(1), AllocPolicy::AlwaysRemote);
    let t_remote = replay(&mut remote, &trace);
    let mut swap = SwapSpace::remote(
        cfg,
        NodeId::new(1),
        SwapConfig {
            cache_pages,
            ..SwapConfig::default()
        },
    );
    let t_swap = replay(&mut swap, &trace);

    println!("replayed on remote memory : {t_remote}");
    println!("replayed on remote swap   : {t_swap}");
    println!(
        "\nthe profile predicted the swap backend's faults exactly: {} == {}",
        pages.major_faults,
        swap.stats().major_faults,
    );
    assert_eq!(pages.major_faults, swap.stats().major_faults);
    println!(
        "swap pays {:.1}x the remote-memory time at this locality (A_page {:.0})",
        t_swap.as_ns_f64() / t_remote.as_ns_f64(),
        pages.accesses_per_page,
    );
}
