//! Dynamic memory regions — Figure 1 of the paper, acted out.
//!
//! Five nodes of the cluster reshape their memory regions at run time:
//! region 3 (node C) grows into its neighbors B and D, region 5 grows into
//! D too, and later region 3 shrinks back, returning the borrowed zones.
//! The cluster directory, the per-node frame allocators and every region's
//! segment list stay consistent throughout — the OS-side choreography the
//! paper summarizes in Section III.
//!
//! ```sh
//! cargo run --release --example region_rebalance
//! ```

use cohfree::core::world::World;
use cohfree::{ClusterConfig, NodeId};

fn show(w: &World, label: &str) {
    println!("--- {label} ---");
    for i in [2u16, 3, 4, 5] {
        let node = NodeId::new(i);
        let r = w.region(node);
        let lenders = r.lenders();
        println!(
            "region {i}: {:>6} MiB total ({:>5} MiB borrowed{}), node has {:>6} MiB of pool free",
            r.total_bytes() >> 20,
            r.borrowed_bytes() >> 20,
            if lenders.is_empty() {
                String::new()
            } else {
                format!(" from {lenders:?}")
            },
            (w.directory().free_frames(node) * 4096) >> 20,
        );
    }
    println!();
}

fn main() {
    let mut w = World::new(ClusterConfig::prototype());
    let gib = |g: u64| g << 18; // GiB in 4 KiB frames

    show(
        &w,
        "boot: every region confined to its own node (Fig. 1, region 1)",
    );

    // Region 3 expands into B (node 2) and D (node 4).
    let r3b = w.reserve_remote(NodeId::new(3), gib(2), Some(NodeId::new(2)));
    let r3d = w.reserve_remote(NodeId::new(3), gib(1), Some(NodeId::new(4)));
    show(
        &w,
        "region 3 borrowed 2 GiB from node 2 and 1 GiB from node 4",
    );

    // Region 5 expands into D as well: two foreign regions coexist in D's
    // memory, each still a separate coherency domain.
    let r5d = w.reserve_remote(NodeId::new(5), gib(3), Some(NodeId::new(4)));
    show(
        &w,
        "region 5 borrowed 3 GiB from node 4 (regions 3 and 5 coexist in D)",
    );

    // The workload on node 3 finishes: shrink region 3, returning both zones.
    w.release_remote(NodeId::new(3), r3b);
    w.release_remote(NodeId::new(3), r3d);
    show(
        &w,
        "region 3 shrank back; node 2 and node 4 recovered the frames",
    );

    // And region 5 eventually releases too.
    w.release_remote(NodeId::new(5), r5d);
    show(&w, "all regions back to the default configuration");

    println!(
        "Note: throughout all of this, no cache outside the owning node ever\n\
         held data from a region — growing a region never grew the coherency\n\
         domain. That is the paper's core claim."
    );
}
