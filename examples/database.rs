//! An in-memory database living in borrowed remote memory — the workload
//! the paper's conclusions point to ("store indexes or the entire database
//! in memory, and then study the execution time for different queries").
//!
//! Loads a table with indexes into remote memory on the 16-node prototype
//! and runs point, range, aggregate and insert queries, printing what each
//! one costs and why.
//!
//! ```sh
//! cargo run --release --example database
//! ```

use cohfree::workloads::db::{Database, Row, ATTRS};
use cohfree::{AllocPolicy, ClusterConfig, MemSpace, NodeId, RemoteMemorySpace, Rng};

const ROWS: u64 = 100_000;

fn main() {
    let mut m = RemoteMemorySpace::new(
        ClusterConfig::prototype(),
        NodeId::new(1),
        AllocPolicy::AlwaysRemote,
    );
    let mut rng = Rng::new(2010);

    println!("loading {ROWS} rows into remote memory…");
    let mut db = Database::create(&mut m, ROWS + 1_000);
    let id_space = ROWS * 4;
    let mut loaded = 0;
    while loaded < ROWS {
        let mut attrs = [0u64; ATTRS];
        for a in &mut attrs {
            *a = rng.below(1_000);
        }
        if db.insert(
            &mut m,
            Row {
                id: rng.below(id_space),
                attrs,
            },
        ) {
            loaded += 1;
        }
    }
    let load_done = m.now();
    println!(
        "loaded in {} simulated; table + indexes live on {:?}, {} MiB borrowed\n",
        load_done,
        m.world().region(m.node()).lenders(),
        m.borrowed_bytes() >> 20,
    );

    // Point query.
    let t0 = m.now();
    let mut hits = 0;
    for _ in 0..1_000 {
        if db.point(&mut m, rng.below(id_space)).is_some() {
            hits += 1;
        }
    }
    let per = m.now().since(t0) / 1_000;
    println!("point queries : {per:>12}/query  ({hits}/1000 hit)");

    // Range query (~0.5% of the id space).
    let span = id_space / 200;
    let t0 = m.now();
    let mut rows_out = 0;
    for _ in 0..20 {
        let lo = rng.below(id_space - span);
        rows_out += db.range(&mut m, lo, lo + span).len();
    }
    let per = m.now().since(t0) / 20;
    println!(
        "range queries : {per:>12}/query  ({} rows/query avg)",
        rows_out / 20
    );

    // Full-scan aggregate.
    let t0 = m.now();
    let sum = db.scan_sum(&mut m, 0);
    let scan = m.now().since(t0);
    println!("full scan     : {scan:>12}         (sum attr0 = {sum})");

    // Inserts.
    let t0 = m.now();
    for k in 0..1_000u64 {
        let mut attrs = [0u64; ATTRS];
        for a in &mut attrs {
            *a = rng.below(1_000);
        }
        db.insert(
            &mut m,
            Row {
                id: id_space + k + 1,
                attrs,
            },
        );
    }
    let per = m.now().since(t0) / 1_000;
    println!("inserts       : {per:>12}/row");

    let s = m.stats();
    println!(
        "\ntotals: {} remote reads, {} remote writes, cache hit ratio {:.2} — \
         every access a plain load/store through the RMC, zero coherency traffic",
        s.remote_reads,
        s.remote_writes,
        s.cache_hit_ratio(),
    );
}
