//! An in-memory database index that outgrows one node — the paper's
//! motivating database scenario (Section V-B).
//!
//! A B-tree index is bulk-loaded with random keys and then queried, once on
//! each memory system: the paper's remote memory, the remote-swap baseline,
//! and a hypothetical all-local big machine. Watch who wins and why (fault
//! counts are printed next to the times).
//!
//! ```sh
//! cargo run --release --example btree_db
//! ```

use cohfree::core::backend::{SwapConfig, SwapSpace};
use cohfree::workloads::BTree;
use cohfree::{AllocPolicy, ClusterConfig, LocalMachine, MemSpace, NodeId, RemoteMemorySpace, Rng};

const KEYS: usize = 200_000;
const SEARCHES: u64 = 2_000;
const FANOUT_KEYS: usize = 167; // 168 children — the paper's optimum

fn sorted_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    let mut keys: Vec<u64> = (0..n + n / 8 + 16).map(|_| rng.next_u64()).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.truncate(n);
    keys
}

fn bench<M: MemSpace>(name: &str, mut m: M, keys: &[u64]) {
    let tree = BTree::bulk_load(&mut m, keys, FANOUT_KEYS);
    let mut rng = Rng::new(7);
    let f0 = m.stats().major_faults;
    let r0 = m.stats().remote_reads;
    let t0 = m.now();
    let mut found = 0u64;
    for i in 0..SEARCHES {
        let k = if i % 2 == 0 {
            keys[rng.below(keys.len() as u64) as usize]
        } else {
            rng.next_u64()
        };
        if tree.search(&mut m, k).found {
            found += 1;
        }
    }
    let per = m.now().since(t0) / SEARCHES;
    let s = m.stats();
    println!(
        "{name:<24} {per:>12}/search   found {found:>5}   height {h}   faults/search {fps:.2}   remote reads/search {rps:.1}",
        h = tree.height(),
        fps = (s.major_faults - f0) as f64 / SEARCHES as f64,
        rps = (s.remote_reads - r0) as f64 / SEARCHES as f64,
    );
}

fn main() {
    let cfg = ClusterConfig::prototype();
    let keys = sorted_keys(KEYS, 42);
    println!(
        "B-tree index: {KEYS} keys, fanout {} children, ~{} MiB of index\n",
        FANOUT_KEYS + 1,
        (KEYS * 24) >> 20,
    );

    bench(
        "local memory (128 GiB)",
        LocalMachine::new(cfg, 128 << 30),
        &keys,
    );
    bench(
        "remote memory (paper)",
        RemoteMemorySpace::new(cfg, NodeId::new(1), AllocPolicy::AlwaysRemote),
        &keys,
    );
    // Remote swap gets local memory for only a quarter of the index.
    let cache_pages = KEYS * 24 / 4096 / 4;
    bench(
        "remote swap (baseline)",
        SwapSpace::remote(
            cfg,
            NodeId::new(1),
            SwapConfig {
                cache_pages,
                ..SwapConfig::default()
            },
        ),
        &keys,
    );

    println!(
        "\nThe paper's point: the b-tree's probes have poor page locality, so the\n\
         swap baseline pays a whole page fault per node visit while the paper's\n\
         architecture pays only cache-line round trips — and no coherency traffic."
    );
}
