#![warn(missing_docs)]

//! # cohfree — umbrella crate
//!
//! Re-exports the full cohfree stack (a Rust reproduction of *"Getting Rid
//! of Coherency Overhead for Memory-Hungry Applications"*, IEEE CLUSTER
//! 2010) so examples and integration tests can depend on one crate.
//!
//! Layering, bottom to top:
//!
//! * [`sim`] — deterministic discrete-event engine,
//! * [`fabric`] — HyperTransport / HNC-HT interconnect model,
//! * [`mem`] — node DRAM, caches and the sparse functional store,
//! * [`rmc`] — the Remote Memory Controller (the paper's contribution),
//! * [`os`] — virtual memory, reservation protocol, regions, swap,
//! * [`core`] — cluster assembly, memory backends, analytic model,
//! * [`workloads`] — B-tree / hash / PARSEC-class applications.
//!
//! Start with [`core::config::ClusterConfig::prototype`] and the
//! `examples/` directory.

pub use cohfree_core as core;
pub use cohfree_fabric as fabric;
pub use cohfree_mem as mem;
pub use cohfree_os as os;
pub use cohfree_rmc as rmc;
pub use cohfree_sim as sim;
pub use cohfree_workloads as workloads;

// Flat re-exports of the everyday API.
pub use cohfree_core::{
    AllocPolicy, ClusterConfig, LocalMachine, MemSpace, MsgKind, NodeId, RemoteMemorySpace, Rng,
    SimDuration, SimTime, SwapSpace, Topology, World,
};
