//! An open-addressing hash index in simulated memory.
//!
//! Footnote 3 of the paper: "in-memory databases usually implement hash
//! indexes, as this structure presents even better performance when it is
//! stored in memory. Thus, by using b-trees in this study, we relinquish the
//! advantage over remote swap provided by hash indexes when used in remote
//! memory." The `abl_hash` ablation quantifies exactly that advantage: a
//! lookup touches O(1) random locations instead of O(height) node arrays —
//! ideal for the paper's locality-insensitive remote memory, hostile to
//! page-granularity swap.
//!
//! Layout: a power-of-two table of 16-byte slots `(tag, value)`, linear
//! probing, tag 0 = empty (keys are mapped to non-zero tags).

use cohfree_core::{MemSpace, SimDuration};

/// Per-probe CPU cost (hash + compare).
const PROBE_COST: SimDuration = SimDuration(2_000); // 2 ns

/// A fixed-capacity open-addressing hash index handle.
#[derive(Debug, Clone, Copy)]
pub struct HashIndex {
    table: u64,
    slots: u64, // power of two
    len: u64,
}

const SLOT_BYTES: u64 = 16;

fn mix(key: u64) -> u64 {
    // SplitMix64 finalizer: full-avalanche, cheap.
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tag_of(key: u64) -> u64 {
    let t = mix(key);
    if t == 0 {
        1
    } else {
        t
    }
}

impl HashIndex {
    /// Allocate a table able to hold `capacity` entries at ≤ 50% load.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new<M: MemSpace + ?Sized>(mem: &mut M, capacity: u64) -> HashIndex {
        assert!(capacity > 0, "empty hash index");
        let slots = (capacity * 2).next_power_of_two();
        let table = mem.alloc(slots * SLOT_BYTES);
        HashIndex {
            table,
            slots,
            len: 0,
        }
    }

    /// Entries stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_addr(&self, i: u64) -> u64 {
        self.table + i * SLOT_BYTES
    }

    /// Insert `key -> value`; returns false (and overwrites) if present.
    ///
    /// # Panics
    /// Panics if the table would exceed ~93% load (the index is
    /// fixed-capacity by design; size it up front).
    pub fn insert<M: MemSpace + ?Sized>(&mut self, mem: &mut M, key: u64, value: u64) -> bool {
        assert!(
            self.len < self.slots - self.slots / 16,
            "hash index overfull: size it for the workload"
        );
        let tag = tag_of(key);
        let mut i = tag & (self.slots - 1);
        loop {
            mem.compute(PROBE_COST);
            let t = mem.read_u64(self.slot_addr(i));
            if t == 0 {
                mem.write_u64(self.slot_addr(i), tag);
                mem.write_u64(self.slot_addr(i) + 8, value);
                self.len += 1;
                return true;
            }
            if t == tag {
                mem.write_u64(self.slot_addr(i) + 8, value);
                return false;
            }
            i = (i + 1) & (self.slots - 1);
        }
    }

    /// Look up `key`.
    pub fn get<M: MemSpace + ?Sized>(&self, mem: &mut M, key: u64) -> Option<u64> {
        let tag = tag_of(key);
        let mut i = tag & (self.slots - 1);
        loop {
            mem.compute(PROBE_COST);
            let t = mem.read_u64(self.slot_addr(i));
            if t == 0 {
                return None;
            }
            if t == tag {
                return Some(mem.read_u64(self.slot_addr(i) + 8));
            }
            i = (i + 1) & (self.slots - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_core::{ClusterConfig, LocalMachine, Rng};

    fn mem() -> LocalMachine {
        LocalMachine::new(ClusterConfig::prototype(), 4 << 30)
    }

    #[test]
    fn insert_get_round_trip() {
        let mut m = mem();
        let mut h = HashIndex::new(&mut m, 1_000);
        for k in 0..1_000u64 {
            assert!(h.insert(&mut m, k, k * 7));
        }
        assert_eq!(h.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(h.get(&mut m, k), Some(k * 7), "key {k}");
        }
        assert_eq!(h.get(&mut m, 99_999), None);
    }

    #[test]
    fn duplicate_insert_overwrites() {
        let mut m = mem();
        let mut h = HashIndex::new(&mut m, 10);
        assert!(h.insert(&mut m, 5, 1));
        assert!(!h.insert(&mut m, 5, 2));
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(&mut m, 5), Some(2));
    }

    #[test]
    fn matches_oracle_under_random_ops() {
        let mut m = mem();
        let mut h = HashIndex::new(&mut m, 4_096);
        let mut oracle = std::collections::HashMap::new();
        let mut rng = Rng::new(9);
        for _ in 0..4_000 {
            let k = rng.below(2_000);
            let v = rng.next_u64();
            h.insert(&mut m, k, v);
            oracle.insert(k, v);
        }
        for k in 0..2_000u64 {
            assert_eq!(h.get(&mut m, k), oracle.get(&k).copied(), "key {k}");
        }
        assert_eq!(h.len(), oracle.len() as u64);
    }

    #[test]
    fn lookups_touch_few_locations() {
        let mut m = mem();
        let mut h = HashIndex::new(&mut m, 10_000);
        for k in 0..10_000u64 {
            h.insert(&mut m, k, k);
        }
        let before = m.stats().reads;
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            h.get(&mut m, rng.below(10_000));
        }
        let per_lookup = (m.stats().reads - before) as f64 / 100.0;
        assert!(
            per_lookup < 4.0,
            "hash lookup reads {per_lookup} lines on average"
        );
    }

    #[test]
    #[should_panic(expected = "overfull")]
    fn overfill_panics() {
        let mut m = mem();
        let mut h = HashIndex::new(&mut m, 4); // slots = 8
        for k in 0..9 {
            h.insert(&mut m, k, k);
        }
    }
}
