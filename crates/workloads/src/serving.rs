//! Open-loop multi-tenant serving workload generator (EXT-SERVING).
//!
//! Production serving traffic is *open loop*: requests arrive on their own
//! clock whether or not earlier requests finished, so a slow or faulted
//! cluster builds queues instead of politely slowing the offered load — the
//! regime where p99.9 and availability numbers mean something. This module
//! folds millions of simulated users into deterministic per-tenant arrival
//! streams (superposed Poisson processes, optionally diurnally modulated by
//! Lewis thinning) and installs multi-tenant request mixes into a
//! [`World`]:
//!
//! * **Point KV/DB mix** — small reads/writes at Zipf-popular addresses in
//!   a remote-memory working set, the hash/B-tree index regime of the
//!   paper's Figs. 9–10 recast as a served workload.
//! * **Columnar-scan mix** — large sequential remote reads, the
//!   Arrow-style zero-copy analytics regime over cluster shared memory.
//!
//! Arrivals are pre-generated from a seed and handed to
//! [`World::spawn_serving_thread`], so the sequential and parallel engines
//! replay the same stream byte-identically; request outcomes are conserved
//! (`generated == completed + shed + failed`, [`Tenant::conserved`]) even
//! through crash-storm fault plans.

use cohfree_core::{AccessPattern, NodeId, Rng, Sample, SimDuration, SimTime, ThreadSpec, World};
use cohfree_sim::stats::LatencyHistogram;

/// Diurnal load modulation: a raised-cosine envelope over one period,
/// dipping to `trough` × peak at phase 0 and returning to the peak rate at
/// half period. Arrivals are thinned against this envelope (Lewis
/// thinning), which keeps the stream an exact nonhomogeneous Poisson
/// process and stays deterministic under the stream's seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalProfile {
    /// Length of one full trough→peak→trough cycle.
    pub period: SimDuration,
    /// Rate at the trough as a fraction of the peak rate, in `(0, 1]`.
    pub trough: f64,
}

impl DiurnalProfile {
    /// Envelope value (acceptance probability) at offset `t` from the
    /// stream start, in `[trough, 1]`.
    pub fn envelope(&self, t: SimDuration) -> f64 {
        assert!(
            self.trough > 0.0 && self.trough <= 1.0,
            "trough must be in (0, 1]"
        );
        let phase = (t.as_ns_f64() / self.period.as_ns_f64()).fract();
        let wave = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
        self.trough + (1.0 - self.trough) * wave
    }
}

/// A seeded arrival process for one tenant: `users` independent Poisson
/// sources of `rate_per_user_hz` each, superposed into one aggregate
/// Poisson stream (superposition is exact, so millions of users cost
/// nothing), optionally modulated by a [`DiurnalProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSpec {
    /// Simulated user population behind this tenant.
    pub users: u64,
    /// Peak request rate per user, in requests per second.
    pub rate_per_user_hz: f64,
    /// Optional diurnal modulation (None = homogeneous Poisson).
    pub diurnal: Option<DiurnalProfile>,
    /// PRNG seed; identical seeds yield identical streams.
    pub seed: u64,
}

impl ArrivalSpec {
    /// Aggregate peak arrival rate in requests per second.
    pub fn aggregate_rate_hz(&self) -> f64 {
        self.users as f64 * self.rate_per_user_hz
    }

    /// Generate the first `count` arrival instants after `start`, sorted.
    ///
    /// Candidates are drawn at the aggregate peak rate; with a diurnal
    /// profile each candidate at offset `t` survives with probability
    /// `envelope(t)` (Lewis thinning), yielding arrival rate
    /// `peak × envelope(t)`.
    pub fn arrivals(&self, start: SimTime, count: u64) -> Vec<SimTime> {
        let rate = self.aggregate_rate_hz();
        assert!(rate > 0.0, "arrival rate must be positive");
        let mut rng = Rng::new(self.seed);
        let mut out = Vec::with_capacity(count as usize);
        let mut t = start;
        while (out.len() as u64) < count {
            // `exponential(rate_hz)` yields seconds; the clock is ps.
            let dt_sec = rng.exponential(rate);
            t += SimDuration::ps(((dt_sec * 1e12).round() as u64).max(1));
            match self.diurnal {
                Some(d) if !rng.chance(d.envelope(t.since(start))) => continue,
                _ => out.push(t),
            }
        }
        out
    }
}

/// The request shape a tenant issues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestMix {
    /// KV/DB point accesses: small requests at Zipf-popular addresses
    /// (exponent `zipf_s`, rank 0 hottest) across the tenant's zones.
    PointKv {
        /// Zipf popularity exponent over the working-set slots.
        zipf_s: f64,
        /// Bytes moved per point access (key+value).
        value_bytes: u32,
    },
    /// Arrow-style zero-copy columnar scan: large sequential remote reads
    /// walking the tenant's zones end-to-end, wrapping.
    ColumnarScan {
        /// Bytes per scan chunk request.
        chunk_bytes: u32,
    },
}

impl RequestMix {
    /// Bytes moved per request.
    pub fn bytes(&self) -> u32 {
        match *self {
            RequestMix::PointKv { value_bytes, .. } => value_bytes,
            RequestMix::ColumnarScan { chunk_bytes } => chunk_bytes,
        }
    }

    /// The address pattern installed on the serving threads.
    pub fn pattern(&self) -> AccessPattern {
        match *self {
            RequestMix::PointKv { zipf_s, .. } => AccessPattern::Zipf(zipf_s),
            RequestMix::ColumnarScan { .. } => AccessPattern::Sequential,
        }
    }
}

/// One tenant of the serving cluster: a client node, a remote-memory
/// working set leased from donor nodes, and an open-loop request stream
/// split across `lanes` serving threads.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (report rows, trace labels).
    pub name: String,
    /// Client node the tenant's serving threads run on. Give each tenant
    /// its own client node: per-node completion samples then double as
    /// per-tenant availability series.
    pub client: NodeId,
    /// Donor nodes lending working-set frames, one zone each.
    pub donors: Vec<NodeId>,
    /// Frames (4 KiB) leased from each donor.
    pub frames_per_donor: u64,
    /// Serving threads; arrivals are dealt round-robin across lanes, so
    /// each lane sees an ordered thinned substream.
    pub lanes: usize,
    /// Total requests to generate for this tenant.
    pub requests: u64,
    /// Request shape.
    pub mix: RequestMix,
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Per-request CPU cost on the serving thread.
    pub think: SimDuration,
    /// Stream start instant.
    pub start: SimTime,
}

impl TenantSpec {
    /// Reserve the working set, generate the arrival stream and spawn the
    /// serving lanes. Must run before `World::run`.
    pub fn install(&self, world: &mut World) -> Tenant {
        assert!(self.lanes > 0, "tenant needs at least one lane");
        assert!(self.requests > 0, "tenant needs at least one request");
        assert!(!self.donors.is_empty(), "tenant needs at least one donor");
        let mut zones = Vec::with_capacity(self.donors.len());
        for &donor in &self.donors {
            let resv = world.reserve_remote(self.client, self.frames_per_donor, Some(donor));
            zones.push((resv.prefixed_base, resv.frames * 4096));
        }
        let all = self.arrivals.arrivals(self.start, self.requests);
        let mut threads = Vec::with_capacity(self.lanes);
        for lane in 0..self.lanes {
            let lane_arrivals: Vec<SimTime> =
                all.iter().copied().skip(lane).step_by(self.lanes).collect();
            if lane_arrivals.is_empty() {
                continue; // fewer requests than lanes
            }
            threads.push(
                world.spawn_serving_thread(
                    ThreadSpec {
                        node: self.client,
                        zones: zones.clone(),
                        accesses: lane_arrivals.len() as u64,
                        bytes: self.mix.bytes(),
                        write_fraction: self.write_fraction,
                        think: self.think,
                        seed: self
                            .arrivals
                            .seed
                            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1)),
                    },
                    lane_arrivals,
                    self.mix.pattern(),
                ),
            );
        }
        Tenant {
            name: self.name.clone(),
            node: self.client,
            threads,
            generated: self.requests,
        }
    }
}

/// Install every tenant into the world, in order.
pub fn install(world: &mut World, tenants: &[TenantSpec]) -> Vec<Tenant> {
    tenants.iter().map(|t| t.install(world)).collect()
}

/// A tenant installed into a [`World`]: read-side handle for per-tenant
/// accounting after (or during) the run.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Display name, copied from the spec.
    pub name: String,
    /// Client node the tenant runs on.
    pub node: NodeId,
    /// Serving-thread ids, one per non-empty lane.
    pub threads: Vec<usize>,
    /// Requests generated for this tenant.
    pub generated: u64,
}

impl Tenant {
    /// Requests completed successfully across all lanes.
    pub fn completed(&self, w: &World) -> u64 {
        self.threads.iter().map(|&i| w.thread_completed(i)).sum()
    }

    /// Requests dropped by admission control across all lanes.
    pub fn shed(&self, w: &World) -> u64 {
        self.threads.iter().map(|&i| w.thread_shed(i)).sum()
    }

    /// Requests that exhausted their retry budget (or died with a crashed
    /// client) across all lanes.
    pub fn failed(&self, w: &World) -> u64 {
        self.threads.iter().map(|&i| w.thread_failed(i)).sum()
    }

    /// Conservation oracle: every generated request ended exactly one of
    /// completed / shed / failed.
    pub fn conserved(&self, w: &World) -> bool {
        self.completed(w) + self.shed(w) + self.failed(w) == self.generated
    }

    /// Merged end-to-end (arrival→completion) latency histogram across all
    /// lanes. Count equals [`Tenant::completed`].
    pub fn latency(&self, w: &World) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &i in &self.threads {
            if let Some(lane) = w.thread_latency(i) {
                h.merge(lane);
            }
        }
        h
    }

    /// Availability over the tenant's progress window: the fraction of
    /// sample intervals, between the first and last interval in which this
    /// tenant's node completed anything, that completed anything. Requires
    /// `World::enable_sampling`; mirrors the EXT-CHAOS definition but per
    /// tenant (the drain tail past the final completion is backoff-timer
    /// housekeeping, not unavailability).
    pub fn availability(&self, w: &World) -> f64 {
        let samples = w.samples();
        let comp = |s: &Sample| s.completions[self.node.index()];
        let progressing: Vec<usize> = (1..samples.len())
            .filter(|&i| comp(&samples[i]) > comp(&samples[i - 1]))
            .collect();
        match (progressing.first(), progressing.last()) {
            (Some(&a), Some(&b)) if b > a => progressing.len() as f64 / (b - a + 1) as f64,
            (Some(_), Some(_)) => 1.0,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_core::ClusterConfig;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn spec(seed: u64, diurnal: Option<DiurnalProfile>) -> ArrivalSpec {
        ArrivalSpec {
            users: 1_000_000,
            rate_per_user_hz: 2.0,
            diurnal,
            seed,
        }
    }

    #[test]
    fn poisson_interarrival_mean_and_cv() {
        // 2M users × 2 Hz = 4M req/s aggregate → mean interarrival 250 ns.
        let s = ArrivalSpec {
            users: 2_000_000,
            rate_per_user_hz: 2.0,
            diurnal: None,
            seed: 42,
        };
        let n = 40_000u64;
        let arr = s.arrivals(SimTime::ZERO, n);
        assert_eq!(arr.len() as u64, n);
        let gaps: Vec<f64> = arr
            .windows(2)
            .map(|w| w[1].since(w[0]).as_ns_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let expect = 1e9 / s.aggregate_rate_hz(); // ns
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "Poisson mean interarrival {mean:.2} ns must be within 2% of {expect:.2} ns"
        );
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(
            (cv - 1.0).abs() < 0.03,
            "exponential interarrivals have CV 1, got {cv:.4}"
        );
    }

    #[test]
    fn diurnal_envelope_matches_profile() {
        let d = DiurnalProfile {
            period: SimDuration::ms(1),
            trough: 0.25,
        };
        // Peak 4M req/s over ~10 periods (~40k accepted arrivals).
        let s = ArrivalSpec {
            users: 2_000_000,
            rate_per_user_hz: 2.0,
            diurnal: Some(d),
            seed: 7,
        };
        let n = 30_000u64;
        let arr = s.arrivals(SimTime::ZERO, n);
        // Bin arrivals by phase within the period; per-bin counts must
        // track the envelope integral over that bin (±10% of peak bin).
        const BINS: usize = 8;
        let mut counts = [0u64; BINS];
        for &a in &arr {
            let phase = (a.since(SimTime::ZERO).as_ns_f64() / d.period.as_ns_f64()).fract();
            counts[(phase * BINS as f64) as usize % BINS] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        for (b, &c) in counts.iter().enumerate() {
            let mid = (b as f64 + 0.5) / BINS as f64;
            let expect = d.envelope(SimDuration::ns_f64(mid * d.period.as_ns_f64()));
            let got = c as f64 / max;
            assert!(
                (got - expect).abs() < 0.10,
                "bin {b}: relative rate {got:.3} vs envelope {expect:.3}"
            );
        }
        // The trough really dips: quietest bin under half the loudest.
        assert!(*counts.iter().min().unwrap() as f64 / max < 0.5);
    }

    #[test]
    fn identical_seeds_identical_streams() {
        let d = Some(DiurnalProfile {
            period: SimDuration::us(100),
            trough: 0.5,
        });
        let a = spec(99, d).arrivals(SimTime::ZERO, 5_000);
        let b = spec(99, d).arrivals(SimTime::ZERO, 5_000);
        assert_eq!(a, b, "same seed must replay the same stream");
        let c = spec(100, d).arrivals(SimTime::ZERO, 5_000);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn arrivals_sorted_and_start_offset() {
        let start = SimTime::ZERO + SimDuration::us(3);
        let arr = spec(5, None).arrivals(start, 2_000);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr[0] > start);
    }

    #[test]
    fn install_runs_and_conserves_requests() {
        let mut w = World::new(ClusterConfig::prototype());
        // Windows must be coarse relative to per-request latency or a
        // healthy-but-slow lane alternates empty windows.
        w.enable_sampling(SimDuration::us(10));
        let tenants = install(
            &mut w,
            &[
                TenantSpec {
                    name: "kv".into(),
                    client: n(1),
                    donors: vec![n(3), n(4)],
                    frames_per_donor: 64,
                    lanes: 2,
                    requests: 600,
                    mix: RequestMix::PointKv {
                        zipf_s: 0.9,
                        value_bytes: 64,
                    },
                    arrivals: spec(11, None),
                    write_fraction: 0.1,
                    think: SimDuration::ns(5),
                    start: SimTime::ZERO,
                },
                TenantSpec {
                    name: "scan".into(),
                    client: n(2),
                    donors: vec![n(5)],
                    frames_per_donor: 64,
                    lanes: 1,
                    requests: 150,
                    mix: RequestMix::ColumnarScan { chunk_bytes: 4096 },
                    arrivals: spec(12, None),
                    write_fraction: 0.0,
                    think: SimDuration::ns(20),
                    start: SimTime::ZERO,
                },
            ],
        );
        w.run();
        for t in &tenants {
            assert!(t.conserved(&w), "{}: conservation violated", t.name);
            assert_eq!(t.completed(&w), t.generated, "no faults → all complete");
            let h = t.latency(&w);
            assert_eq!(h.count(), t.completed(&w));
            assert!(h.quantile_ns(0.99) >= h.quantile_ns(0.50));
            assert!(t.availability(&w) > 0.9, "{}", t.availability(&w));
        }
    }

    #[test]
    fn more_requests_than_lanes_guard() {
        let mut w = World::new(ClusterConfig::prototype());
        let t = TenantSpec {
            name: "tiny".into(),
            client: n(1),
            donors: vec![n(2)],
            frames_per_donor: 16,
            lanes: 4,
            requests: 2, // fewer requests than lanes → 2 live lanes
            mix: RequestMix::PointKv {
                zipf_s: 1.0,
                value_bytes: 64,
            },
            arrivals: spec(3, None),
            write_fraction: 0.0,
            think: SimDuration::ns(1),
            start: SimTime::ZERO,
        }
        .install(&mut w);
        assert_eq!(t.threads.len(), 2);
        w.run();
        assert!(t.conserved(&w));
    }
}
