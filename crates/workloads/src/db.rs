//! A miniature in-memory database — the paper's stated next step.
//!
//! Conclusions, Section VI: *"we aim to stress our prototype with a real
//! full implementation, store indexes or the entire database in memory, and
//! then study the execution time for different queries."* This module is
//! that study's substrate: a heap-organized table plus two indexes, all
//! living in [`MemSpace`] memory, with the classic query types —
//!
//! * **point query** — hash primary index → one row read,
//! * **range query** — ordered (B-tree) index → per-id row fetches,
//! * **full-scan aggregate** — sequential heap sweep,
//! * **insert** — heap append + both index maintenances.
//!
//! Each query type has a distinct locality signature, which is exactly what
//! separates the paper's remote memory (locality-insensitive) from remote
//! swap (locality-hostage); the `ext_db` bench quantifies it.

use crate::btree::BTree;
use crate::hash::HashIndex;
use cohfree_core::{MemSpace, SimDuration};

/// Attribute columns per row (besides the id).
pub const ATTRS: usize = 4;
/// Bytes per row: id + 4 attributes.
pub const ROW_BYTES: u64 = 8 * (1 + ATTRS as u64);

/// One table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Primary key (unique).
    pub id: u64,
    /// Attribute values.
    pub attrs: [u64; ATTRS],
}

/// Per-row CPU cost of query processing (predicate evaluation etc.).
const ROW_COMPUTE: SimDuration = SimDuration(5_000); // 5 ns

/// A heap table with a hash primary index and a B-tree ordered index.
#[derive(Debug, Clone, Copy)]
pub struct Database {
    heap_base: u64,
    rows: u64,
    capacity: u64,
    pk_hash: HashIndex,
    pk_tree: BTree,
}

impl Database {
    /// Create a table able to hold `capacity` rows, with indexes sized to
    /// match (B-tree fanout from the paper's Fig. 9 optimum).
    pub fn create<M: MemSpace + ?Sized>(mem: &mut M, capacity: u64) -> Database {
        assert!(capacity > 0, "empty table capacity");
        let heap_base = mem.alloc(capacity * ROW_BYTES);
        let pk_hash = HashIndex::new(mem, capacity);
        let pk_tree = BTree::new(mem, 167);
        Database {
            heap_base,
            rows: 0,
            capacity,
            pk_hash,
            pk_tree,
        }
    }

    /// Rows stored.
    pub fn len(&self) -> u64 {
        self.rows
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    fn row_addr(&self, slot: u64) -> u64 {
        self.heap_base + slot * ROW_BYTES
    }

    fn read_row_at<M: MemSpace + ?Sized>(&self, mem: &mut M, addr: u64) -> Row {
        let id = mem.read_u64(addr);
        let mut attrs = [0u64; ATTRS];
        for (i, a) in attrs.iter_mut().enumerate() {
            *a = mem.read_u64(addr + 8 + 8 * i as u64);
        }
        Row { id, attrs }
    }

    /// Insert a row; returns false (no change) if the id already exists.
    ///
    /// # Panics
    /// Panics when the table is full (fixed-capacity heap by design).
    pub fn insert<M: MemSpace + ?Sized>(&mut self, mem: &mut M, row: Row) -> bool {
        if self.pk_hash.get(mem, row.id).is_some() {
            return false;
        }
        assert!(self.rows < self.capacity, "table full");
        let slot = self.rows;
        let addr = self.row_addr(slot);
        mem.write_u64(addr, row.id);
        for (i, a) in row.attrs.iter().enumerate() {
            mem.write_u64(addr + 8 + 8 * i as u64, *a);
        }
        self.pk_hash.insert(mem, row.id, slot);
        self.pk_tree.insert(mem, row.id);
        self.rows += 1;
        true
    }

    /// Point query by primary key.
    pub fn point<M: MemSpace + ?Sized>(&self, mem: &mut M, id: u64) -> Option<Row> {
        let slot = self.pk_hash.get(mem, id)?;
        mem.compute(ROW_COMPUTE);
        Some(self.read_row_at(mem, self.row_addr(slot)))
    }

    /// Range query: all rows with `lo <= id <= hi`, ascending by id.
    pub fn range<M: MemSpace + ?Sized>(&self, mem: &mut M, lo: u64, hi: u64) -> Vec<Row> {
        let ids = self.pk_tree.collect_range(mem, lo, hi);
        ids.into_iter()
            .map(|id| {
                let slot = self
                    .pk_hash
                    .get(mem, id)
                    .expect("ordered index holds an id the hash index lacks");
                mem.compute(ROW_COMPUTE);
                self.read_row_at(mem, self.row_addr(slot))
            })
            .collect()
    }

    /// Full-scan aggregate: sum of attribute `attr` over every row.
    ///
    /// # Panics
    /// Panics if `attr >= ATTRS`.
    pub fn scan_sum<M: MemSpace + ?Sized>(&self, mem: &mut M, attr: usize) -> u64 {
        assert!(attr < ATTRS, "attribute index out of range");
        let mut sum = 0u64;
        for slot in 0..self.rows {
            mem.compute(ROW_COMPUTE);
            sum = sum.wrapping_add(mem.read_u64(self.row_addr(slot) + 8 + 8 * attr as u64));
        }
        sum
    }

    /// Range aggregate: sum of attribute `attr` over `lo <= id <= hi`
    /// (index-driven; does not materialize rows).
    pub fn range_sum<M: MemSpace + ?Sized>(
        &self,
        mem: &mut M,
        lo: u64,
        hi: u64,
        attr: usize,
    ) -> u64 {
        assert!(attr < ATTRS, "attribute index out of range");
        let ids = self.pk_tree.collect_range(mem, lo, hi);
        let mut sum = 0u64;
        for id in ids {
            let slot = self.pk_hash.get(mem, id).expect("indexes agree");
            mem.compute(ROW_COMPUTE);
            sum = sum.wrapping_add(mem.read_u64(self.row_addr(slot) + 8 + 8 * attr as u64));
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_core::{ClusterConfig, LocalMachine, Rng};
    use std::collections::BTreeMap;

    fn mem() -> LocalMachine {
        LocalMachine::new(ClusterConfig::prototype(), 4 << 30)
    }

    fn row(id: u64, seed: u64) -> Row {
        let mut rng = Rng::new(seed ^ id);
        let mut attrs = [0u64; ATTRS];
        for a in &mut attrs {
            *a = rng.below(1_000);
        }
        Row { id, attrs }
    }

    #[test]
    fn insert_and_point_queries_match_oracle() {
        let mut m = mem();
        let mut db = Database::create(&mut m, 4_096);
        let mut oracle: BTreeMap<u64, Row> = BTreeMap::new();
        let mut rng = Rng::new(1);
        for _ in 0..2_000 {
            let r = row(rng.below(3_000), 42);
            let fresh = db.insert(&mut m, r);
            assert_eq!(fresh, !oracle.contains_key(&r.id), "id {}", r.id);
            oracle.entry(r.id).or_insert(r);
        }
        assert_eq!(db.len(), oracle.len() as u64);
        for id in 0..3_000 {
            assert_eq!(db.point(&mut m, id), oracle.get(&id).copied(), "id {id}");
        }
    }

    #[test]
    fn duplicate_insert_keeps_first_row() {
        let mut m = mem();
        let mut db = Database::create(&mut m, 16);
        let first = Row {
            id: 7,
            attrs: [1, 2, 3, 4],
        };
        let second = Row {
            id: 7,
            attrs: [9, 9, 9, 9],
        };
        assert!(db.insert(&mut m, first));
        assert!(!db.insert(&mut m, second));
        assert_eq!(db.point(&mut m, 7), Some(first));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn range_query_matches_oracle() {
        let mut m = mem();
        let mut db = Database::create(&mut m, 4_096);
        let mut oracle: BTreeMap<u64, Row> = BTreeMap::new();
        let mut rng = Rng::new(2);
        for _ in 0..2_500 {
            let r = row(rng.below(10_000), 7);
            if db.insert(&mut m, r) {
                oracle.insert(r.id, r);
            }
        }
        for (lo, hi) in [(0u64, 500), (2_000, 2_000), (5_000, 9_999), (9_999, 10_000)] {
            let got = db.range(&mut m, lo, hi);
            let want: Vec<Row> = oracle.range(lo..=hi).map(|(_, &r)| r).collect();
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn aggregates_match_oracle() {
        let mut m = mem();
        let mut db = Database::create(&mut m, 2_048);
        let mut oracle: BTreeMap<u64, Row> = BTreeMap::new();
        let mut rng = Rng::new(3);
        for _ in 0..1_500 {
            let r = row(rng.below(5_000), 9);
            if db.insert(&mut m, r) {
                oracle.insert(r.id, r);
            }
        }
        for attr in 0..ATTRS {
            let want: u64 = oracle.values().map(|r| r.attrs[attr]).sum();
            assert_eq!(db.scan_sum(&mut m, attr), want, "attr {attr}");
        }
        let want: u64 = oracle.range(1_000..=4_000).map(|(_, r)| r.attrs[2]).sum();
        assert_eq!(db.range_sum(&mut m, 1_000, 4_000, 2), want);
    }

    #[test]
    fn point_query_is_cheaper_than_range() {
        let mut m = mem();
        let mut db = Database::create(&mut m, 8_192);
        for id in 0..8_000u64 {
            db.insert(&mut m, row(id, 11));
        }
        let t0 = m.now();
        db.point(&mut m, 4_000);
        let point = m.now().since(t0);
        let t0 = m.now();
        db.range(&mut m, 1_000, 5_000);
        let range = m.now().since(t0);
        assert!(range.as_ns_f64() > 50.0 * point.as_ns_f64());
    }

    #[test]
    #[should_panic(expected = "table full")]
    fn overflow_panics() {
        let mut m = mem();
        let mut db = Database::create(&mut m, 4);
        for id in 0..5 {
            db.insert(&mut m, row(id, 1));
        }
    }
}
