//! A B-tree stored in simulated memory (the paper's database-index study).
//!
//! Section V-B: "databases and file-systems do not use a binary search tree
//! but a generalization: b-tree". Each node holds a sorted array of up to
//! `max_keys` keys and `max_keys + 1` children; finding a key costs
//! `O(log₂ n)` comparisons total, but the *page locality* of those
//! comparisons depends entirely on the fanout — which is exactly the knob
//! Fig. 9 sweeps under remote swap.
//!
//! The tree lives in [`MemSpace`] memory: every key probe is a timed load,
//! so search cost emerges from the memory system rather than being modelled.
//!
//! Node layout (little-endian u64 fields):
//!
//! ```text
//! +0   num_keys
//! +8   is_leaf (0/1)
//! +16  keys[max_keys]
//! +16+8·max_keys  children[max_keys+1]   (virtual addresses)
//! ```
//!
//! Construction offers both the paper's *population* method — a bulk load
//! producing a tree whose levels are all full except the last, filled left
//! to right ("the best case for the remote swap technique") — and standard
//! top-down insertion with preemptive node splitting.

use cohfree_core::{MemSpace, SimDuration};

/// Per-comparison CPU cost charged during searches.
const CMP_COST: SimDuration = SimDuration(1_500); // 1.5 ns

/// A B-tree handle (the tree itself lives in the memory space).
///
/// ```
/// use cohfree_core::{ClusterConfig, LocalMachine};
/// use cohfree_workloads::BTree;
///
/// let mut mem = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
/// let keys: Vec<u64> = (0..1_000).map(|i| i * 2).collect();
/// let tree = BTree::bulk_load(&mut mem, &keys, 167); // the paper's fanout
/// assert!(tree.search(&mut mem, 500).found);
/// assert!(!tree.search(&mut mem, 501).found);
/// assert_eq!(tree.collect_range(&mut mem, 10, 20), vec![10, 12, 14, 16, 18, 20]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    root: u64,
    max_keys: usize,
    height: u32,
    len: u64,
}

/// Search outcome with the cost drivers Fig. 9 discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Whether the key is present.
    pub found: bool,
    /// Nodes visited (tree levels inspected).
    pub nodes_visited: u32,
    /// Key slots probed across all binary searches.
    pub probes: u32,
}

impl BTree {
    /// Bytes occupied by one node for a given `max_keys`.
    pub fn node_bytes(max_keys: usize) -> u64 {
        24 + 16 * max_keys as u64
    }

    /// Number of children an internal node may have (the paper's `m`).
    pub fn fanout(&self) -> usize {
        self.max_keys + 1
    }

    /// Keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Keys capacity of a tree of `height` levels: `(max_keys+1)^h − 1`.
    pub fn capacity(max_keys: usize, height: u32) -> u64 {
        (max_keys as u64 + 1).pow(height) - 1
    }

    // ------------------------------------------------------------------
    // Node accessors (each is a timed memory operation)
    // ------------------------------------------------------------------

    fn alloc_node<M: MemSpace + ?Sized>(mem: &mut M, max_keys: usize) -> u64 {
        mem.alloc(Self::node_bytes(max_keys))
    }

    fn num_keys<M: MemSpace + ?Sized>(mem: &mut M, node: u64) -> u64 {
        mem.read_u64(node)
    }

    fn set_num_keys<M: MemSpace + ?Sized>(mem: &mut M, node: u64, n: u64) {
        mem.write_u64(node, n);
    }

    fn is_leaf<M: MemSpace + ?Sized>(mem: &mut M, node: u64) -> bool {
        mem.read_u64(node + 8) != 0
    }

    fn set_is_leaf<M: MemSpace + ?Sized>(mem: &mut M, node: u64, leaf: bool) {
        mem.write_u64(node + 8, leaf as u64);
    }

    fn key_addr(&self, node: u64, i: usize) -> u64 {
        node + 16 + 8 * i as u64
    }

    fn child_addr(&self, node: u64, i: usize) -> u64 {
        node + 16 + 8 * self.max_keys as u64 + 8 * i as u64
    }

    fn key<M: MemSpace + ?Sized>(&self, mem: &mut M, node: u64, i: usize) -> u64 {
        mem.read_u64(self.key_addr(node, i))
    }

    fn set_key<M: MemSpace + ?Sized>(&self, mem: &mut M, node: u64, i: usize, k: u64) {
        mem.write_u64(self.key_addr(node, i), k);
    }

    fn child<M: MemSpace + ?Sized>(&self, mem: &mut M, node: u64, i: usize) -> u64 {
        mem.read_u64(self.child_addr(node, i))
    }

    fn set_child<M: MemSpace + ?Sized>(&self, mem: &mut M, node: u64, i: usize, c: u64) {
        mem.write_u64(self.child_addr(node, i), c);
    }

    // ------------------------------------------------------------------
    // Bulk load (the paper's population method)
    // ------------------------------------------------------------------

    /// Build a tree from `keys` (strictly ascending) where every level but
    /// the last is full and the last level fills left to right.
    ///
    /// # Panics
    /// Panics if `max_keys < 3` or `keys` is not strictly ascending.
    pub fn bulk_load<M: MemSpace + ?Sized>(mem: &mut M, keys: &[u64], max_keys: usize) -> BTree {
        assert!(max_keys >= 3, "max_keys must be >= 3");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "bulk_load requires strictly ascending keys"
        );
        if keys.is_empty() {
            return Self::new(mem, max_keys);
        }
        let mut height = 1u32;
        while Self::capacity(max_keys, height) < keys.len() as u64 {
            height += 1;
        }
        let mut tree = BTree {
            root: 0,
            max_keys,
            height,
            len: keys.len() as u64,
        };
        tree.root = tree.build_level(mem, keys, height);
        tree
    }

    fn build_level<M: MemSpace + ?Sized>(&self, mem: &mut M, keys: &[u64], height: u32) -> u64 {
        let node = Self::alloc_node(mem, self.max_keys);
        if height == 1 {
            debug_assert!(keys.len() <= self.max_keys, "leaf overflow in bulk load");
            Self::set_is_leaf(mem, node, true);
            Self::set_num_keys(mem, node, keys.len() as u64);
            for (i, &k) in keys.iter().enumerate() {
                self.set_key(mem, node, i, k);
            }
            return node;
        }
        Self::set_is_leaf(mem, node, false);
        let child_cap = Self::capacity(self.max_keys, height - 1) as usize;
        // Minimum keys a *feasible* subtree of the given height can hold
        // (every internal node needs >= 1 key, i.e. >= 2 children).
        let min_feasible = (1usize << (height - 1)) - 1;
        let mut i = 0usize;
        let mut nkeys = 0usize;
        let mut nchildren = 0usize;
        while i < keys.len() {
            let remaining = keys.len() - i;
            // Fill children from the left as full as possible, but (a) an
            // internal node must end with >= 2 children, and (b) never leave
            // a remainder (after the separator) too small to form a feasible
            // right sibling of the same height.
            let take = if remaining <= child_cap && nchildren >= 1 {
                remaining
            } else if remaining > child_cap && remaining - child_cap > min_feasible {
                child_cap
            } else {
                remaining - 1 - min_feasible
            };
            let child = self.build_level(mem, &keys[i..i + take], height - 1);
            self.set_child(mem, node, nchildren, child);
            nchildren += 1;
            i += take;
            if i < keys.len() {
                // Next key separates this child from the following one.
                self.set_key(mem, node, nkeys, keys[i]);
                nkeys += 1;
                i += 1;
            }
        }
        debug_assert!(nkeys <= self.max_keys, "internal overflow in bulk load");
        debug_assert_eq!(nchildren, nkeys + 1, "child/separator mismatch");
        Self::set_num_keys(mem, node, nkeys as u64);
        node
    }

    // ------------------------------------------------------------------
    // Incremental insertion (preemptive top-down splitting)
    // ------------------------------------------------------------------

    /// An empty tree.
    pub fn new<M: MemSpace + ?Sized>(mem: &mut M, max_keys: usize) -> BTree {
        assert!(max_keys >= 3, "max_keys must be >= 3");
        let root = Self::alloc_node(mem, max_keys);
        Self::set_is_leaf(mem, root, true);
        Self::set_num_keys(mem, root, 0);
        BTree {
            root,
            max_keys,
            height: 1,
            len: 0,
        }
    }

    /// Insert `key`; returns false if it was already present.
    pub fn insert<M: MemSpace + ?Sized>(&mut self, mem: &mut M, key: u64) -> bool {
        // Preemptive split of a full root grows the tree.
        if Self::num_keys(mem, self.root) as usize == self.max_keys {
            let old_root = self.root;
            let new_root = Self::alloc_node(mem, self.max_keys);
            Self::set_is_leaf(mem, new_root, false);
            Self::set_num_keys(mem, new_root, 0);
            self.set_child(mem, new_root, 0, old_root);
            self.root = new_root;
            self.height += 1;
            self.split_child(mem, new_root, 0);
        }
        let inserted = self.insert_nonfull(mem, self.root, key);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Split the full `idx`-th child of `parent` (which must be non-full).
    fn split_child<M: MemSpace + ?Sized>(&self, mem: &mut M, parent: u64, idx: usize) {
        let child = self.child(mem, parent, idx);
        let right = Self::alloc_node(mem, self.max_keys);
        let leaf = Self::is_leaf(mem, child);
        Self::set_is_leaf(mem, right, leaf);
        let mid = self.max_keys / 2;
        let median = self.key(mem, child, mid);
        let right_keys = self.max_keys - mid - 1;
        for i in 0..right_keys {
            let k = self.key(mem, child, mid + 1 + i);
            self.set_key(mem, right, i, k);
        }
        if !leaf {
            for i in 0..=right_keys {
                let c = self.child(mem, child, mid + 1 + i);
                self.set_child(mem, right, i, c);
            }
        }
        Self::set_num_keys(mem, right, right_keys as u64);
        Self::set_num_keys(mem, child, mid as u64);
        // Shift parent entries right to make room at idx.
        let pk = Self::num_keys(mem, parent) as usize;
        let mut i = pk;
        while i > idx {
            let k = self.key(mem, parent, i - 1);
            self.set_key(mem, parent, i, k);
            let c = self.child(mem, parent, i);
            self.set_child(mem, parent, i + 1, c);
            i -= 1;
        }
        self.set_key(mem, parent, idx, median);
        self.set_child(mem, parent, idx + 1, right);
        Self::set_num_keys(mem, parent, pk as u64 + 1);
    }

    fn insert_nonfull<M: MemSpace + ?Sized>(&self, mem: &mut M, mut node: u64, key: u64) -> bool {
        loop {
            let n = Self::num_keys(mem, node) as usize;
            let (pos, found) = self.search_in_node(mem, node, n, key, &mut 0);
            if found {
                return false;
            }
            if Self::is_leaf(mem, node) {
                // Shift keys right and insert.
                let mut i = n;
                while i > pos {
                    let k = self.key(mem, node, i - 1);
                    self.set_key(mem, node, i, k);
                    i -= 1;
                }
                self.set_key(mem, node, pos, key);
                Self::set_num_keys(mem, node, n as u64 + 1);
                return true;
            }
            let mut next = self.child(mem, node, pos);
            if Self::num_keys(mem, next) as usize == self.max_keys {
                self.split_child(mem, node, pos);
                let sep = self.key(mem, node, pos);
                if key == sep {
                    return false;
                }
                next = if key < sep {
                    self.child(mem, node, pos)
                } else {
                    self.child(mem, node, pos + 1)
                };
            }
            node = next;
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Binary search within a node's key array. Returns `(child index or
    /// insert position, exact match)` and counts probes.
    fn search_in_node<M: MemSpace + ?Sized>(
        &self,
        mem: &mut M,
        node: u64,
        n: usize,
        key: u64,
        probes: &mut u32,
    ) -> (usize, bool) {
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let k = self.key(mem, node, mid);
            mem.compute(CMP_COST);
            *probes += 1;
            if k == key {
                return (mid, true);
            } else if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo, false)
    }

    /// Look up `key`, timing every memory touch.
    pub fn search<M: MemSpace + ?Sized>(&self, mem: &mut M, key: u64) -> SearchOutcome {
        let mut node = self.root;
        let mut nodes_visited = 0u32;
        let mut probes = 0u32;
        loop {
            nodes_visited += 1;
            let n = Self::num_keys(mem, node) as usize;
            let (pos, found) = self.search_in_node(mem, node, n, key, &mut probes);
            if found {
                return SearchOutcome {
                    found: true,
                    nodes_visited,
                    probes,
                };
            }
            if Self::is_leaf(mem, node) {
                return SearchOutcome {
                    found: false,
                    nodes_visited,
                    probes,
                };
            }
            node = self.child(mem, node, pos);
        }
    }

    /// Collect all keys in `[lo, hi]` in ascending order, pruning subtrees
    /// outside the range (every touched node is a timed access — the
    /// range-scan cost the database study measures).
    pub fn collect_range<M: MemSpace + ?Sized>(&self, mem: &mut M, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if lo <= hi && !self.is_empty() {
            self.range_rec(mem, self.root, lo, hi, &mut out);
        }
        out
    }

    fn range_rec<M: MemSpace + ?Sized>(
        &self,
        mem: &mut M,
        node: u64,
        lo: u64,
        hi: u64,
        out: &mut Vec<u64>,
    ) {
        let n = Self::num_keys(mem, node) as usize;
        let leaf = Self::is_leaf(mem, node);
        // Find the first key >= lo by binary search (timed probes).
        let mut probes = 0;
        let (start, _) = self.search_in_node(mem, node, n, lo, &mut probes);
        if !leaf {
            // The child left of `start` may hold keys in range.
            let c = self.child(mem, node, start);
            self.range_rec(mem, c, lo, hi, out);
        }
        for i in start..n {
            let k = self.key(mem, node, i);
            mem.compute(CMP_COST);
            if k > hi {
                return; // everything further right is out of range
            }
            if k >= lo {
                out.push(k);
            }
            if !leaf {
                let c = self.child(mem, node, i + 1);
                self.range_rec(mem, c, lo, hi, out);
            }
        }
    }

    /// In-order key walk (for validation against an oracle). Untimed
    /// traversal order, but every read is still a timed access.
    pub fn collect_keys<M: MemSpace + ?Sized>(&self, mem: &mut M) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.collect_rec(mem, self.root, &mut out);
        out
    }

    fn collect_rec<M: MemSpace + ?Sized>(&self, mem: &mut M, node: u64, out: &mut Vec<u64>) {
        let n = Self::num_keys(mem, node) as usize;
        let leaf = Self::is_leaf(mem, node);
        for i in 0..n {
            if !leaf {
                let c = self.child(mem, node, i);
                self.collect_rec(mem, c, out);
            }
            out.push(self.key(mem, node, i));
        }
        if !leaf {
            let c = self.child(mem, node, n);
            self.collect_rec(mem, c, out);
        }
    }

    /// Validate structural invariants (sortedness, occupancy, uniform leaf
    /// depth). Panics with a description on violation. Test/debug aid.
    pub fn check_invariants<M: MemSpace + ?Sized>(&self, mem: &mut M) {
        let depth = self.check_rec(mem, self.root, u64::MIN, u64::MAX, true);
        assert_eq!(depth, self.height, "height bookkeeping mismatch");
        let keys = self.collect_keys(mem);
        assert_eq!(keys.len() as u64, self.len, "len bookkeeping mismatch");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "in-order walk not strictly ascending"
        );
    }

    fn check_rec<M: MemSpace + ?Sized>(
        &self,
        mem: &mut M,
        node: u64,
        lo: u64,
        hi: u64,
        is_root: bool,
    ) -> u32 {
        let n = Self::num_keys(mem, node) as usize;
        assert!(n <= self.max_keys, "node overfull");
        if !is_root {
            // Bulk-loaded right-edge nodes and split halves may be sparse,
            // but never empty internal nodes.
            if !Self::is_leaf(mem, node) {
                assert!(n >= 1, "empty internal node");
            }
        }
        let mut prev = lo;
        let mut first = true;
        for i in 0..n {
            let k = self.key(mem, node, i);
            assert!(
                k < hi && (first || k > prev) && k >= lo,
                "key order violation"
            );
            prev = k;
            first = false;
        }
        if Self::is_leaf(mem, node) {
            return 1;
        }
        let mut depth = None;
        for i in 0..=n {
            let child_lo = if i == 0 {
                lo
            } else {
                self.key(mem, node, i - 1)
            };
            let child_hi = if i == n { hi } else { self.key(mem, node, i) };
            let c = self.child(mem, node, i);
            let d = self.check_rec(mem, c, child_lo, child_hi, false);
            match depth {
                None => depth = Some(d),
                Some(prev_d) => assert_eq!(prev_d, d, "leaves at different depths"),
            }
        }
        depth.expect("internal node has children") + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_core::{ClusterConfig, LocalMachine, Rng};

    fn mem() -> LocalMachine {
        LocalMachine::new(ClusterConfig::prototype(), 4 << 30)
    }

    fn ascending(n: u64) -> Vec<u64> {
        (0..n).map(|i| i * 3 + 1).collect()
    }

    #[test]
    fn bulk_load_finds_all_keys() {
        let mut m = mem();
        let keys = ascending(1_000);
        let t = BTree::bulk_load(&mut m, &keys, 7);
        t.check_invariants(&mut m);
        for &k in &keys {
            assert!(t.search(&mut m, k).found, "key {k}");
        }
        // Absent keys (between the stride) are not found.
        for k in [0u64, 2, 3, 5, 2_999] {
            assert!(!t.search(&mut m, k).found, "phantom key {k}");
        }
        assert_eq!(t.len(), 1_000);
    }

    #[test]
    fn bulk_load_heights_match_capacity() {
        let mut m = mem();
        // max_keys=3 -> fanout 4: capacity h=1:3, h=2:15, h=3:63
        assert_eq!(BTree::capacity(3, 1), 3);
        assert_eq!(BTree::capacity(3, 2), 15);
        assert_eq!(BTree::capacity(3, 3), 63);
        let t3 = BTree::bulk_load(&mut m, &ascending(3), 3);
        assert_eq!(t3.height(), 1);
        let t15 = BTree::bulk_load(&mut m, &ascending(15), 3);
        assert_eq!(t15.height(), 2);
        let t16 = BTree::bulk_load(&mut m, &ascending(16), 3);
        assert_eq!(t16.height(), 3);
        t16.check_invariants(&mut m);
    }

    #[test]
    fn bulk_load_fills_left_to_right() {
        let mut m = mem();
        // 20 keys, max_keys=3 (cap h=3 is 63): last level partially filled.
        let t = BTree::bulk_load(&mut m, &ascending(20), 3);
        t.check_invariants(&mut m);
        assert_eq!(t.collect_keys(&mut m), ascending(20));
    }

    #[test]
    fn higher_fanout_means_shorter_tree() {
        let mut m = mem();
        let keys = ascending(10_000);
        let narrow = BTree::bulk_load(&mut m, &keys, 3);
        let wide = BTree::bulk_load(&mut m, &keys, 63);
        assert!(wide.height() < narrow.height());
        // And fewer nodes are visited per search.
        let a = narrow.search(&mut m, keys[777]);
        let b = wide.search(&mut m, keys[777]);
        assert!(b.nodes_visited < a.nodes_visited);
    }

    #[test]
    fn search_cost_is_log2_comparisons() {
        // Paper: "the total cost of retrieving one element in the b-tree is
        // still O(log2 n) comparisons" regardless of fanout.
        let mut m = mem();
        let keys = ascending(4_096);
        for fanout_keys in [3usize, 15, 63] {
            let t = BTree::bulk_load(&mut m, &keys, fanout_keys);
            let out = t.search(&mut m, keys[2_222]);
            assert!(
                out.probes <= 2 * 13 + 6,
                "fanout {fanout_keys}: {} probes for n=4096",
                out.probes
            );
        }
    }

    #[test]
    fn insert_matches_oracle() {
        let mut m = mem();
        let mut t = BTree::new(&mut m, 5);
        let mut oracle = std::collections::BTreeSet::new();
        let mut rng = Rng::new(42);
        for _ in 0..2_000 {
            let k = rng.below(500); // duplicates guaranteed
            assert_eq!(t.insert(&mut m, k), oracle.insert(k), "key {k}");
        }
        t.check_invariants(&mut m);
        assert_eq!(t.len(), oracle.len() as u64);
        assert_eq!(
            t.collect_keys(&mut m),
            oracle.iter().copied().collect::<Vec<_>>()
        );
        for k in 0..500 {
            assert_eq!(t.search(&mut m, k).found, oracle.contains(&k), "key {k}");
        }
    }

    #[test]
    fn insert_grows_height() {
        let mut m = mem();
        let mut t = BTree::new(&mut m, 3);
        for k in 0..64 {
            t.insert(&mut m, k);
        }
        assert!(t.height() >= 3);
        t.check_invariants(&mut m);
    }

    #[test]
    fn empty_tree() {
        let mut m = mem();
        let t = BTree::new(&mut m, 5);
        assert!(t.is_empty());
        assert!(!t.search(&mut m, 42).found);
        let e = BTree::bulk_load(&mut m, &[], 5);
        assert!(e.is_empty());
    }

    #[test]
    fn node_bytes_layout() {
        // 24 + 16*168 = 2712 bytes — under a page for the paper's optimum.
        assert_eq!(BTree::node_bytes(168), 2712);
        assert!(BTree::node_bytes(168) < 4096);
        // 255 keys: 24 + 4080 = 4104 — just over a page.
        assert!(BTree::node_bytes(255) > 4096);
    }

    #[test]
    fn search_timing_grows_with_depth() {
        let mut m = mem();
        let keys = ascending(50_000);
        let t = BTree::bulk_load(&mut m, &keys, 7);
        let t0 = m.now();
        t.search(&mut m, keys[123]);
        let shallow_probe = m.now().since(t0);
        assert!(shallow_probe > cohfree_core::SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bulk_load_rejects_unsorted() {
        let mut m = mem();
        BTree::bulk_load(&mut m, &[3, 1, 2], 5);
    }

    #[test]
    fn range_scan_matches_oracle() {
        let mut m = mem();
        let keys = ascending(5_000); // 1, 4, 7, ...
        let t = BTree::bulk_load(&mut m, &keys, 7);
        let oracle: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        for (lo, hi) in [
            (0u64, 50),
            (100, 100),
            (101, 103),
            (4_000, 9_000),
            (14_990, 20_000),
        ] {
            let got = t.collect_range(&mut m, lo, hi);
            let want: Vec<u64> = oracle.range(lo..=hi).copied().collect();
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
        // Inverted bounds yield nothing.
        assert!(t.collect_range(&mut m, 9_000, 2_000).is_empty());
        // Full-range scan equals the in-order walk.
        assert_eq!(t.collect_range(&mut m, 0, u64::MAX), keys);
    }

    #[test]
    fn range_scan_prunes_subtrees() {
        let mut m = mem();
        let keys = ascending(50_000);
        let t = BTree::bulk_load(&mut m, &keys, 167);
        // A narrow range must touch far fewer lines than a full scan.
        let before = m.stats().reads;
        t.collect_range(&mut m, 1_000, 1_100);
        let narrow = m.stats().reads - before;
        let before = m.stats().reads;
        t.collect_range(&mut m, 0, u64::MAX);
        let full = m.stats().reads - before;
        assert!(
            narrow * 50 < full,
            "narrow range reads {narrow}, full scan reads {full}"
        );
    }

    #[test]
    fn range_scan_on_inserted_tree() {
        let mut m = mem();
        let mut t = BTree::new(&mut m, 5);
        let mut rng = Rng::new(77);
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..3_000 {
            let k = rng.below(10_000);
            t.insert(&mut m, k);
            oracle.insert(k);
        }
        let got = t.collect_range(&mut m, 2_500, 7_500);
        let want: Vec<u64> = oracle.range(2_500..=7_500).copied().collect();
        assert_eq!(got, want);
    }
}
