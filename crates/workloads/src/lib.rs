#![warn(missing_docs)]

//! # cohfree-workloads — applications over simulated memory
//!
//! Every workload is written against [`cohfree_core::MemSpace`] and runs
//! unchanged over local memory, the paper's remote memory, remote swap or
//! disk swap — the comparison methodology of the paper's evaluation.
//!
//! * [`random`] — the uniform random-access kernel of Figs. 6–8,
//! * [`btree`] — a full B-tree (bulk load, insert with splitting, search)
//!   stored *in simulated memory*, the database-index study of Figs. 9–10,
//! * [`hash`] — an open-addressing hash index, footnote 3's "in-memory
//!   databases usually implement hash indexes" comparison,
//! * [`db`] — a miniature in-memory database (heap table + both indexes),
//!   the query study the paper's conclusions call for,
//! * [`serving`] — an open-loop multi-tenant serving generator (Poisson
//!   and diurnal arrivals, KV point and columnar-scan mixes) driving the
//!   World's serving threads, the EXT-SERVING study's workload,
//! * [`parsec`] — four synthetic kernels in the locality/footprint classes
//!   of the PARSEC benchmarks used in Fig. 11 (blackscholes, raytrace,
//!   canneal, streamcluster).
//!
//! All workloads are deterministic given a seed and compute *real* results
//! (the B-tree really finds its keys); a wrong timing model cannot silently
//! corrupt functional behaviour, and vice versa.

pub mod btree;
pub mod db;
pub mod hash;
pub mod parsec;
pub mod random;
pub mod report;
pub mod serving;

pub use btree::BTree;
pub use db::Database;
pub use hash::HashIndex;
pub use report::Report;
