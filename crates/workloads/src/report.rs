//! Workload run reports.

use cohfree_core::backend::AccessStats;
use cohfree_core::SimDuration;

/// What a workload run measured.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Simulated wall-clock duration of the measured phase.
    pub elapsed: SimDuration,
    /// Operations the workload counts (searches, options, swaps, ...).
    pub operations: u64,
    /// Backend statistics delta over the measured phase.
    pub stats: AccessStats,
}

impl Report {
    /// Measure a phase: runs `f`, differencing clock and statistics.
    pub fn measure<M, F>(mem: &mut M, operations: u64, f: F) -> Report
    where
        M: cohfree_core::MemSpace + ?Sized,
        F: FnOnce(&mut M),
    {
        let t0 = mem.now();
        let s0 = mem.stats();
        f(mem);
        let t1 = mem.now();
        let s1 = mem.stats();
        Report {
            elapsed: t1.since(t0),
            operations,
            stats: diff(s0, s1),
        }
    }

    /// Mean simulated time per operation.
    pub fn per_op(&self) -> SimDuration {
        SimDuration(
            self.elapsed
                .as_ps()
                .checked_div(self.operations)
                .unwrap_or(0),
        )
    }

    /// Elapsed as fractional milliseconds (bench output convenience).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed.as_ms_f64()
    }
}

fn diff(a: AccessStats, b: AccessStats) -> AccessStats {
    AccessStats {
        reads: b.reads - a.reads,
        writes: b.writes - a.writes,
        bytes_read: b.bytes_read - a.bytes_read,
        bytes_written: b.bytes_written - a.bytes_written,
        cache_hits: b.cache_hits - a.cache_hits,
        cache_misses: b.cache_misses - a.cache_misses,
        tlb_walks: b.tlb_walks - a.tlb_walks,
        minor_faults: b.minor_faults - a.minor_faults,
        major_faults: b.major_faults - a.major_faults,
        remote_reads: b.remote_reads - a.remote_reads,
        remote_writes: b.remote_writes - a.remote_writes,
        pages_in: b.pages_in - a.pages_in,
        pages_out: b.pages_out - a.pages_out,
        allocations: b.allocations - a.allocations,
        reservations: b.reservations - a.reservations,
        prefetch_hits: b.prefetch_hits - a.prefetch_hits,
        prefetch_issued: b.prefetch_issued - a.prefetch_issued,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_core::{ClusterConfig, LocalMachine, MemSpace};

    #[test]
    fn measure_differences_clock_and_stats() {
        let mut m = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
        let va = m.alloc(4096);
        m.read_u64(va); // pre-phase noise
        let r = Report::measure(&mut m, 10, |m| {
            for i in 0..10 {
                m.write_u64(va + i * 8, i);
            }
        });
        assert_eq!(r.operations, 10);
        assert!(r.elapsed > SimDuration::ZERO);
        assert_eq!(r.stats.writes, 10);
        assert_eq!(r.stats.reads, 0, "pre-phase read excluded");
        assert!(r.per_op() > SimDuration::ZERO);
    }

    #[test]
    fn per_op_zero_ops() {
        let mut m = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
        let r = Report::measure(&mut m, 0, |_| {});
        assert_eq!(r.per_op(), SimDuration::ZERO);
    }
}
