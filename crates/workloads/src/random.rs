//! The uniform random-access kernel ("random benchmark") of Section V-A.
//!
//! A fixed number of independent 64-bit loads (optionally stores) at
//! uniformly random offsets inside one large allocation. In the paper this
//! kernel, run with 1–4 threads against 1–4 memory servers at varying
//! distances, exposes the client- and server-side RMC bottlenecks
//! (Figs. 7–8). The multi-threaded variants are driven directly through
//! [`cohfree_core::World`] traffic threads; this module provides the
//! single-threaded `MemSpace` form used for backend comparisons.

use crate::report::Report;
use cohfree_core::{MemSpace, Rng, SimDuration};
use cohfree_sim::rng::Zipf;

/// Parameters of a random-access run.
#[derive(Debug, Clone, Copy)]
pub struct RandomAccess {
    /// Bytes in the target buffer.
    pub buffer_bytes: u64,
    /// Number of accesses.
    pub accesses: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// CPU time between accesses (address generation etc.).
    pub think: SimDuration,
    /// Zipf popularity exponent over 4 KiB blocks (`None` = uniform).
    /// Skewed popularity is the realistic regime for key-value workloads
    /// and rewards any caching layer.
    pub zipf: Option<f64>,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RandomAccess {
    fn default() -> Self {
        RandomAccess {
            buffer_bytes: 64 << 20,
            accesses: 100_000,
            write_fraction: 0.0,
            think: SimDuration::ns(4),
            zipf: None,
            seed: 1,
        }
    }
}

impl RandomAccess {
    /// Allocate the buffer and run the kernel, measuring the access phase.
    pub fn run<M: MemSpace + ?Sized>(&self, mem: &mut M) -> Report {
        let va = mem.alloc(self.buffer_bytes);
        let slots = self.buffer_bytes / 8;
        let mut rng = Rng::new(self.seed);
        // Zipf ranks address 4 KiB blocks; a random word inside the block
        // is then chosen uniformly (rank tables over every word would be
        // enormous).
        let blocks = (self.buffer_bytes / 4096).max(1);
        let zipf = self.zipf.map(|s| Zipf::new(blocks as usize, s));
        Report::measure(mem, self.accesses, |mem| {
            for _ in 0..self.accesses {
                mem.compute(self.think);
                let a = match &zipf {
                    Some(z) => {
                        let block = z.sample(&mut rng) as u64;
                        va + block * 4096 + rng.below(4096 / 8) * 8
                    }
                    None => va + rng.below(slots) * 8,
                };
                if rng.chance(self.write_fraction) {
                    mem.write_u64(a, a);
                } else {
                    mem.read_u64(a);
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_core::backend::{AllocPolicy, RemoteMemorySpace};
    use cohfree_core::{ClusterConfig, LocalMachine, NodeId};

    #[test]
    fn local_faster_than_remote() {
        let spec = RandomAccess {
            buffer_bytes: 8 << 20,
            accesses: 2_000,
            ..RandomAccess::default()
        };
        let mut local = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
        let r_local = spec.run(&mut local);
        let mut remote = RemoteMemorySpace::new(
            ClusterConfig::prototype(),
            NodeId::new(1),
            AllocPolicy::AlwaysRemote,
        );
        let r_remote = spec.run(&mut remote);
        assert!(
            r_remote.elapsed.as_ns_f64() > 3.0 * r_local.elapsed.as_ns_f64(),
            "remote {} vs local {}",
            r_remote.elapsed,
            r_local.elapsed
        );
        assert_eq!(r_local.operations, 2_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = RandomAccess {
            buffer_bytes: 1 << 20,
            accesses: 500,
            ..RandomAccess::default()
        };
        let run = || {
            let mut m = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
            spec.run(&mut m).elapsed
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zipf_skew_improves_cache_behaviour() {
        // Skewed popularity concentrates accesses on hot blocks, which the
        // write-back cache absorbs — uniform traffic misses far more.
        let base = RandomAccess {
            buffer_bytes: 32 << 20,
            accesses: 4_000,
            ..RandomAccess::default()
        };
        let uniform = {
            let mut m = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
            base.run(&mut m)
        };
        let skewed = {
            let mut m = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
            RandomAccess {
                zipf: Some(1.1),
                ..base
            }
            .run(&mut m)
        };
        assert!(
            skewed.stats.cache_hit_ratio() > uniform.stats.cache_hit_ratio() + 0.1,
            "zipf {} vs uniform {}",
            skewed.stats.cache_hit_ratio(),
            uniform.stats.cache_hit_ratio()
        );
        assert!(skewed.elapsed < uniform.elapsed);
    }

    #[test]
    fn writes_counted() {
        let spec = RandomAccess {
            buffer_bytes: 1 << 20,
            accesses: 1_000,
            write_fraction: 1.0,
            ..RandomAccess::default()
        };
        let mut m = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
        let r = spec.run(&mut m);
        assert_eq!(r.stats.writes, 1_000);
        assert_eq!(r.stats.reads, 0);
    }
}
