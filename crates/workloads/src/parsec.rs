//! PARSEC-class synthetic kernels (Fig. 11).
//!
//! The paper runs four PARSEC benchmarks chosen by memory footprint:
//! *blackscholes*, *raytrace*, *canneal* and *streamcluster*. The originals
//! are external artifacts (sources + reference inputs), so per the
//! substitution rule we implement kernels in the **same locality and
//! footprint class** — the two properties Fig. 11's comparison actually
//! exercises:
//!
//! | kernel | access pattern | footprint vs. local memory |
//! |--------|----------------|----------------------------|
//! | [`BlackScholes`] | streaming, sequential | large, but page-friendly |
//! | [`RayTrace`] | grid-coherent walks, random ray origins | large, moderate locality |
//! | [`Canneal`] | random pointer-chasing element swaps | very large, hostile |
//! | [`StreamCluster`] | small working set reused per block | small — fits local memory |
//!
//! Each kernel computes real results (prices, hit counts, wire length,
//! cluster assignment costs) over data stored in the [`MemSpace`], with CPU
//! work charged via `compute`.

use crate::report::Report;
use cohfree_core::{MemSpace, Rng, SimDuration};

/// Standard normal CDF (Abramowitz–Stegun 7.1.26-based approximation).
fn norm_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let nd = (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if x >= 0.0 {
        1.0 - nd * poly
    } else {
        nd * poly
    }
}

// ---------------------------------------------------------------------
// blackscholes
// ---------------------------------------------------------------------

/// Streaming option pricer: reads each option record once, sequentially.
#[derive(Debug, Clone, Copy)]
pub struct BlackScholes {
    /// Number of options (each record is 48 B + 8 B result).
    pub options: u64,
    /// Pricing passes over the whole array (PARSEC iterates too).
    pub passes: u32,
    /// PRNG seed for input generation.
    pub seed: u64,
}

impl Default for BlackScholes {
    fn default() -> Self {
        BlackScholes {
            options: 200_000,
            passes: 2,
            seed: 11,
        }
    }
}

/// Per-option math cost (five transcendental-ish ops).
const BS_COMPUTE: SimDuration = SimDuration(120_000); // 120 ns

impl BlackScholes {
    /// Footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.options * (48 + 8)
    }

    /// Populate inputs, then price all options `passes` times (measured).
    /// Returns the report and a checksum of prices (functional witness).
    pub fn run<M: MemSpace + ?Sized>(&self, mem: &mut M) -> (Report, f64) {
        let recs = mem.alloc(self.options * 48);
        let out = mem.alloc(self.options * 8);
        let mut rng = Rng::new(self.seed);
        for i in 0..self.options {
            let base = recs + i * 48;
            mem.write_f64(base, 10.0 + 90.0 * rng.f64()); // spot
            mem.write_f64(base + 8, 10.0 + 90.0 * rng.f64()); // strike
            mem.write_f64(base + 16, 0.01 + 0.09 * rng.f64()); // rate
            mem.write_f64(base + 24, 0.1 + 0.5 * rng.f64()); // volatility
            mem.write_f64(base + 32, 0.25 + 1.75 * rng.f64()); // expiry
            mem.write_f64(base + 40, if rng.chance(0.5) { 1.0 } else { 0.0 }); // call/put
        }
        let mut checksum = 0.0;
        let report = Report::measure(mem, self.options * self.passes as u64, |mem| {
            for _ in 0..self.passes {
                checksum = 0.0;
                for i in 0..self.options {
                    let base = recs + i * 48;
                    let s = mem.read_f64(base);
                    let k = mem.read_f64(base + 8);
                    let r = mem.read_f64(base + 16);
                    let v = mem.read_f64(base + 24);
                    let t = mem.read_f64(base + 32);
                    let call = mem.read_f64(base + 40) > 0.5;
                    mem.compute(BS_COMPUTE);
                    let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * t.sqrt());
                    let d2 = d1 - v * t.sqrt();
                    let price = if call {
                        s * norm_cdf(d1) - k * (-r * t).exp() * norm_cdf(d2)
                    } else {
                        k * (-r * t).exp() * norm_cdf(-d2) - s * norm_cdf(-d1)
                    };
                    mem.write_f64(out + i * 8, price);
                    checksum += price;
                }
            }
        });
        (report, checksum)
    }
}

// ---------------------------------------------------------------------
// raytrace
// ---------------------------------------------------------------------

/// A grid-accelerated sphere tracer: rays enter random (x, y) cells and
/// march along z, intersecting the spheres in each visited cell.
#[derive(Debug, Clone, Copy)]
pub struct RayTrace {
    /// Grid extent per axis (cells = extent³).
    pub extent: u64,
    /// Spheres scattered in the scene.
    pub spheres: u64,
    /// Rays traced (measured phase).
    pub rays: u64,
    /// Max sphere indices stored per cell.
    pub cell_capacity: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RayTrace {
    fn default() -> Self {
        RayTrace {
            extent: 32,
            spheres: 50_000,
            rays: 20_000,
            cell_capacity: 8,
            seed: 22,
        }
    }
}

/// Per ray-sphere intersection math cost.
const RT_INTERSECT: SimDuration = SimDuration(35_000); // 35 ns

impl RayTrace {
    /// Footprint in bytes (cells + spheres).
    pub fn footprint(&self) -> u64 {
        let cells = self.extent.pow(3);
        cells * (8 + self.cell_capacity * 8) + self.spheres * 32
    }

    /// Build the scene, then trace rays (measured). Returns the report and
    /// the total number of ray–sphere hits (functional witness).
    pub fn run<M: MemSpace + ?Sized>(&self, mem: &mut M) -> (Report, u64) {
        let cells = self.extent.pow(3);
        let cell_stride = 8 + self.cell_capacity * 8; // count + indices
        let grid = mem.alloc(cells * cell_stride);
        let spheres = mem.alloc(self.spheres * 32);
        let mut rng = Rng::new(self.seed);
        // Scatter spheres; register each in its containing cell.
        for s in 0..self.spheres {
            let (x, y, z) = (
                rng.f64() * self.extent as f64,
                rng.f64() * self.extent as f64,
                rng.f64() * self.extent as f64,
            );
            let base = spheres + s * 32;
            mem.write_f64(base, x);
            mem.write_f64(base + 8, y);
            mem.write_f64(base + 16, z);
            mem.write_f64(base + 24, 0.2 + 0.3 * rng.f64());
            let ci = ((z as u64) * self.extent + y as u64) * self.extent + x as u64;
            let cbase = grid + ci * cell_stride;
            let cnt = mem.read_u64(cbase);
            if cnt < self.cell_capacity {
                mem.write_u64(cbase + 8 + cnt * 8, s);
                mem.write_u64(cbase, cnt + 1);
            }
        }
        let mut hits = 0u64;
        let report = Report::measure(mem, self.rays, |mem| {
            for _ in 0..self.rays {
                // Axis-aligned ray through a random (x, y) column.
                let rx = rng.f64() * self.extent as f64;
                let ry = rng.f64() * self.extent as f64;
                let (cx, cy) = (rx as u64, ry as u64);
                for cz in 0..self.extent {
                    let ci = (cz * self.extent + cy) * self.extent + cx;
                    let cbase = grid + ci * cell_stride;
                    let cnt = mem.read_u64(cbase);
                    let mut hit_here = false;
                    for j in 0..cnt {
                        let s = mem.read_u64(cbase + 8 + j * 8);
                        let sbase = spheres + s * 32;
                        let sx = mem.read_f64(sbase);
                        let sy = mem.read_f64(sbase + 8);
                        let r = mem.read_f64(sbase + 24);
                        mem.compute(RT_INTERSECT);
                        let d2 = (sx - rx).powi(2) + (sy - ry).powi(2);
                        if d2 <= r * r {
                            hits += 1;
                            hit_here = true;
                            break;
                        }
                    }
                    if hit_here {
                        break; // first hit terminates the ray
                    }
                }
            }
        });
        (report, hits)
    }
}

// ---------------------------------------------------------------------
// canneal
// ---------------------------------------------------------------------

/// Simulated-annealing netlist placement: random element pairs considered
/// for a position swap based on the wire length to their neighbors.
/// Uniformly random pointer chasing over the whole netlist — the paper's
/// "memory footprint is quite large … performance of remote swap worsens
/// exponentially" case.
#[derive(Debug, Clone, Copy)]
pub struct Canneal {
    /// Netlist elements (each record: 2 f64 position + 4 u64 neighbors = 48 B).
    pub elements: u64,
    /// Swap evaluations (measured phase).
    pub steps: u64,
    /// Initial annealing temperature.
    pub temperature: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Canneal {
    fn default() -> Self {
        Canneal {
            elements: 400_000,
            steps: 30_000,
            temperature: 100.0,
            seed: 33,
        }
    }
}

const ELEM_BYTES: u64 = 48;
const NEIGHBORS: u64 = 4;
/// Per-neighbor wire-length evaluation cost.
const CN_EVAL: SimDuration = SimDuration(8_000); // 8 ns

impl Canneal {
    /// Footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.elements * ELEM_BYTES
    }

    fn pos<M: MemSpace + ?Sized>(mem: &mut M, base: u64, e: u64) -> (f64, f64) {
        let b = base + e * ELEM_BYTES;
        (mem.read_f64(b), mem.read_f64(b + 8))
    }

    /// Wire length of `e` to its neighbors, assuming `e` sits at `(x, y)`.
    fn cost_at<M: MemSpace + ?Sized>(mem: &mut M, base: u64, e: u64, x: f64, y: f64) -> f64 {
        let b = base + e * ELEM_BYTES;
        let mut c = 0.0;
        for j in 0..NEIGHBORS {
            let n = mem.read_u64(b + 16 + j * 8);
            let (nx, ny) = Self::pos(mem, base, n);
            mem.compute(CN_EVAL);
            c += (nx - x).abs() + (ny - y).abs();
        }
        c
    }

    /// Build the netlist, then anneal (measured). Returns the report and
    /// the number of accepted swaps (functional witness).
    pub fn run<M: MemSpace + ?Sized>(&self, mem: &mut M) -> (Report, u64) {
        assert!(self.elements > NEIGHBORS, "netlist too small");
        let base = mem.alloc(self.elements * ELEM_BYTES);
        let mut rng = Rng::new(self.seed);
        for e in 0..self.elements {
            let b = base + e * ELEM_BYTES;
            mem.write_f64(b, rng.f64() * 1000.0);
            mem.write_f64(b + 8, rng.f64() * 1000.0);
            for j in 0..NEIGHBORS {
                // Random neighbor distinct from self.
                let mut n = rng.below(self.elements);
                if n == e {
                    n = (n + 1) % self.elements;
                }
                mem.write_u64(b + 16 + j * 8, n);
            }
        }
        let mut accepted = 0u64;
        let mut temp = self.temperature;
        let report = Report::measure(mem, self.steps, |mem| {
            for step in 0..self.steps {
                let a = rng.below(self.elements);
                let mut b = rng.below(self.elements);
                if b == a {
                    b = (b + 1) % self.elements;
                }
                let (ax, ay) = Self::pos(mem, base, a);
                let (bx, by) = Self::pos(mem, base, b);
                let before =
                    Self::cost_at(mem, base, a, ax, ay) + Self::cost_at(mem, base, b, bx, by);
                let after =
                    Self::cost_at(mem, base, a, bx, by) + Self::cost_at(mem, base, b, ax, ay);
                let delta = after - before;
                let accept = delta < 0.0 || rng.chance((-delta / temp).exp());
                if accept {
                    let ab = base + a * ELEM_BYTES;
                    let bb = base + b * ELEM_BYTES;
                    mem.write_f64(ab, bx);
                    mem.write_f64(ab + 8, by);
                    mem.write_f64(bb, ax);
                    mem.write_f64(bb + 8, ay);
                    accepted += 1;
                }
                if step % 1_000 == 999 {
                    temp *= 0.95; // cooling schedule
                }
            }
        });
        (report, accepted)
    }
}

// ---------------------------------------------------------------------
// streamcluster
// ---------------------------------------------------------------------

/// Online k-median-style clustering over streamed point blocks. The block
/// buffer and the center table are reused for every block, so the working
/// set stays small — the paper's "footprint … small enough to fit in the
/// local memory of the remote swap scenario, so no swap is needed".
#[derive(Debug, Clone, Copy)]
pub struct StreamCluster {
    /// Points per block.
    pub block_points: u64,
    /// Dimensions per point.
    pub dims: u64,
    /// Cluster centers.
    pub centers: u64,
    /// Blocks streamed (measured phase).
    pub blocks: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for StreamCluster {
    fn default() -> Self {
        StreamCluster {
            block_points: 2_048,
            dims: 16,
            centers: 8,
            blocks: 8,
            seed: 44,
        }
    }
}

/// Per-dimension distance cost.
const SC_DIM: SimDuration = SimDuration(1_500); // 1.5 ns

impl StreamCluster {
    /// Working-set footprint in bytes (block + centers).
    pub fn footprint(&self) -> u64 {
        (self.block_points + self.centers) * self.dims * 8
    }

    /// Stream blocks through the clusterer (measured). Returns the report
    /// and the summed assignment cost (functional witness).
    pub fn run<M: MemSpace + ?Sized>(&self, mem: &mut M) -> (Report, f64) {
        let block = mem.alloc(self.block_points * self.dims * 8);
        let centers = mem.alloc(self.centers * self.dims * 8);
        let mut rng = Rng::new(self.seed);
        for c in 0..self.centers {
            for d in 0..self.dims {
                mem.write_f64(centers + (c * self.dims + d) * 8, rng.f64() * 100.0);
            }
        }
        let mut total_cost = 0.0;
        let ops = self.blocks * self.block_points;
        let report = Report::measure(mem, ops, |mem| {
            for _ in 0..self.blocks {
                // "Receive" the next block: overwrite the reused buffer.
                for p in 0..self.block_points {
                    for d in 0..self.dims {
                        mem.write_f64(block + (p * self.dims + d) * 8, rng.f64() * 100.0);
                    }
                }
                // Assign each point to its nearest center.
                for p in 0..self.block_points {
                    let mut best = f64::INFINITY;
                    let mut best_c = 0;
                    for c in 0..self.centers {
                        let mut dist = 0.0;
                        for d in 0..self.dims {
                            let pv = mem.read_f64(block + (p * self.dims + d) * 8);
                            let cv = mem.read_f64(centers + (c * self.dims + d) * 8);
                            mem.compute(SC_DIM);
                            dist += (pv - cv).abs();
                        }
                        if dist < best {
                            best = dist;
                            best_c = c;
                        }
                    }
                    total_cost += best;
                    // Drift the winning center toward the point (1/16 step).
                    for d in 0..self.dims {
                        let ca = centers + (best_c * self.dims + d) * 8;
                        let pv = mem.read_f64(block + (p * self.dims + d) * 8);
                        let cv = mem.read_f64(ca);
                        mem.write_f64(ca, cv + (pv - cv) / 16.0);
                    }
                }
            }
        });
        (report, total_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_core::{ClusterConfig, LocalMachine};

    fn mem() -> LocalMachine {
        LocalMachine::new(ClusterConfig::prototype(), 8 << 30)
    }

    #[test]
    fn blackscholes_prices_are_sane() {
        let k = BlackScholes {
            options: 2_000,
            passes: 1,
            seed: 1,
        };
        let mut m = mem();
        let (r, checksum) = k.run(&mut m);
        assert_eq!(r.operations, 2_000);
        assert!(
            checksum.is_finite() && checksum > 0.0,
            "checksum {checksum}"
        );
        // Streaming: cache hit ratio should be high (sequential 48B records).
        assert!(
            r.stats.cache_hit_ratio() > 0.5,
            "{}",
            r.stats.cache_hit_ratio()
        );
    }

    #[test]
    fn blackscholes_deterministic() {
        let k = BlackScholes {
            options: 500,
            passes: 1,
            seed: 7,
        };
        let (r1, c1) = k.run(&mut mem());
        let (r2, c2) = k.run(&mut mem());
        assert_eq!(c1, c2);
        assert_eq!(r1.elapsed, r2.elapsed);
    }

    #[test]
    fn raytrace_hits_some_spheres() {
        let k = RayTrace {
            extent: 8,
            spheres: 2_000,
            rays: 500,
            cell_capacity: 8,
            seed: 2,
        };
        let mut m = mem();
        let (r, hits) = k.run(&mut m);
        assert_eq!(r.operations, 500);
        assert!(hits > 0, "a dense scene must produce hits");
        assert!(hits <= 500, "at most one counted hit per ray");
    }

    #[test]
    fn canneal_accepts_some_swaps() {
        let k = Canneal {
            elements: 5_000,
            steps: 1_000,
            temperature: 100.0,
            seed: 3,
        };
        let mut m = mem();
        let (r, accepted) = k.run(&mut m);
        assert_eq!(r.operations, 1_000);
        assert!(accepted > 0 && accepted <= 1_000, "accepted {accepted}");
    }

    #[test]
    fn canneal_locality_is_poor_once_it_outgrows_the_cache() {
        // 200k elements = 9.6 MB >> the 2 MiB cache: random pointer chasing
        // must miss far more than a sequential stream does.
        let k = Canneal {
            elements: 200_000,
            steps: 2_000,
            temperature: 100.0,
            seed: 3,
        };
        let (r, _) = k.run(&mut mem());
        let bs = BlackScholes {
            options: 200_000,
            passes: 1,
            seed: 3,
        };
        let (rb, _) = bs.run(&mut mem());
        assert!(
            r.stats.cache_hit_ratio() < rb.stats.cache_hit_ratio(),
            "canneal {} !< blackscholes {}",
            r.stats.cache_hit_ratio(),
            rb.stats.cache_hit_ratio()
        );
    }

    #[test]
    fn streamcluster_working_set_is_small() {
        let k = StreamCluster::default();
        assert!(k.footprint() < 2 << 20, "footprint {}", k.footprint());
        let mut m = mem();
        let (r, cost) = k.run(&mut m);
        assert!(cost > 0.0);
        assert!(
            r.stats.cache_hit_ratio() > 0.9,
            "{}",
            r.stats.cache_hit_ratio()
        );
    }

    #[test]
    fn footprints_scale_with_parameters() {
        let small = Canneal {
            elements: 1_000,
            ..Canneal::default()
        };
        let big = Canneal {
            elements: 1_000_000,
            ..Canneal::default()
        };
        assert_eq!(big.footprint(), small.footprint() * 1_000);
        assert_eq!(
            BlackScholes {
                options: 100,
                passes: 1,
                seed: 0
            }
            .footprint(),
            5_600
        );
    }

    #[test]
    fn norm_cdf_properties() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(norm_cdf(5.0) > 0.999_99);
        assert!(norm_cdf(-5.0) < 1e-5);
        // Symmetry.
        for x in [0.3, 1.1, 2.7] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }
}
