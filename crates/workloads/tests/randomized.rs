//! Seeded randomized tests for the workload data structures against
//! host-side oracles.
//!
//! Offline build: no external property-testing framework; every case is
//! reproducible from the loop seed via the simulator's own [`Rng`].

use cohfree_core::{ClusterConfig, LocalMachine};
use cohfree_sim::Rng;
use cohfree_workloads::{BTree, HashIndex};

const CASES: u64 = 64;

fn mem() -> LocalMachine {
    LocalMachine::new(ClusterConfig::prototype(), 4 << 30)
}

/// Incremental insertion matches BTreeSet for any key sequence and any
/// legal fanout; invariants hold throughout.
#[test]
fn btree_insert_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xB7EE + seed);
        let max_keys = rng.range(3, 12) as usize;
        let count = rng.range(1, 400) as usize;
        let keys: Vec<u64> = (0..count).map(|_| rng.below(500)).collect();
        let mut m = mem();
        let mut tree = BTree::new(&mut m, max_keys);
        let mut oracle = std::collections::BTreeSet::new();
        for k in &keys {
            assert_eq!(tree.insert(&mut m, *k), oracle.insert(*k), "seed {seed}");
        }
        tree.check_invariants(&mut m);
        assert_eq!(tree.len(), oracle.len() as u64, "seed {seed}");
        assert_eq!(
            tree.collect_keys(&mut m),
            oracle.iter().copied().collect::<Vec<_>>(),
            "seed {seed}"
        );
        for probe in 0..500u64 {
            assert_eq!(
                tree.search(&mut m, probe).found,
                oracle.contains(&probe),
                "seed {seed}: probe {probe}"
            );
        }
    }
}

/// Bulk load over any strictly-sorted key set yields a valid tree with
/// exactly those keys, at any legal fanout.
#[test]
fn btree_bulk_load_matches_input() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xB01D + seed);
        let max_keys = rng.range(3, 20) as usize;
        let count = rng.range(1, 800) as usize;
        let raw: std::collections::BTreeSet<u64> = (0..count).map(|_| rng.below(100_000)).collect();
        let keys: Vec<u64> = raw.into_iter().collect();
        let mut m = mem();
        let tree = BTree::bulk_load(&mut m, &keys, max_keys);
        tree.check_invariants(&mut m);
        assert_eq!(tree.collect_keys(&mut m), keys, "seed {seed}");
        // Height is the minimum that fits.
        let h = tree.height();
        assert!(
            BTree::capacity(max_keys, h) >= keys.len() as u64,
            "seed {seed}"
        );
        if h > 1 {
            assert!(
                BTree::capacity(max_keys, h - 1) < keys.len() as u64,
                "seed {seed}"
            );
        }
        // Spot-check membership at the boundaries.
        assert!(tree.search(&mut m, keys[0]).found, "seed {seed}");
        assert!(
            tree.search(&mut m, *keys.last().unwrap()).found,
            "seed {seed}"
        );
    }
}

/// Search cost stays O(log2 n) probes regardless of fanout — the paper's
/// Section V-B claim.
#[test]
fn btree_probe_count_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x9_20BE + seed);
        let max_keys = [3usize, 7, 31, 127][rng.below(4) as usize];
        let n = rng.range(100, 3_000) as usize;
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 7).collect();
        let mut m = mem();
        let tree = BTree::bulk_load(&mut m, &keys, max_keys);
        let out = tree.search(&mut m, keys[n / 2]);
        let log2n = (n as f64).log2().ceil() as u32;
        // Binary search per node ~ log2(node) probes, summed ≈ log2(n) plus
        // one bookkeeping probe per level.
        assert!(
            out.probes <= 2 * log2n + 2 * out.nodes_visited + 4,
            "seed {seed}: probes {} for n {} (height {})",
            out.probes,
            n,
            tree.height()
        );
    }
}

/// Hash index matches a HashMap oracle under arbitrary insert/get mixes.
#[test]
fn hash_index_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x4A54 + seed);
        let mut m = mem();
        let mut h = HashIndex::new(&mut m, 1_024);
        let mut oracle: std::collections::HashMap<u64, u64> = Default::default();
        let ops = rng.range(1, 300);
        for _ in 0..ops {
            let k = rng.below(300);
            let v = rng.next_u64();
            if rng.chance(0.5) {
                let fresh = h.insert(&mut m, k, v);
                assert_eq!(fresh, oracle.insert(k, v).is_none(), "seed {seed}");
            } else {
                assert_eq!(h.get(&mut m, k), oracle.get(&k).copied(), "seed {seed}");
            }
        }
        assert_eq!(h.len(), oracle.len() as u64, "seed {seed}");
    }
}
