//! Property-based tests for the workload data structures against host-side
//! oracles.

use cohfree_core::{ClusterConfig, LocalMachine};
use cohfree_workloads::{BTree, HashIndex};
use proptest::prelude::*;

fn mem() -> LocalMachine {
    LocalMachine::new(ClusterConfig::prototype(), 4 << 30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental insertion matches BTreeSet for any key sequence and any
    /// legal fanout; invariants hold throughout.
    #[test]
    fn btree_insert_matches_oracle(
        max_keys in 3usize..12,
        keys in prop::collection::vec(0u64..500, 1..400)
    ) {
        let mut m = mem();
        let mut tree = BTree::new(&mut m, max_keys);
        let mut oracle = std::collections::BTreeSet::new();
        for k in &keys {
            prop_assert_eq!(tree.insert(&mut m, *k), oracle.insert(*k));
        }
        tree.check_invariants(&mut m);
        prop_assert_eq!(tree.len(), oracle.len() as u64);
        prop_assert_eq!(
            tree.collect_keys(&mut m),
            oracle.iter().copied().collect::<Vec<_>>()
        );
        for probe in 0..500u64 {
            prop_assert_eq!(tree.search(&mut m, probe).found, oracle.contains(&probe));
        }
    }

    /// Bulk load over any strictly-sorted key set yields a valid tree with
    /// exactly those keys, at any legal fanout.
    #[test]
    fn btree_bulk_load_matches_input(
        max_keys in 3usize..20,
        raw in prop::collection::btree_set(0u64..100_000, 1..800)
    ) {
        let keys: Vec<u64> = raw.into_iter().collect();
        let mut m = mem();
        let tree = BTree::bulk_load(&mut m, &keys, max_keys);
        tree.check_invariants(&mut m);
        prop_assert_eq!(tree.collect_keys(&mut m), keys.clone());
        // Height is the minimum that fits.
        let h = tree.height();
        prop_assert!(BTree::capacity(max_keys, h) >= keys.len() as u64);
        if h > 1 {
            prop_assert!(BTree::capacity(max_keys, h - 1) < keys.len() as u64);
        }
        // Spot-check membership at the boundaries.
        prop_assert!(tree.search(&mut m, keys[0]).found);
        prop_assert!(tree.search(&mut m, *keys.last().unwrap()).found);
    }

    /// Search cost stays O(log2 n) probes regardless of fanout — the
    /// paper's Section V-B claim.
    #[test]
    fn btree_probe_count_bounded(
        max_keys in prop::sample::select(vec![3usize, 7, 31, 127]),
        n in 100usize..3_000
    ) {
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 7).collect();
        let mut m = mem();
        let tree = BTree::bulk_load(&mut m, &keys, max_keys);
        let out = tree.search(&mut m, keys[n / 2]);
        let log2n = (n as f64).log2().ceil() as u32;
        // Binary search per node ~ log2(node) probes, summed ≈ log2(n) plus
        // one bookkeeping probe per level.
        prop_assert!(
            out.probes <= 2 * log2n + 2 * out.nodes_visited + 4,
            "probes {} for n {} (height {})",
            out.probes, n, tree.height()
        );
    }

    /// Hash index matches a HashMap oracle under arbitrary insert/get mixes.
    #[test]
    fn hash_index_matches_oracle(
        ops in prop::collection::vec((0u64..300, any::<u64>(), prop::bool::ANY), 1..300)
    ) {
        let mut m = mem();
        let mut h = HashIndex::new(&mut m, 1_024);
        let mut oracle: std::collections::HashMap<u64, u64> = Default::default();
        for (k, v, is_insert) in ops {
            if is_insert {
                let fresh = h.insert(&mut m, k, v);
                prop_assert_eq!(fresh, oracle.insert(k, v).is_none());
            } else {
                prop_assert_eq!(h.get(&mut m, k), oracle.get(&k).copied());
            }
        }
        prop_assert_eq!(h.len(), oracle.len() as u64);
    }
}
