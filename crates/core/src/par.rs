//! Conservative parallel discrete-event engine for a single world.
//!
//! [`run_parallel`] partitions the cluster's nodes into contiguous lane
//! ranges (*shards*), each with its own event queue, and advances all shards
//! concurrently through synchronized time windows. The window length is the
//! fabric's minimum per-hop latency `W = router_delay + link_latency`: a lane
//! event executing at `now` can only schedule cross-shard work at
//! `now + W` or later (messages must cross at least one hop; suspect
//! declarations are deferred a full window by construction), so every event
//! inside the window `[window start, window start + W)` is causally
//! independent of anything another shard does in the same window.
//!
//! The contract is **byte-identical output** with the sequential engine, not
//! merely statistical equivalence:
//!
//! * Every event carries the content-determined ordering key of
//!   [`crate::exec::make_key`]; both engines derive identical keys for
//!   identical events, so popping each shard's queue in `(time, key)` order
//!   executes exactly the sequential order restricted to that shard's lanes.
//! * Per-lane state (node, threads, pending transactions, fabric router
//!   rows) is *owned* by its shard — no locks, no sharing; cross-shard
//!   events travel through an outbox that the coordinator routes at window
//!   barriers.
//! * Trace calls are deferred into per-shard logs stamped with
//!   `(time, key, opseq)` and replayed against the real sink in global event
//!   order at every barrier, so even Full-mode span streams come out
//!   byte-identical.
//! * Global events (`Sample`, `Fault`, `Suspect`, `Manager`) never run
//!   against a shard.
//!   When one is due, the coordinator merges every shard back into the
//!   [`World`] and runs it through the *same* `&mut World` code path the
//!   sequential engine uses, then re-partitions. Correctness never depends
//!   on a parallel re-implementation of whole-world behaviour.

use std::sync::mpsc;
use std::thread::JoinHandle;

use cohfree_fabric::{FabricCounters, FabricRow, FabricShared};
use cohfree_sim::{EventQueue, FastMap, SimTime};

use crate::config::ClusterConfig;
use crate::exec::{self, TraceLog};
use crate::world::{Ev, NodeCtx, PendingTx, Thread, World};

/// A cross-shard event awaiting routing: `(at, key, destination lane, ev)`.
type OutboxEntry = (SimTime, u128, u16, Ev);

/// One worker assignment: the shard to run, the window end, and the global
/// event budget (livelock bound).
type Cmd = (Shard, SimTime, u64);

/// What [`split_world`] returns: the shards, the holding queue for pending
/// global (lane 0) events, and the global-thread-id -> (shard, slot) map.
type SplitWorld = (Vec<Option<Shard>>, EventQueue<Ev>, Vec<(u16, u32)>);

/// One partition of the world: a contiguous lane range `[lo, hi]` with
/// exclusive ownership of everything those lanes mutate.
struct Shard {
    idx: u16,
    /// First lane (node id) owned by this shard.
    lo: u16,
    /// Last lane owned by this shard (inclusive).
    hi: u16,
    cfg: ClusterConfig,
    nodes: Vec<NodeCtx>,
    threads: Vec<Thread>,
    /// Global thread id -> (shard, local slot), identical in every shard.
    tmap: Vec<(u16, u32)>,
    pending: FastMap<u64, PendingTx>,
    evac_remaps: Vec<Vec<(u64, u64, u64)>>,
    exec_counts: Vec<u64>,
    /// Fabric router rows for lanes `lo..=hi` (index `lane - lo`).
    rows: Vec<FabricRow>,
    queue: EventQueue<Ev>,
    outbox: Vec<OutboxEntry>,
    shared: FabricShared,
    counters: FabricCounters,
    dead: Vec<bool>,
    tlog: TraceLog,
    /// Dummy completion slots: blocking drivers never run in parallel, so
    /// these must still be `None` at every merge (asserted there).
    sync_done: Option<(u64, SimTime)>,
}

impl Shard {
    /// Execute every pending event with `time < t_end` in `(time, key)`
    /// order — or, with `single`, exactly the one next event (used to make
    /// progress when saturated timers sit at `SimTime::MAX`, where no
    /// strictly-later window end exists).
    fn run_window(&mut self, t_end: SimTime, single: bool, limit: u64) {
        while let Some((at, _)) = self.queue.peek_key() {
            if !single && at >= t_end {
                return;
            }
            let (at, key, ev) = self.queue.pop_entry().expect("peeked event vanished");
            self.exec(at, key, ev);
            assert!(
                self.queue.processed() <= limit,
                "event budget exceeded: livelock at {at} (shard {})",
                self.idx
            );
            if single {
                return;
            }
        }
    }

    /// Run one lane event through the shared executor over this shard.
    fn exec(&mut self, now: SimTime, key: u128, ev: Ev) {
        let lane = exec::key_lane(key);
        debug_assert!(
            lane >= self.lo && lane <= self.hi,
            "event for lane {lane} popped by shard {} [{}..={}]",
            self.idx,
            self.lo,
            self.hi
        );
        let slot = (lane - self.lo) as usize;
        let idx = self.exec_counts[slot];
        self.exec_counts[slot] += 1;
        let mut ctx = exec::LaneCtx {
            cfg: &self.cfg,
            first: self.lo,
            nodes: &mut self.nodes,
            threads: &mut self.threads,
            tmap: Some(&self.tmap),
            shard: self.idx,
            pending: &mut self.pending,
            evac_remaps: &mut self.evac_remaps,
            rows: &mut self.rows,
            fab_shared: &self.shared,
            fab_counters: &mut self.counters,
            dead: &self.dead,
            coh: None, // a coherent domain forces the sequential engine
            trace: exec::TraceCtx::Log(&mut self.tlog),
            sink: exec::SchedSink::Par {
                queue: &mut self.queue,
                outbox: &mut self.outbox,
                lo: self.lo,
                hi: self.hi,
            },
            sync_done: &mut self.sync_done,
            now,
            cur_lane: 0,
            cur_gen: 0,
            cur_key: 0,
            cur_idx: 0,
            child: 0,
        };
        exec::exec_event(&mut ctx, now, key, idx, ev);
    }
}

/// A window-executing worker thread. Shards move to the worker by value for
/// each window and move back at the barrier, so no shard state is ever
/// shared between threads.
struct Worker {
    cmd: mpsc::Sender<Cmd>,
    result: mpsc::Receiver<Shard>,
    handle: Option<JoinHandle<()>>,
}

/// Worker-pool size for `parts` partitions: one window-executing thread
/// per spare hardware core (the coordinator occupies one and always runs
/// one busy shard itself); busy shards beyond the pool queue round-robin
/// on the workers' channels. On a single-core host the pool is empty and
/// every window runs inline on the coordinator — identical output, zero
/// channel traffic. `COHFREE_PAR_WORKERS` overrides the spare-core count
/// (useful for exercising the channel path on small hosts).
fn pool_size(parts: usize) -> usize {
    let spare = match std::env::var("COHFREE_PAR_WORKERS") {
        Ok(v) => v.parse().unwrap_or(0),
        Err(_) => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .saturating_sub(1),
    };
    (parts - 1).min(spare)
}

/// Receive from `rx`, spinning briefly before blocking. Windows are short
/// (often a few microseconds of work), so at the barrier the next message
/// is usually moments away; a bounded spin turns the common handoff into a
/// couple hundred nanoseconds instead of a futex sleep/wake cycle.
fn spin_recv<T>(rx: &mpsc::Receiver<T>) -> Result<T, mpsc::RecvError> {
    for _ in 0..1_024 {
        match rx.try_recv() {
            Ok(v) => return Ok(v),
            Err(mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
            Err(mpsc::TryRecvError::Disconnected) => return Err(mpsc::RecvError),
        }
    }
    rx.recv()
}

impl Worker {
    fn spawn() -> Worker {
        let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
        let (res_tx, res_rx) = mpsc::channel::<Shard>();
        let handle = std::thread::spawn(move || {
            while let Ok((mut shard, t_end, limit)) = spin_recv(&cmd_rx) {
                shard.run_window(t_end, false, limit);
                if res_tx.send(shard).is_err() {
                    break;
                }
            }
        });
        Worker {
            cmd: cmd_tx,
            result: res_rx,
            handle: Some(handle),
        }
    }

    /// Receive the shard back after a window, forwarding any worker panic.
    fn recv(&mut self) -> Shard {
        match spin_recv(&self.result) {
            Ok(shard) => shard,
            Err(_) => {
                let handle = self.handle.take().expect("worker joined twice");
                match handle.join() {
                    Err(payload) => std::panic::resume_unwind(payload),
                    Ok(()) => unreachable!("worker exited mid-window without panicking"),
                }
            }
        }
    }

    /// Shut the worker down, forwarding any pending panic.
    fn finish(mut self) {
        drop(self.cmd);
        drop(self.result);
        if let Some(handle) = self.handle.take() {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Split `v`, indexed by `lane - base`, into the per-range chunks
/// `[lo - base, hi - base]`; whatever precedes the first range stays in `v`.
fn split_lanes<T>(v: &mut Vec<T>, ranges: &[(u16, u16)], base: u16) -> Vec<Vec<T>> {
    let mut parts = Vec::with_capacity(ranges.len());
    for &(lo, _) in ranges.iter().rev() {
        parts.push(v.split_off((lo - base) as usize));
    }
    parts.reverse();
    parts
}

/// Tear the world's per-lane state apart into one [`Shard`] per range, plus
/// a holding queue for pending global (lane 0) events. The world keeps its
/// clock, processed count, and all whole-world state (directory, sampler,
/// fault log, trace sink).
fn split_world(world: &mut World, ranges: &[(u16, u16)], owner: &[u16]) -> SplitWorld {
    let parts = ranges.len();

    // Threads leave in global-id order; `tmap` records where each one went
    // so lane code can address them by global id and the merge can restore
    // the exact original order.
    let mut tmap: Vec<(u16, u32)> = Vec::with_capacity(world.threads.len());
    let mut threads_parts: Vec<Vec<Thread>> =
        std::iter::repeat_with(Vec::new).take(parts).collect();
    for th in world.threads.drain(..) {
        let s = owner[th.spec.node.get() as usize] as usize;
        tmap.push((s as u16, threads_parts[s].len() as u32));
        threads_parts[s].push(th);
    }

    let mut nodes = std::mem::take(&mut world.nodes);
    let nodes_parts = split_lanes(&mut nodes, ranges, 1);
    debug_assert!(nodes.is_empty());
    let mut evacs = std::mem::take(&mut world.evac_remaps);
    let evac_parts = split_lanes(&mut evacs, ranges, 1);
    debug_assert!(evacs.is_empty());
    let mut counts = std::mem::take(&mut world.exec_counts);
    let count_parts = split_lanes(&mut counts, ranges, 1);
    debug_assert!(counts.is_empty());

    // Row 0 is the "there is no node 0" placeholder; drop it here and
    // recreate it at merge.
    let mut rows = world.fabric.take_rows();
    let rows_parts = split_lanes(&mut rows, ranges, 0);
    debug_assert_eq!(rows.len(), 1);

    // In-flight transactions belong to the lane of their source node
    // (tag's node prefix), the only lane whose events touch them.
    let mut pending_parts: Vec<FastMap<u64, PendingTx>> = std::iter::repeat_with(FastMap::default)
        .take(parts)
        .collect();
    for (tag, p) in world.pending.drain() {
        pending_parts[owner[(tag >> 48) as usize] as usize].insert(tag, p);
    }

    // Pending events route by the lane encoded in their key (threads are
    // already drained, so `lane_of` could not resolve `ThreadWake`s here).
    let mut queues: Vec<EventQueue<Ev>> = std::iter::repeat_with(EventQueue::new)
        .take(parts)
        .collect();
    let mut global = EventQueue::new();
    for (at, key, ev) in world.queue.drain_entries() {
        let lane = exec::key_lane(key);
        if lane == exec::GLOBAL_LANE {
            global.schedule_keyed(at, key, ev);
        } else {
            queues[owner[lane as usize] as usize].schedule_keyed(at, key, ev);
        }
    }

    let shared = world.fabric.share();
    let trace_on = world.trace.enabled();
    let mut shards: Vec<Option<Shard>> = Vec::with_capacity(parts);
    let zipped = nodes_parts
        .into_iter()
        .zip(threads_parts)
        .zip(evac_parts)
        .zip(count_parts)
        .zip(rows_parts)
        .zip(pending_parts)
        .zip(queues);
    for (s, ((((((nodes, threads), evac_remaps), exec_counts), rows), pending), queue)) in
        zipped.enumerate()
    {
        let (lo, hi) = ranges[s];
        shards.push(Some(Shard {
            idx: s as u16,
            lo,
            hi,
            cfg: world.cfg,
            nodes,
            threads,
            tmap: tmap.clone(),
            pending,
            evac_remaps,
            exec_counts,
            rows,
            queue,
            outbox: Vec::new(),
            shared: shared.clone(),
            counters: FabricCounters::default(),
            dead: world.dead.clone(),
            tlog: TraceLog::new(trace_on),
            sync_done: None,
        }));
    }
    (shards, global, tmap)
}

/// Fold every shard (and the global holding queue) back into the world,
/// restoring the exact sequential layout. Returns the latest instant any
/// shard's clock reached (the global end time once all queues are empty).
fn merge_shards(
    world: &mut World,
    slots: &mut [Option<Shard>],
    tmap: &[(u16, u32)],
    global: &mut EventQueue<Ev>,
) -> SimTime {
    let mut t_final = world.queue.now();
    let mut rows = vec![FabricRow::default()]; // the "no node 0" placeholder
    let mut thread_iters: Vec<std::vec::IntoIter<Thread>> = Vec::with_capacity(slots.len());
    for slot in slots.iter_mut() {
        let mut s = slot.take().expect("shard out at a worker during merge");
        debug_assert!(s.outbox.is_empty(), "unrouted outbox at merge");
        debug_assert!(s.tlog.buf.is_empty(), "unreplayed trace log at merge");
        debug_assert!(s.sync_done.is_none());
        t_final = t_final.max(s.queue.now());
        world.nodes.append(&mut s.nodes);
        world.evac_remaps.append(&mut s.evac_remaps);
        world.exec_counts.append(&mut s.exec_counts);
        rows.append(&mut s.rows);
        world.pending.extend(s.pending);
        world.fabric.absorb_counters(&mut s.counters);
        world.queue.add_processed(s.queue.processed());
        for (at, key, ev) in s.queue.drain_entries() {
            world.queue.schedule_keyed(at, key, ev);
        }
        thread_iters.push(s.threads.into_iter());
    }
    world.fabric.put_rows(rows);
    for &(shard, _) in tmap {
        let th = thread_iters[shard as usize]
            .next()
            .expect("thread map out of sync with shard thread counts");
        world.threads.push(th);
    }
    debug_assert!(thread_iters.into_iter().all(|mut it| it.next().is_none()));
    for (at, key, ev) in global.drain_entries() {
        world.queue.schedule_keyed(at, key, ev);
    }
    t_final
}

/// Route every shard's outbox: global events to the holding queue, lane
/// events to their owning shard. All entries must be at or past the window
/// barrier `t_end` — that is the conservative-lookahead invariant.
fn route_outboxes(
    slots: &mut [Option<Shard>],
    global: &mut EventQueue<Ev>,
    owner: &[u16],
    t_end: SimTime,
) {
    for i in 0..slots.len() {
        let outbox = std::mem::take(
            &mut slots[i]
                .as_mut()
                .expect("shard out at a worker during routing")
                .outbox,
        );
        for (at, key, lane, ev) in outbox {
            debug_assert!(
                at >= t_end,
                "cross-shard event at {at} violates the window barrier {t_end}"
            );
            if lane == exec::GLOBAL_LANE {
                global.schedule_keyed(at, key, ev);
            } else {
                let dst = owner[lane as usize] as usize;
                slots[dst]
                    .as_mut()
                    .expect("shard out at a worker during routing")
                    .queue
                    .schedule_keyed(at, key, ev);
            }
        }
    }
}

/// Replay every shard's deferred trace calls against the world's sink in
/// global `(time, key, opseq)` order. Called at every barrier — before any
/// merged-world global event makes *direct* sink calls — so the sink sees
/// calls in exactly the sequential order.
fn apply_trace_logs(world: &mut World, slots: &mut [Option<Shard>]) {
    let mut recs = Vec::new();
    for slot in slots.iter_mut() {
        if let Some(s) = slot.as_mut() {
            recs.append(&mut s.tlog.buf);
        }
    }
    if !recs.is_empty() {
        exec::replay_trace(&mut world.trace, recs);
    }
}

/// Drive `world` to completion with `world.parallel` shards. Pops the same
/// events in the same `(time, key)` order as the sequential loop in
/// [`World::run`], and leaves the world in a byte-identical final state.
pub(crate) fn run_parallel(world: &mut World, limit: u64) {
    debug_assert!(
        world.coherent_domain.is_empty(),
        "coherent domains require the sequential engine"
    );
    let lookahead = world.fabric.shared_ref().min_hop_latency();
    assert!(
        !lookahead.is_zero(),
        "zero-latency fabric requires the sequential engine"
    );
    let n = world.nodes.len();
    let parts = world.parallel.min(n).max(1);

    // Contiguous near-equal lane ranges [1, n], and lane -> shard index.
    let mut ranges: Vec<(u16, u16)> = Vec::with_capacity(parts);
    let (base, extra) = (n / parts, n % parts);
    let mut lo: u16 = 1;
    for s in 0..parts {
        let len = (base + usize::from(s < extra)) as u16;
        ranges.push((lo, lo + len - 1));
        lo += len;
    }
    let mut owner = vec![0u16; n + 1];
    for (s, &(lo, hi)) in ranges.iter().enumerate() {
        for lane in lo..=hi {
            owner[lane as usize] = s as u16;
        }
    }

    let mut workers: Vec<Worker> = (0..pool_size(parts)).map(|_| Worker::spawn()).collect();
    let (mut slots, mut global, tmap) = split_world(world, &ranges, &owner);

    loop {
        let shard_next = slots
            .iter()
            .filter_map(|s| s.as_ref().expect("shard at barrier").queue.peek_key())
            .min();
        let global_due = match (global.peek_key(), shard_next) {
            (Some(g), Some(s)) => g <= s,
            (Some(_), None) => true,
            (None, _) => false,
        };

        if global_due {
            // Reassemble the full world and run the due global burst through
            // the unmodified sequential code path.
            apply_trace_logs(world, &mut slots);
            merge_shards(world, &mut slots, &tmap, &mut global);
            while world
                .queue
                .peek_key()
                .is_some_and(|(_, k)| exec::key_lane(k) == exec::GLOBAL_LANE)
            {
                let (at, key, ev) = world.queue.pop_entry().expect("peeked event vanished");
                world.handle(at, key, ev);
                assert!(
                    world.queue.processed() <= limit,
                    "event budget exceeded: livelock at {at}"
                );
            }
            if world.queue.is_empty() {
                break;
            }
            let (s, g, _) = split_world(world, &ranges, &owner);
            slots = s;
            global = g;
            continue;
        }

        let Some((next_t, _)) = shard_next else {
            // Fully drained: fold everything back and surface the end time.
            apply_trace_logs(world, &mut slots);
            let t_final = merge_shards(world, &mut slots, &tmap, &mut global);
            world.queue.advance_to(t_final);
            break;
        };

        let t_end = if next_t == SimTime::MAX {
            // Saturated (effectively-infinite) timers: no strictly-later
            // window end exists, so run the single globally-next event.
            let (i, _) = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    s.as_ref()
                        .expect("shard at barrier")
                        .queue
                        .peek_key()
                        .map(|k| (i, k))
                })
                .min_by_key(|&(_, k)| k)
                .expect("nonempty shard exists");
            slots[i]
                .as_mut()
                .expect("shard at barrier")
                .run_window(SimTime::MAX, true, limit);
            SimTime::MAX
        } else {
            // One conservative window: every event below `t_end` is causally
            // independent across shards.
            let mut t_end = next_t.saturating_add(lookahead);
            if let Some((gt, _)) = global.peek_key() {
                t_end = t_end.min(gt);
            }
            let busy: Vec<usize> = (0..slots.len())
                .filter(|&i| {
                    slots[i]
                        .as_ref()
                        .expect("shard at barrier")
                        .queue
                        .peek_key()
                        .is_some_and(|(t, _)| t < t_end)
                })
                .collect();
            // The first busy shard always runs inline on the coordinator —
            // a window with a single busy shard never touches a channel —
            // and the rest spread round-robin over the worker pool (all of
            // them run inline when the pool is empty).
            let mut sent: Vec<Vec<usize>> = vec![Vec::new(); workers.len()];
            let mut inline: Vec<usize> = Vec::new();
            for (j, &i) in busy.iter().enumerate() {
                if j == 0 || workers.is_empty() {
                    inline.push(i);
                } else {
                    let w = (j - 1) % workers.len();
                    let shard = slots[i].take().expect("shard at barrier");
                    workers[w]
                        .cmd
                        .send((shard, t_end, limit))
                        .expect("worker hung up");
                    sent[w].push(i);
                }
            }
            for i in inline {
                slots[i]
                    .as_mut()
                    .expect("shard at barrier")
                    .run_window(t_end, false, limit);
            }
            for (w, list) in workers.iter_mut().zip(&sent) {
                for &i in list {
                    slots[i] = Some(w.recv());
                }
            }
            t_end
        };

        route_outboxes(&mut slots, &mut global, &owner, t_end);
        apply_trace_logs(world, &mut slots);
        let total = world.queue.processed()
            + slots
                .iter()
                .map(|s| s.as_ref().expect("shard at barrier").queue.processed())
                .sum::<u64>();
        assert!(total <= limit, "event budget exceeded: livelock (parallel)");
    }

    for w in workers {
        w.finish();
    }
}
