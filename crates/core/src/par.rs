//! Conservative parallel discrete-event engine for a single world.
//!
//! [`run_parallel`] partitions the cluster's nodes into contiguous lane
//! ranges (*shards*), each with its own event queue, and advances all shards
//! concurrently under a conservative-lookahead schedule. Three mechanisms
//! decide how far each shard may run between coordinator synchronizations:
//!
//! * **Asymmetric pairwise lookahead.** A cross-shard influence chain from
//!   shard `j` to shard `i` must traverse at least
//!   `D(j, i) = min_range_hops(range_j, range_i)` physical hops, each
//!   costing at least the fabric's minimum per-hop latency
//!   `W = router_delay + link_latency`. Shard `i` may therefore execute
//!   every event below `min_j (next_j + D(j, i)·W)` without ever seeing a
//!   message from the current round arrive in its past. Distances are
//!   computed once per run from the *healthy* topology: outages only remove
//!   links, so the healthy distance stays a valid lower bound under any
//!   reroute. The bound is directed (`D(j, i) ≠ D(i, j)` on a ring), which
//!   is what lets a laggard shard pull far ahead of a distant busy one —
//!   the old engine capped *everyone* at `global_min + W`.
//! * **Epoch barriers.** Instead of a coordinator sync per window, each
//!   scheduling round hands every busy shard its own deadline and the
//!   rounds repeat until the frontier has advanced `k` windows past the
//!   epoch's starting point (`k` = [`crate::ParTuning::epoch`],
//!   `COHFREE_PAR_EPOCH`; `k = 1` reproduces the old lock-step cadence).
//! * **Incremental global-event handling.** `Sample` and action-free
//!   `Manager` probes — the frequent globals — run against a read-only
//!   *view* assembled from shard borrows, with no merge at all; only
//!   `Fault`/`Suspect` and manager ticks that actually emit actions pay for
//!   a full merge + re-split.
//!
//! The contract is **byte-identical output** with the sequential engine, not
//! merely statistical equivalence:
//!
//! * Every event carries the content-determined ordering key of
//!   [`crate::exec::make_key`]; both engines derive identical keys for
//!   identical events, so popping each shard's queue in `(time, key)` order
//!   executes exactly the sequential order restricted to that shard's lanes.
//! * Per-lane state (node, threads, pending transactions, fabric router
//!   rows) is *owned* by its shard — no locks, no sharing; cross-shard
//!   events travel through an outbox that the coordinator routes at round
//!   barriers. Every deadline is clamped to the earliest pending global and
//!   to a lower bound on the earliest global any shard could still *create*
//!   (a `Suspect` fires no sooner than `W` past the earliest loss-recovery
//!   timer, queued or future-armed), so no shard frontier ever passes a
//!   global event.
//! * Trace calls are deferred into per-shard logs stamped with
//!   `(time, key, opseq)` and replayed against the real sink in global event
//!   order, so even Full-mode span streams come out byte-identical.
//! * Global events never run against a shard. View-path probes call the
//!   *same* [`World`] observation/decision code over the same per-lane
//!   state the merged world would hold; anything that mutates whole-world
//!   state reassembles the full [`World`] and runs through the unmodified
//!   sequential code path, then re-partitions. Correctness never depends on
//!   a parallel re-implementation of whole-world behaviour.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

use cohfree_fabric::{FabricCounters, FabricRow, FabricShared, Topology};
use cohfree_os::manager::ManagerAction;
use cohfree_sim::metrics;
use cohfree_sim::stats::LatencyHistogram;
use cohfree_sim::{EventQueue, FastMap, SimDuration, SimTime};

use crate::config::{ClusterConfig, ParPlacement, ParTuning};
use crate::envknob;
use crate::exec::{self, TraceLog};
use crate::world::{build_sample, Ev, NodeCtx, PendingTx, Thread, World};

/// A cross-shard event awaiting routing: `(at, key, destination lane, ev)`.
type OutboxEntry = (SimTime, u128, u16, Ev);

/// One worker assignment: the shard to run, its deadline, and the global
/// event budget (livelock bound).
type Cmd = (Shard, SimTime, u64);

/// What [`split_world`] returns: the shards, the holding queue for pending
/// global (lane 0) events, and the global-thread-id -> (shard, slot) map.
type SplitWorld = (Vec<Option<Shard>>, EventQueue<Ev>, Vec<(u16, u32)>);

/// Keep at most this many deferred trace records buffered across shards
/// before replaying the safely-ordered prefix mid-run (Full-mode tracing
/// on a long epoch would otherwise grow the buffers without bound).
const TRACE_FLUSH_THRESHOLD: usize = 32_768;

/// One partition of the world: a contiguous lane range `[lo, hi]` with
/// exclusive ownership of everything those lanes mutate.
struct Shard {
    idx: u16,
    /// First lane (node id) owned by this shard.
    lo: u16,
    /// Last lane owned by this shard (inclusive).
    hi: u16,
    cfg: ClusterConfig,
    nodes: Vec<NodeCtx>,
    threads: Vec<Thread>,
    /// Global thread id -> (shard, local slot), identical in every shard.
    tmap: Vec<(u16, u32)>,
    pending: FastMap<u64, PendingTx>,
    evac_remaps: Vec<Vec<(u64, u64, u64)>>,
    exec_counts: Vec<u64>,
    /// Fabric router rows for lanes `lo..=hi` (index `lane - lo`).
    rows: Vec<FabricRow>,
    queue: EventQueue<Ev>,
    outbox: Vec<OutboxEntry>,
    shared: FabricShared,
    counters: FabricCounters,
    dead: Vec<bool>,
    tlog: TraceLog,
    /// Lazy min-heap over the instants of loss-recovery timers scheduled
    /// into this shard's queue. Entries go stale when their timer fires;
    /// stale entries are strictly *earlier* than any queued timer, so the
    /// heap top — after stripping entries below the queue's minimum — is a
    /// conservative lower bound on the earliest queued `Ev::Timeout`
    /// without scanning the queue. See [`Shard::timeout_floor`].
    timeout_lb: BinaryHeap<Reverse<SimTime>>,
    /// Dummy completion slots: blocking drivers never run in parallel, so
    /// these must still be `None` at every merge (asserted there).
    sync_done: Option<(u64, SimTime)>,
    /// Out-of-band self-profiling (`cohfree_sim::metrics`): wall-clock
    /// nanoseconds spent inside [`Shard::run_window`] and windows executed
    /// since the last (re-)split. Accumulated only while the metrics tier
    /// is on; harvested by the coordinator before every merge and never
    /// read by simulation code.
    prof_busy_ns: u64,
    prof_windows: u64,
}

impl Shard {
    /// Execute every pending event with `time < t_end` in `(time, key)`
    /// order — or, with `single`, exactly the one next event (used to make
    /// progress when saturated timers sit at `SimTime::MAX`, where no
    /// strictly-later deadline exists).
    fn run_window(&mut self, t_end: SimTime, single: bool, limit: u64) {
        if !metrics::enabled() {
            return self.run_window_inner(t_end, single, limit);
        }
        let t0 = Instant::now();
        self.run_window_inner(t_end, single, limit);
        self.prof_busy_ns += t0.elapsed().as_nanos() as u64;
        self.prof_windows += 1;
    }

    fn run_window_inner(&mut self, t_end: SimTime, single: bool, limit: u64) {
        while let Some((at, _)) = self.queue.peek_key() {
            if !single && at >= t_end {
                return;
            }
            let (at, key, ev) = self.queue.pop_entry().expect("peeked event vanished");
            self.exec(at, key, ev);
            assert!(
                self.queue.processed() <= limit,
                "event budget exceeded: livelock at {at} (shard {})",
                self.idx
            );
            if single {
                return;
            }
        }
    }

    /// Run one lane event through the shared executor over this shard.
    fn exec(&mut self, now: SimTime, key: u128, ev: Ev) {
        let lane = exec::key_lane(key);
        debug_assert!(
            lane >= self.lo && lane <= self.hi,
            "event for lane {lane} popped by shard {} [{}..={}]",
            self.idx,
            self.lo,
            self.hi
        );
        let slot = (lane - self.lo) as usize;
        let idx = self.exec_counts[slot];
        self.exec_counts[slot] += 1;
        let mut ctx = exec::LaneCtx {
            cfg: &self.cfg,
            first: self.lo,
            nodes: &mut self.nodes,
            threads: &mut self.threads,
            tmap: Some(&self.tmap),
            shard: self.idx,
            pending: &mut self.pending,
            evac_remaps: &mut self.evac_remaps,
            rows: &mut self.rows,
            fab_shared: &self.shared,
            fab_counters: &mut self.counters,
            dead: &self.dead,
            coh: None, // a coherent domain forces the sequential engine
            trace: exec::TraceCtx::Log(&mut self.tlog),
            sink: exec::SchedSink::Par {
                queue: &mut self.queue,
                outbox: &mut self.outbox,
                lo: self.lo,
                hi: self.hi,
                timeout_lb: &mut self.timeout_lb,
            },
            sync_done: &mut self.sync_done,
            now,
            cur_lane: 0,
            cur_gen: 0,
            cur_key: 0,
            cur_idx: 0,
            child: 0,
        };
        exec::exec_event(&mut ctx, now, key, idx, ev);
    }

    /// Lower bound on the earliest `Ev::Timeout` currently queued on this
    /// shard (`SimTime::MAX` when none can be). `next` must be the time of
    /// the shard's earliest queued event: every queued timer is at or past
    /// it, so heap entries below it are provably stale and are dropped —
    /// which is also what keeps the returned floor at or past the global
    /// frontier (a stale entry left in place could otherwise pin the
    /// global-creation bound below the frontier forever: livelock).
    fn timeout_floor(&mut self, next: SimTime) -> SimTime {
        while let Some(&Reverse(t)) = self.timeout_lb.peek() {
            if t >= next {
                return t;
            }
            self.timeout_lb.pop();
        }
        SimTime::MAX
    }
}

/// A deadline-executing worker thread. Shards move to the worker by value
/// for each round and move back at the barrier, so no shard state is ever
/// shared between threads.
struct Worker {
    cmd: mpsc::Sender<Cmd>,
    result: mpsc::Receiver<Shard>,
    handle: Option<JoinHandle<()>>,
}

/// Worker-pool size for `parts` partitions: one round-executing thread per
/// spare hardware core (the coordinator occupies one and runs shard 0
/// itself); shards beyond the pool queue round-robin on the workers'
/// channels. On a single-core host the pool is empty and every round runs
/// inline on the coordinator — identical output, zero channel traffic.
/// `COHFREE_PAR_WORKERS` overrides the spare-core count (useful for
/// exercising the channel path on small hosts).
///
/// # Panics
/// Panics with the [`envknob::EnvKnobError`] message when
/// `COHFREE_PAR_WORKERS` is set to something that is not a non-negative
/// integer — a mistyped knob must not silently fall back to `0`.
fn pool_size(parts: usize) -> usize {
    let spare = envknob::lookup("COHFREE_PAR_WORKERS", envknob::parse_usize)
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .saturating_sub(1)
        });
    (parts - 1).min(spare)
}

/// Receive from `rx`, spinning briefly before blocking. Rounds are short
/// (often a few microseconds of work), so at the barrier the next message
/// is usually moments away. The spin backs off exponentially — 1, 2, 4, …,
/// 512 pause instructions — so a genuinely idle channel costs ~1k pauses
/// before the thread parks, while a hot handoff is caught within the first
/// few iterations without hammering the channel with `try_recv` calls.
fn spin_recv<T>(rx: &mpsc::Receiver<T>) -> Result<T, mpsc::RecvError> {
    let mut pause = 1u32;
    while pause <= 512 {
        match rx.try_recv() {
            Ok(v) => return Ok(v),
            Err(mpsc::TryRecvError::Disconnected) => return Err(mpsc::RecvError),
            Err(mpsc::TryRecvError::Empty) => {
                for _ in 0..pause {
                    std::hint::spin_loop();
                }
                pause *= 2;
            }
        }
    }
    rx.recv()
}

/// [`spin_recv`] with the spin and park phases separately wall-clocked —
/// the worker idle attribution for `cohfree_sim::metrics`. Only called
/// while the metrics tier is on.
fn spin_recv_timed<T>(
    rx: &mpsc::Receiver<T>,
    spin_ns: &mut u64,
    block_ns: &mut u64,
) -> Result<T, mpsc::RecvError> {
    let t0 = Instant::now();
    let mut pause = 1u32;
    while pause <= 512 {
        match rx.try_recv() {
            Ok(v) => {
                *spin_ns += t0.elapsed().as_nanos() as u64;
                return Ok(v);
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                *spin_ns += t0.elapsed().as_nanos() as u64;
                return Err(mpsc::RecvError);
            }
            Err(mpsc::TryRecvError::Empty) => {
                for _ in 0..pause {
                    std::hint::spin_loop();
                }
                pause *= 2;
            }
        }
    }
    *spin_ns += t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let r = rx.recv();
    *block_ns += t1.elapsed().as_nanos() as u64;
    r
}

impl Worker {
    fn spawn(idx: usize) -> Worker {
        let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
        let (res_tx, res_rx) = mpsc::channel::<Shard>();
        let handle = std::thread::spawn(move || {
            // The metrics tier is cached once per pool lifetime (= one
            // `run_parallel` call); the disabled path is the pre-existing
            // loop with zero extra clock reads.
            let prof = metrics::enabled();
            let (mut busy_ns, mut spin_ns, mut block_ns, mut rounds) = (0u64, 0u64, 0u64, 0u64);
            loop {
                let recv = if prof {
                    spin_recv_timed(&cmd_rx, &mut spin_ns, &mut block_ns)
                } else {
                    spin_recv(&cmd_rx)
                };
                let Ok((mut shard, t_end, limit)) = recv else {
                    break;
                };
                if prof {
                    // `run_window` times itself into the shard's own
                    // accumulator; the delta is this worker's busy share.
                    let before = shard.prof_busy_ns;
                    shard.run_window(t_end, false, limit);
                    busy_ns += shard.prof_busy_ns - before;
                    rounds += 1;
                } else {
                    shard.run_window(t_end, false, limit);
                }
                if res_tx.send(shard).is_err() {
                    break;
                }
            }
            if prof && rounds > 0 {
                let w = idx.to_string();
                for (state, ns) in [("busy", busy_ns), ("spin", spin_ns), ("block", block_ns)] {
                    metrics::counter_add(
                        &metrics::labeled(
                            "cohfree_par_worker_ns",
                            &[("worker", &w), ("state", state)],
                        ),
                        ns,
                    );
                }
                metrics::counter_add(
                    &metrics::labeled("cohfree_par_worker_rounds_total", &[("worker", &w)]),
                    rounds,
                );
            }
        });
        Worker {
            cmd: cmd_tx,
            result: res_rx,
            handle: Some(handle),
        }
    }

    /// Receive the shard back after a round, forwarding any worker panic.
    fn recv(&mut self) -> Shard {
        match spin_recv(&self.result) {
            Ok(shard) => shard,
            Err(_) => {
                let handle = self.handle.take().expect("worker joined twice");
                match handle.join() {
                    Err(payload) => std::panic::resume_unwind(payload),
                    Ok(()) => unreachable!("worker exited mid-round without panicking"),
                }
            }
        }
    }

    /// Shut the worker down, forwarding any pending panic.
    fn finish(mut self) {
        drop(self.cmd);
        drop(self.result);
        if let Some(handle) = self.handle.take() {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Contiguous lane ranges `[lo, hi]` (1-based, inclusive) covering `1..=n`.
///
/// `Contiguous` splits near-equally by lane id. `Proximity` starts from the
/// same split, then snaps each interior boundary to the nearest fabric-row
/// multiple on row-structured topologies (mesh/torus with the node count a
/// whole number of rows): row-aligned shards put whole rows on one side of
/// each boundary, which maximises the pairwise hop distances `D(j, i)` —
/// and hence the asymmetric lookahead — between non-adjacent shards. Each
/// snap is clamped so every shard keeps at least one lane.
fn shard_ranges(
    topo: &Topology,
    n: usize,
    parts: usize,
    placement: ParPlacement,
) -> Vec<(u16, u16)> {
    // 0-based exclusive boundary positions: shard s owns lanes
    // (bounds[s], bounds[s + 1]] in 1-based ids.
    let mut bounds = vec![0usize; parts + 1];
    let (base, extra) = (n / parts, n % parts);
    for s in 1..=parts {
        bounds[s] = bounds[s - 1] + base + usize::from(s - 1 < extra);
    }
    if placement == ParPlacement::Proximity {
        let width = match *topo {
            Topology::Mesh2D { width, .. } | Topology::Torus2D { width, .. } => width as usize,
            Topology::Ring { .. } | Topology::FullyConnected { .. } => 1,
        };
        if width > 1 && n.is_multiple_of(width) {
            for s in 1..parts {
                let snapped = ((bounds[s] + width / 2) / width) * width;
                // Keep boundaries strictly increasing and leave at least
                // one lane for each of the `parts - s` shards to the right.
                bounds[s] = snapped.clamp(bounds[s - 1] + 1, n - (parts - s));
            }
        }
    }
    (0..parts)
        .map(|s| ((bounds[s] + 1) as u16, bounds[s + 1] as u16))
        .collect()
}

/// Split `v`, indexed by `lane - base`, into the per-range chunks
/// `[lo - base, hi - base]`; whatever precedes the first range stays in `v`.
fn split_lanes<T>(v: &mut Vec<T>, ranges: &[(u16, u16)], base: u16) -> Vec<Vec<T>> {
    let mut parts = Vec::with_capacity(ranges.len());
    for &(lo, _) in ranges.iter().rev() {
        parts.push(v.split_off((lo - base) as usize));
    }
    parts.reverse();
    parts
}

/// Tear the world's per-lane state apart into one [`Shard`] per range, plus
/// a holding queue for pending global (lane 0) events. The world keeps its
/// clock, processed count, and all whole-world state (directory, sampler,
/// fault log, trace sink).
fn split_world(world: &mut World, ranges: &[(u16, u16)], owner: &[u16]) -> SplitWorld {
    let parts = ranges.len();

    // Threads leave in global-id order; `tmap` records where each one went
    // so lane code can address them by global id and the merge can restore
    // the exact original order.
    let mut tmap: Vec<(u16, u32)> = Vec::with_capacity(world.threads.len());
    let mut threads_parts: Vec<Vec<Thread>> =
        std::iter::repeat_with(Vec::new).take(parts).collect();
    for th in world.threads.drain(..) {
        let s = owner[th.spec.node.get() as usize] as usize;
        tmap.push((s as u16, threads_parts[s].len() as u32));
        threads_parts[s].push(th);
    }

    let mut nodes = std::mem::take(&mut world.nodes);
    let nodes_parts = split_lanes(&mut nodes, ranges, 1);
    debug_assert!(nodes.is_empty());
    let mut evacs = std::mem::take(&mut world.evac_remaps);
    let evac_parts = split_lanes(&mut evacs, ranges, 1);
    debug_assert!(evacs.is_empty());
    let mut counts = std::mem::take(&mut world.exec_counts);
    let count_parts = split_lanes(&mut counts, ranges, 1);
    debug_assert!(counts.is_empty());

    // Row 0 is the "there is no node 0" placeholder; drop it here and
    // recreate it at merge.
    let mut rows = world.fabric.take_rows();
    let rows_parts = split_lanes(&mut rows, ranges, 0);
    debug_assert_eq!(rows.len(), 1);

    // In-flight transactions belong to the lane of their source node
    // (tag's node prefix), the only lane whose events touch them.
    let mut pending_parts: Vec<FastMap<u64, PendingTx>> = std::iter::repeat_with(FastMap::default)
        .take(parts)
        .collect();
    for (tag, p) in world.pending.drain() {
        pending_parts[owner[(tag >> 48) as usize] as usize].insert(tag, p);
    }

    // Pending events route by the lane encoded in their key (threads are
    // already drained, so `lane_of` could not resolve `ThreadWake`s here).
    // Queued loss-recovery timers seed each shard's timeout floor heap.
    let mut queues: Vec<EventQueue<Ev>> = std::iter::repeat_with(EventQueue::new)
        .take(parts)
        .collect();
    let mut heaps: Vec<BinaryHeap<Reverse<SimTime>>> = std::iter::repeat_with(BinaryHeap::new)
        .take(parts)
        .collect();
    let mut global = EventQueue::new();
    for (at, key, ev) in world.queue.drain_entries() {
        let lane = exec::key_lane(key);
        if lane == exec::GLOBAL_LANE {
            global.schedule_keyed(at, key, ev);
        } else {
            let s = owner[lane as usize] as usize;
            if matches!(ev, Ev::Timeout { .. }) {
                heaps[s].push(Reverse(at));
            }
            queues[s].schedule_keyed(at, key, ev);
        }
    }

    let shared = world.fabric.share();
    let trace_on = world.trace.enabled();
    let mut shards: Vec<Option<Shard>> = Vec::with_capacity(parts);
    let zipped = nodes_parts
        .into_iter()
        .zip(threads_parts)
        .zip(evac_parts)
        .zip(count_parts)
        .zip(rows_parts)
        .zip(pending_parts)
        .zip(queues)
        .zip(heaps);
    for (
        s,
        (((((((nodes, threads), evac_remaps), exec_counts), rows), pending), queue), timeout_lb),
    ) in zipped.enumerate()
    {
        let (lo, hi) = ranges[s];
        shards.push(Some(Shard {
            idx: s as u16,
            lo,
            hi,
            cfg: world.cfg,
            nodes,
            threads,
            tmap: tmap.clone(),
            pending,
            evac_remaps,
            exec_counts,
            rows,
            queue,
            outbox: Vec::new(),
            shared: shared.clone(),
            counters: FabricCounters::default(),
            dead: world.dead.clone(),
            tlog: TraceLog::new(trace_on),
            timeout_lb,
            sync_done: None,
            prof_busy_ns: 0,
            prof_windows: 0,
        }));
    }
    (shards, global, tmap)
}

/// Fold every shard (and the global holding queue) back into the world,
/// restoring the exact sequential layout. Returns the latest instant any
/// shard's clock reached (the global end time once all queues are empty).
fn merge_shards(
    world: &mut World,
    slots: &mut [Option<Shard>],
    tmap: &[(u16, u32)],
    global: &mut EventQueue<Ev>,
) -> SimTime {
    let mut t_final = world.queue.now();
    let mut rows = vec![FabricRow::default()]; // the "no node 0" placeholder
    let mut thread_iters: Vec<std::vec::IntoIter<Thread>> = Vec::with_capacity(slots.len());
    for slot in slots.iter_mut() {
        let mut s = slot.take().expect("shard out at a worker during merge");
        debug_assert!(s.outbox.is_empty(), "unrouted outbox at merge");
        debug_assert!(s.tlog.buf.is_empty(), "unreplayed trace log at merge");
        debug_assert!(s.sync_done.is_none());
        t_final = t_final.max(s.queue.now());
        world.nodes.append(&mut s.nodes);
        world.evac_remaps.append(&mut s.evac_remaps);
        world.exec_counts.append(&mut s.exec_counts);
        rows.append(&mut s.rows);
        world.pending.extend(s.pending);
        world.fabric.absorb_counters(&mut s.counters);
        world.queue.add_processed(s.queue.processed());
        for (at, key, ev) in s.queue.drain_entries() {
            world.queue.schedule_keyed(at, key, ev);
        }
        thread_iters.push(s.threads.into_iter());
    }
    world.fabric.put_rows(rows);
    for &(shard, _) in tmap {
        let th = thread_iters[shard as usize]
            .next()
            .expect("thread map out of sync with shard thread counts");
        world.threads.push(th);
    }
    debug_assert!(thread_iters.into_iter().all(|mut it| it.next().is_none()));
    for (at, key, ev) in global.drain_entries() {
        world.queue.schedule_keyed(at, key, ev);
    }
    t_final
}

/// Run-local accumulator for the parallel engine's self-profiling probes
/// (`cohfree_sim::metrics`). Allocated only while the metrics tier is on,
/// lives on the coordinator's stack for one [`run_parallel`] call, and
/// flushes to the global registry once at the end — the hot scheduling
/// loop never touches the registry mutex. Strictly out-of-band: nothing
/// recorded here feeds back into scheduling decisions or simulation state,
/// which is what keeps output byte-identical with metrics on or off.
struct ParProf {
    start: Instant,
    parts: usize,
    rounds: u64,
    epochs: u64,
    single_steps: u64,
    view_samples: u64,
    view_managers: u64,
    merges_fault: u64,
    merges_suspect: u64,
    merges_manager: u64,
    roof_epoch: u64,
    roof_global: u64,
    roof_create: u64,
    /// Sim-ns of lookahead granted per busy shard per round.
    advance: LatencyHistogram,
    /// Coordinator wall-clock decomposition: inline window execution,
    /// waiting on worker results, merge/re-split cycles, and channel
    /// sends + outbox routing. Whatever the decomposition misses shows up
    /// as the `other` bucket at flush (total − sum), so the attribution
    /// always accounts for 100 % of the run by construction.
    exec_ns: u64,
    stall_ns: u64,
    merge_ns: u64,
    handoff_ns: u64,
    shard_busy_ns: Vec<u64>,
    shard_windows: Vec<u64>,
    /// Wall-clock each shard spent with events pending but no dispatch
    /// (its lookahead cap was at or below its frontier for the round).
    shard_stall_ns: Vec<u64>,
    /// Routed lane events per `(from, to)` shard pair, row-major.
    outbox: Vec<u64>,
    outbox_global: u64,
    busy_mask: Vec<bool>,
}

impl ParProf {
    fn new(parts: usize) -> ParProf {
        ParProf {
            start: Instant::now(),
            parts,
            rounds: 0,
            epochs: 0,
            single_steps: 0,
            view_samples: 0,
            view_managers: 0,
            merges_fault: 0,
            merges_suspect: 0,
            merges_manager: 0,
            roof_epoch: 0,
            roof_global: 0,
            roof_create: 0,
            advance: LatencyHistogram::new(),
            exec_ns: 0,
            stall_ns: 0,
            merge_ns: 0,
            handoff_ns: 0,
            shard_busy_ns: vec![0; parts],
            shard_windows: vec![0; parts],
            shard_stall_ns: vec![0; parts],
            outbox: vec![0; parts * parts],
            outbox_global: 0,
            busy_mask: vec![false; parts],
        }
    }

    /// Pull (and zero) the per-shard busy/window accumulators. Must run
    /// before any merge destroys the shards (re-split starts them fresh).
    fn harvest(&mut self, slots: &mut [Option<Shard>]) {
        for slot in slots.iter_mut() {
            if let Some(s) = slot.as_mut() {
                let i = s.idx as usize;
                self.shard_busy_ns[i] += std::mem::take(&mut s.prof_busy_ns);
                self.shard_windows[i] += std::mem::take(&mut s.prof_windows);
            }
        }
    }

    /// Account one scheduling round: lookahead granted to each dispatched
    /// shard, and `round_ns` of stall charged to every shard that had work
    /// but no dispatch.
    fn round(
        &mut self,
        nexts: &[Option<(SimTime, u128)>],
        caps: &[SimTime],
        busy: &[usize],
        round_ns: u64,
    ) {
        self.rounds += 1;
        self.busy_mask.iter_mut().for_each(|b| *b = false);
        for &i in busy {
            self.busy_mask[i] = true;
            if let Some((t, _)) = nexts[i] {
                self.advance.record(caps[i].saturating_since(t));
            }
        }
        for (i, next) in nexts.iter().enumerate() {
            if next.is_some() && !self.busy_mask[i] {
                self.shard_stall_ns[i] += round_ns;
            }
        }
    }

    /// Write everything into the global registry — once per run.
    fn flush(self) {
        use metrics::{counter_add as add, labeled};
        add("cohfree_par_runs_total", 1);
        metrics::gauge_set("cohfree_par_partitions", self.parts as f64);
        add("cohfree_par_rounds_total", self.rounds);
        add("cohfree_par_epochs_total", self.epochs);
        add("cohfree_par_single_steps_total", self.single_steps);
        for (kind, v) in [
            ("sample", self.view_samples),
            ("manager", self.view_managers),
        ] {
            add(&labeled("cohfree_par_view_total", &[("kind", kind)]), v);
        }
        for (cause, v) in [
            ("fault", self.merges_fault),
            ("suspect", self.merges_suspect),
            ("manager", self.merges_manager),
        ] {
            add(&labeled("cohfree_par_merges_total", &[("cause", cause)]), v);
        }
        for (by, v) in [
            ("epoch", self.roof_epoch),
            ("pending_global", self.roof_global),
            ("global_create", self.roof_create),
        ] {
            add(&labeled("cohfree_par_roof_total", &[("by", by)]), v);
        }
        metrics::hist_merge("cohfree_par_window_advance_sim_ns", &self.advance);
        let total = self.start.elapsed().as_nanos() as u64;
        let accounted = self.exec_ns + self.stall_ns + self.merge_ns + self.handoff_ns;
        for (bucket, v) in [
            ("execute", self.exec_ns),
            ("stall", self.stall_ns),
            ("merge", self.merge_ns),
            ("handoff", self.handoff_ns),
            ("other", total.saturating_sub(accounted)),
        ] {
            add(&labeled("cohfree_par_coord_ns", &[("bucket", bucket)]), v);
        }
        add("cohfree_par_coord_total_ns", total);
        for i in 0..self.parts {
            let s = i.to_string();
            add(
                &labeled("cohfree_par_shard_busy_ns", &[("shard", &s)]),
                self.shard_busy_ns[i],
            );
            add(
                &labeled("cohfree_par_shard_windows_total", &[("shard", &s)]),
                self.shard_windows[i],
            );
            add(
                &labeled("cohfree_par_shard_stall_ns", &[("shard", &s)]),
                self.shard_stall_ns[i],
            );
        }
        for j in 0..self.parts {
            for i in 0..self.parts {
                let v = self.outbox[j * self.parts + i];
                if v > 0 {
                    add(
                        &labeled(
                            "cohfree_par_outbox_events_total",
                            &[("from", &j.to_string()), ("to", &i.to_string())],
                        ),
                        v,
                    );
                }
            }
        }
        add("cohfree_par_outbox_global_events_total", self.outbox_global);
    }
}

/// Elapsed nanoseconds since `mark`, re-arming it — or 0 with no clock
/// read at all when the metrics tier is off (`mark` is `None`). Keeps the
/// disabled scheduling loop free of `Instant` calls.
fn lap(mark: &mut Option<Instant>) -> u64 {
    match mark {
        Some(t) => {
            let ns = t.elapsed().as_nanos() as u64;
            *t = Instant::now();
            ns
        }
        None => 0,
    }
}

/// Route every shard's outbox: global events to the holding queue, lane
/// events to their owning shard. Conservative lookahead makes every entry
/// land at or past its destination's deadline: lane entries are single-hop
/// fabric forwards (`at ≥ source event + W ≥ next_src + D·W ≥ cap_dst`),
/// and globals are suspect declarations at or past the global-creation
/// bound that clamps every cap.
fn route_outboxes(
    slots: &mut [Option<Shard>],
    global: &mut EventQueue<Ev>,
    owner: &[u16],
    caps: &[SimTime],
    mut prof: Option<&mut ParProf>,
) {
    for i in 0..slots.len() {
        let outbox = std::mem::take(
            &mut slots[i]
                .as_mut()
                .expect("shard out at a worker during routing")
                .outbox,
        );
        for (at, key, lane, ev) in outbox {
            if lane == exec::GLOBAL_LANE {
                debug_assert!(
                    caps.iter().all(|&c| at >= c),
                    "global event at {at} created below a shard deadline"
                );
                if let Some(p) = prof.as_deref_mut() {
                    p.outbox_global += 1;
                }
                global.schedule_keyed(at, key, ev);
            } else {
                let dst = owner[lane as usize] as usize;
                if let Some(p) = prof.as_deref_mut() {
                    p.outbox[i * p.parts + dst] += 1;
                }
                debug_assert!(
                    at >= caps[dst],
                    "cross-shard event at {at} violates shard {dst}'s deadline {}",
                    caps[dst]
                );
                let d = slots[dst]
                    .as_mut()
                    .expect("shard out at a worker during routing");
                if matches!(ev, Ev::Timeout { .. }) {
                    d.timeout_lb.push(Reverse(at));
                }
                d.queue.schedule_keyed(at, key, ev);
            }
        }
    }
}

/// Replay every shard's deferred trace calls against the world's sink in
/// global `(time, key, opseq)` order. Called before any merged-world global
/// event makes *direct* sink calls, so the sink sees calls in exactly the
/// sequential order.
fn apply_trace_logs(world: &mut World, slots: &mut [Option<Shard>]) {
    let mut recs = Vec::new();
    for slot in slots.iter_mut() {
        if let Some(s) = slot.as_mut() {
            recs.append(&mut s.tlog.buf);
        }
    }
    if !recs.is_empty() {
        exec::replay_trace(&mut world.trace, recs);
    }
}

/// Replay only the deferred trace records strictly below `bound` (the
/// current global frontier): everything buffered was executed under past
/// deadlines — all below any still-pending global's direct sink calls — and
/// every future record is at or past `bound`, so the flushed prefix is
/// final. Keeps Full-mode buffers bounded across long epochs.
fn flush_trace_below(world: &mut World, slots: &mut [Option<Shard>], bound: SimTime) {
    let mut recs = Vec::new();
    for slot in slots.iter_mut() {
        let buf = &mut slot.as_mut().expect("shard at barrier").tlog.buf;
        let mut i = 0;
        while i < buf.len() {
            if buf[i].at < bound {
                recs.push(buf.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }
    if !recs.is_empty() {
        exec::replay_trace(&mut world.trace, recs);
    }
}

/// Handle a due [`Ev::Sample`] against a read-only view of the shards — no
/// merge. The probe only *reads* per-node occupancy and link backlogs and
/// appends one [`crate::Sample`] to the world-side sampler, so borrowing
/// the shards' state in lane order reproduces the merged-world sample
/// byte-identically (every shard has executed exactly the events below the
/// probe's instant, and nothing at or past it).
fn view_sample(
    world: &mut World,
    slots: &[Option<Shard>],
    global: &mut EventQueue<Ev>,
    gt: SimTime,
) {
    let Some(interval) = world.sampler_interval() else {
        return; // sampling disabled: the sequential path is a no-op too
    };
    let mut events_queued = global.len();
    let mut backlog = SimDuration::ZERO;
    let mut refs: Vec<&NodeCtx> = Vec::new();
    for slot in slots {
        let s = slot.as_ref().expect("shard at barrier");
        events_queued += s.queue.len();
        refs.extend(s.nodes.iter());
        for row in &s.rows {
            backlog = backlog.max(row.max_backlog(gt));
        }
    }
    let sample = build_sample(gt, &refs, backlog.as_ns_f64(), events_queued);
    world.push_sample(sample);
    // Re-arm only while the cluster still has work in flight — same gseq
    // burn, same instant, same key as the sequential re-arm.
    if events_queued > 0 {
        let key = world.next_gkey(&Ev::Sample);
        global.schedule_keyed(gt + interval, key, Ev::Sample);
    }
}

/// Run the manager's observation + pure policy pass for a due
/// [`Ev::Manager`] against a read-only view of the shards. Returns `None`
/// when no manager is configured (the sequential tick is a no-op then);
/// otherwise the decided actions — the caller merges and applies only when
/// they are non-empty, which is the rare case.
fn view_manager_decide(
    world: &mut World,
    slots: &[Option<Shard>],
    gt: SimTime,
) -> Option<Vec<ManagerAction>> {
    if !world.has_manager() {
        return None;
    }
    let mut nodes: Vec<&NodeCtx> = Vec::new();
    let mut rows: Vec<&FabricRow> = Vec::new();
    for slot in slots {
        let s = slot.as_ref().expect("shard at barrier");
        nodes.extend(s.nodes.iter());
        rows.extend(s.rows.iter());
    }
    let obs = world.observe_parts(gt, &nodes, &rows);
    world.manager_decide(&obs)
}

/// Drive `world` to completion with `world.parallel` shards. Pops the same
/// events in the same `(time, key)` order as the sequential loop in
/// [`World::run`], and leaves the world in a byte-identical final state.
pub(crate) fn run_parallel(world: &mut World, limit: u64) {
    debug_assert!(
        world.coherent_domain.is_empty(),
        "coherent domains require the sequential engine"
    );
    let w = world.fabric.shared_ref().min_hop_latency();
    assert!(
        !w.is_zero(),
        "zero-latency fabric requires the sequential engine"
    );
    let tuning = ParTuning::from_env().unwrap_or_else(|e| panic!("{e}"));
    let n = world.nodes.len();
    let parts = world.parallel.min(n).max(1);
    let topo = world.cfg.topology;

    let ranges = shard_ranges(&topo, n, parts, tuning.placement);
    let mut owner = vec![0u16; n + 1];
    for (s, &(lo, hi)) in ranges.iter().enumerate() {
        for lane in lo..=hi {
            owner[lane as usize] = s as u16;
        }
    }

    // Directed pairwise slack: an influence chain out of shard j needs at
    // least D(j, i) hops — each at least W — to reach shard i. The diagonal
    // holds the *self round-trip* bound: a chain out of shard i that leaves
    // its lanes and comes back needs at least min_j (D(i, j) + D(j, i))
    // hops, so shard i may not outrun its own requests' earliest possible
    // responses. Computed once from the healthy topology (outages only
    // remove links, so these stay valid lower bounds under any reroute).
    let mut slack = vec![SimDuration::ZERO; parts * parts];
    let mut dist = vec![0u64; parts * parts];
    for j in 0..parts {
        for i in 0..parts {
            if i != j {
                let d = topo.min_range_hops(ranges[j], ranges[i]).max(1) as u64;
                dist[j * parts + i] = d;
                slack[j * parts + i] = w.saturating_mul(d);
            }
        }
    }
    for i in 0..parts {
        let round_trip = (0..parts)
            .filter(|&j| j != i)
            .map(|j| dist[i * parts + j] + dist[j * parts + i])
            .min()
            .unwrap_or(u64::MAX); // single shard: chains cannot leave it
        slack[i * parts + i] = w.saturating_mul(round_trip);
    }

    // Worlds where loss-recovery timers arm at all (the `arm_timeout`
    // gate): only these can create `Ev::Suspect` globals mid-round, so only
    // they pay for the global-creation bound.
    let hazard = world.cfg.fabric.loss_rate > 0.0 || !world.cfg.faults.is_empty();
    // A freshly-armed timer fires at least this far past the event that
    // arms it (`backoff_delay` is clamped to [this, BACKOFF_CEILING]).
    let arm_floor = world.cfg.rmc.timeout.min(exec::BACKOFF_CEILING);
    let mgr_tick = world.cfg.manager.tick;
    let trace_on = world.trace.enabled();

    // Self-profiling accumulator: allocated only when the metrics tier is
    // on. Every probe below guards on `prof` being `Some`, so the disabled
    // engine runs the pre-existing loop with one branch per probe site and
    // zero clock reads.
    let mut prof: Option<Box<ParProf>> = metrics::enabled().then(|| Box::new(ParProf::new(parts)));

    let mut workers: Vec<Worker> = (0..pool_size(parts)).map(Worker::spawn).collect();
    let (mut slots, mut global, tmap) = split_world(world, &ranges, &owner);

    // Latest global instant handled through the view path (the world's own
    // clock only advances on merges; the drain-time fix-up below needs it).
    let mut t_view = SimTime::ZERO;

    // Per-round scratch, reused across all rounds: shard frontiers, shard
    // deadlines, busy shard ids, and per-worker dispatch lists.
    let mut nexts: Vec<Option<(SimTime, u128)>> = vec![None; parts];
    let mut caps: Vec<SimTime> = vec![SimTime::MAX; parts];
    let mut busy: Vec<usize> = Vec::with_capacity(parts);
    let mut sent: Vec<Vec<usize>> = vec![Vec::new(); workers.len()];

    'outer: loop {
        let shard_next = slots
            .iter()
            .filter_map(|s| s.as_ref().expect("shard at barrier").queue.peek_key())
            .min();
        let global_due = match (global.peek_key(), shard_next) {
            (Some(g), Some(s)) => g <= s,
            (Some(_), None) => true,
            (None, _) => false,
        };

        if global_due {
            let (gt, gkey, ev) = global.pop_entry().expect("peeked event vanished");
            world.queue.add_processed(1);
            t_view = t_view.max(gt);
            let total = world.queue.processed()
                + slots
                    .iter()
                    .map(|s| s.as_ref().expect("shard at barrier").queue.processed())
                    .sum::<u64>();
            assert!(total <= limit, "event budget exceeded: livelock at {gt}");
            // Wall-clock mark for the merge/re-split cycle the two
            // merging arms below may start (accrued after the tail).
            let mut merge_t0: Option<Instant> = None;
            match ev {
                // The frequent, read-only globals run against a view of the
                // shard borrows — no merge, no re-split.
                Ev::Sample => {
                    if let Some(p) = prof.as_deref_mut() {
                        p.view_samples += 1;
                    }
                    view_sample(world, &slots, &mut global, gt);
                    continue;
                }
                Ev::Manager => match view_manager_decide(world, &slots, gt) {
                    None => continue, // no manager configured
                    Some(actions) if actions.is_empty() => {
                        if let Some(p) = prof.as_deref_mut() {
                            p.view_managers += 1;
                        }
                        // Re-arm under the sequential condition (threads
                        // unfinished or transactions in flight), burning
                        // the same gseq at the same instant.
                        let live = slots.iter().any(|slot| {
                            let s = slot.as_ref().expect("shard at barrier");
                            s.threads.iter().any(|t| t.finished.is_none()) || !s.pending.is_empty()
                        });
                        if live {
                            let key = world.next_gkey(&Ev::Manager);
                            global.schedule_keyed(gt + mgr_tick, key, Ev::Manager);
                        }
                        continue;
                    }
                    Some(actions) => {
                        // Actions mutate whole-world state (regions, the
                        // directory, thread zone tables): reassemble the
                        // world and apply exactly as the sequential tick.
                        if let Some(p) = prof.as_deref_mut() {
                            p.merges_manager += 1;
                            p.harvest(&mut slots);
                            merge_t0 = Some(Instant::now());
                        }
                        apply_trace_logs(world, &mut slots);
                        merge_shards(world, &mut slots, &tmap, &mut global);
                        world.queue.advance_to(gt);
                        world.manager_apply(gt, &actions);
                        if world.threads.iter().any(|t| t.finished.is_none())
                            || !world.pending.is_empty()
                        {
                            world.gsched(gt + mgr_tick, Ev::Manager);
                        }
                    }
                },
                ev => {
                    // Fault / Suspect: whole-world mutation through the
                    // unmodified sequential code path.
                    if let Some(p) = prof.as_deref_mut() {
                        match &ev {
                            Ev::Fault(_) => p.merges_fault += 1,
                            Ev::Suspect { .. } => p.merges_suspect += 1,
                            _ => {}
                        }
                        p.harvest(&mut slots);
                        merge_t0 = Some(Instant::now());
                    }
                    apply_trace_logs(world, &mut slots);
                    merge_shards(world, &mut slots, &tmap, &mut global);
                    world.queue.advance_to(gt);
                    world.handle(gt, gkey, ev);
                    assert!(
                        world.queue.processed() <= limit,
                        "event budget exceeded: livelock at {gt}"
                    );
                }
            }
            // Merged-path tail: drain any directly-following globals, then
            // re-partition (or finish).
            while world
                .queue
                .peek_key()
                .is_some_and(|(_, k)| exec::key_lane(k) == exec::GLOBAL_LANE)
            {
                let (at, key, ev) = world.queue.pop_entry().expect("peeked event vanished");
                world.handle(at, key, ev);
                assert!(
                    world.queue.processed() <= limit,
                    "event budget exceeded: livelock at {at}"
                );
            }
            if world.queue.is_empty() {
                if let (Some(p), Some(t0)) = (prof.as_deref_mut(), merge_t0) {
                    p.merge_ns += t0.elapsed().as_nanos() as u64;
                }
                break;
            }
            let (s, g, _) = split_world(world, &ranges, &owner);
            slots = s;
            global = g;
            if let (Some(p), Some(t0)) = (prof.as_deref_mut(), merge_t0) {
                p.merge_ns += t0.elapsed().as_nanos() as u64;
            }
            continue;
        }

        let Some((next_t, _)) = shard_next else {
            // Fully drained: fold everything back and surface the end time
            // (a trailing view-path global may sit past every shard clock).
            let drain_t0 = prof.as_deref_mut().map(|p| {
                p.harvest(&mut slots);
                Instant::now()
            });
            apply_trace_logs(world, &mut slots);
            let t_final = merge_shards(world, &mut slots, &tmap, &mut global);
            world.queue.advance_to(t_final.max(t_view));
            if let (Some(p), Some(t0)) = (prof.as_deref_mut(), drain_t0) {
                p.merge_ns += t0.elapsed().as_nanos() as u64;
            }
            break;
        };

        if next_t == SimTime::MAX {
            // Saturated (effectively-infinite) timers: no strictly-later
            // deadline exists, so run the single globally-next event.
            let (i, _) = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    s.as_ref()
                        .expect("shard at barrier")
                        .queue
                        .peek_key()
                        .map(|k| (i, k))
                })
                .min_by_key(|&(_, k)| k)
                .expect("nonempty shard exists");
            if let Some(p) = prof.as_deref_mut() {
                p.single_steps += 1;
            }
            slots[i]
                .as_mut()
                .expect("shard at barrier")
                .run_window(SimTime::MAX, true, limit);
            caps.fill(SimTime::MAX);
            route_outboxes(&mut slots, &mut global, &owner, &caps, prof.as_deref_mut());
            apply_trace_logs(world, &mut slots);
            let total = world.queue.processed()
                + slots
                    .iter()
                    .map(|s| s.as_ref().expect("shard at barrier").queue.processed())
                    .sum::<u64>();
            assert!(total <= limit, "event budget exceeded: livelock (parallel)");
            continue;
        }

        // One epoch: scheduling rounds under a fixed horizon `k` windows
        // past the epoch's starting frontier. Each round hands every busy
        // shard its own pairwise deadline; the epoch ends when the frontier
        // reaches the horizon, a global comes due, or the shards drain —
        // all handled by re-entering the outer loop.
        let horizon = next_t.saturating_add(w.saturating_mul(tuning.epoch));
        if let Some(p) = prof.as_deref_mut() {
            p.epochs += 1;
        }
        loop {
            // Refresh frontiers and the global-creation floor in one pass.
            let (mut lt, mut lk) = (SimTime::MAX, u128::MAX);
            let mut any = false;
            let mut ge_floor = SimTime::MAX;
            for (i, slot) in slots.iter_mut().enumerate() {
                let s = slot.as_mut().expect("shard at barrier");
                match s.queue.peek_key() {
                    None => {
                        nexts[i] = None;
                        // An empty shard holds no timers; its stale heap
                        // entries must not pin the bound below the frontier.
                        s.timeout_lb.clear();
                    }
                    Some((t, k)) => {
                        nexts[i] = Some((t, k));
                        any = true;
                        if (t, k) < (lt, lk) {
                            (lt, lk) = (t, k);
                        }
                        if hazard {
                            // Earliest Suspect this shard could create:
                            // min(queued timer, earliest future-armed
                            // timer) + one lookahead window (added below).
                            let fl = s.timeout_floor(t).min(t.saturating_add(arm_floor));
                            ge_floor = ge_floor.min(fl);
                        }
                    }
                }
            }
            if !any || lt >= horizon {
                continue 'outer; // drained, or epoch exhausted
            }
            if let Some(g) = global.peek_key() {
                if g <= (lt, lk) {
                    continue 'outer; // a global came due mid-epoch
                }
            }

            // Shared deadline roof: the epoch horizon, the earliest pending
            // global, and the earliest global any shard could still create
            // (`Suspect` = timer fire + one window; `ge_floor ≥ lt` by the
            // timeout-floor strip, so the roof stays strictly past `lt` and
            // the round always advances something).
            let gcap = global.peek_key().map_or(SimTime::MAX, |(t, _)| t);
            let ge = if hazard {
                ge_floor.saturating_add(w)
            } else {
                SimTime::MAX
            };
            let roof = horizon.min(ge).min(gcap);

            // Per-shard deadlines from the directed pairwise slack (the
            // j == i term is the self round-trip bound).
            for i in 0..parts {
                let mut cap = roof;
                for (j, nj) in nexts.iter().enumerate() {
                    if let Some((tj, _)) = nj {
                        cap = cap.min(tj.saturating_add(slack[j * parts + i]));
                    }
                }
                caps[i] = cap;
            }
            busy.clear();
            busy.extend((0..parts).filter(|&i| nexts[i].is_some_and(|(t, _)| t < caps[i])));
            assert!(
                !busy.is_empty(),
                "parallel scheduler stalled with events pending at {lt}"
            );

            // Self-profiling: which bound set the roof, plus a wall-clock
            // mark for this round. `lap` reads no clock while disabled.
            let mut mark = prof.as_deref_mut().map(|p| {
                if roof == horizon {
                    p.roof_epoch += 1;
                } else if roof == gcap {
                    p.roof_global += 1;
                } else {
                    p.roof_create += 1;
                }
                Instant::now()
            });
            let round_t0 = mark;

            if trace_on {
                let buffered: usize = slots
                    .iter()
                    .map(|s| s.as_ref().expect("shard at barrier").tlog.buf.len())
                    .sum();
                if buffered > TRACE_FLUSH_THRESHOLD {
                    flush_trace_below(world, &mut slots, lt);
                }
            }

            // Dispatch: shard 0 is pinned to the coordinator and shard
            // i ≥ 1 to worker (i - 1) mod pool — a stable mapping that
            // keeps each shard's state hot in one thread's cache. A round
            // with a single busy shard (or no pool) never touches a
            // channel.
            if workers.is_empty() || busy.len() == 1 {
                for &i in &busy {
                    slots[i]
                        .as_mut()
                        .expect("shard at barrier")
                        .run_window(caps[i], false, limit);
                }
                if let Some(p) = prof.as_deref_mut() {
                    p.exec_ns += lap(&mut mark);
                }
            } else {
                for list in sent.iter_mut() {
                    list.clear();
                }
                let mut run0 = false;
                for &i in &busy {
                    if i == 0 {
                        run0 = true;
                        continue;
                    }
                    let wx = (i - 1) % workers.len();
                    let shard = slots[i].take().expect("shard at barrier");
                    workers[wx]
                        .cmd
                        .send((shard, caps[i], limit))
                        .expect("worker hung up");
                    sent[wx].push(i);
                }
                if let Some(p) = prof.as_deref_mut() {
                    p.handoff_ns += lap(&mut mark);
                }
                if run0 {
                    slots[0]
                        .as_mut()
                        .expect("shard at barrier")
                        .run_window(caps[0], false, limit);
                }
                if let Some(p) = prof.as_deref_mut() {
                    p.exec_ns += lap(&mut mark);
                }
                for (wk, list) in workers.iter_mut().zip(&sent) {
                    for &i in list {
                        slots[i] = Some(wk.recv());
                    }
                }
                if let Some(p) = prof.as_deref_mut() {
                    p.stall_ns += lap(&mut mark);
                }
            }

            route_outboxes(&mut slots, &mut global, &owner, &caps, prof.as_deref_mut());
            if let Some(p) = prof.as_deref_mut() {
                p.handoff_ns += lap(&mut mark);
                let round_ns = round_t0.expect("mark set with prof").elapsed().as_nanos() as u64;
                p.round(&nexts, &caps, &busy, round_ns);
            }
            let total = world.queue.processed()
                + slots
                    .iter()
                    .map(|s| s.as_ref().expect("shard at barrier").queue.processed())
                    .sum::<u64>();
            assert!(total <= limit, "event budget exceeded: livelock (parallel)");
        }
    }

    for w in workers {
        w.finish();
    }
    // Flush after the workers joined: their own per-worker flushes have
    // landed, so a snapshot taken by the caller right after `run()` sees
    // the complete run.
    if let Some(p) = prof {
        p.flush();
    }
}
