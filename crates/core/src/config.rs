//! Cluster-wide configuration.
//!
//! One [`ClusterConfig`] value describes every hardware and OS parameter of
//! a simulated cluster. [`ClusterConfig::prototype`] is calibrated to the
//! 16-node CLUSTER 2010 machine (FPGA RMCs, DDR2-800, 4×4 mesh); the
//! ablation benches derive variants from it.

use crate::fault::{FaultPlan, RecoveryConfig};
use cohfree_fabric::{FabricConfig, Topology};
use cohfree_mem::{CacheConfig, DramConfig};
use cohfree_os::directory::DonorPolicy;
use cohfree_os::manager::ManagerConfig;
use cohfree_os::pagetable::TlbConfig;
use cohfree_rmc::RmcConfig;
use cohfree_sim::span::{TraceMode, DEFAULT_TRACE_CAPACITY};
use cohfree_sim::SimDuration;

/// Software-path timing (everything the OS charges that hardware does not).
#[derive(Debug, Clone, Copy)]
pub struct OsTiming {
    /// Latency of a cache hit as seen by the core (L2-class).
    pub cache_hit: SimDuration,
    /// Latency of an L1 hit (only charged when an L1 is configured).
    pub l1_hit: SimDuration,
    /// Page-walk cost on a TLB miss with a valid PTE.
    pub tlb_walk: SimDuration,
    /// Kernel overhead of a major fault (trap, handler, driver, return) —
    /// charged *in addition to* the device/page transfer itself.
    pub fault_overhead: SimDuration,
    /// One-time software cost of a remote-zone reservation round
    /// (request/ack over the kernels; off the access path).
    pub reservation: SimDuration,
    /// Interposed `malloc` bookkeeping per allocation call.
    pub malloc_overhead: SimDuration,
}

impl Default for OsTiming {
    fn default() -> Self {
        OsTiming {
            cache_hit: SimDuration::ns(4),
            l1_hit: SimDuration::ns(1),
            tlb_walk: SimDuration::ns(80),
            fault_overhead: SimDuration::us(8),
            reservation: SimDuration::us(200),
            malloc_overhead: SimDuration::us(1),
        }
    }
}

/// Transaction-tracing configuration (see `cohfree_sim::span`).
///
/// `Off` costs nothing on the access path; `Aggregate` keeps per-phase
/// latency histograms that fold into `World::snapshot()`; `Full`
/// additionally retains the complete span stream (bounded by `capacity`)
/// for Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Tracing level (default: `Off`).
    pub mode: TraceMode,
    /// Span-ring capacity in spans (Full mode); oldest spans are evicted
    /// and counted once exceeded.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mode: TraceMode::Off,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

impl TraceConfig {
    /// Aggregate-mode preset (cheap per-phase histograms only).
    pub fn aggregate() -> TraceConfig {
        TraceConfig {
            mode: TraceMode::Aggregate,
            ..TraceConfig::default()
        }
    }

    /// Full-mode preset (complete span stream, default ring bound).
    pub fn full() -> TraceConfig {
        TraceConfig {
            mode: TraceMode::Full,
            ..TraceConfig::default()
        }
    }
}

/// How the parallel engine maps lanes onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParPlacement {
    /// Align shard boundaries with fabric proximity (mesh/torus rows), so
    /// cross-shard hop distances — and hence pairwise lookahead — are
    /// maximised. Falls back to contiguous splitting on topologies with no
    /// row structure. The default.
    #[default]
    Proximity,
    /// Plain contiguous lane-id splitting (the original PR-6 behaviour).
    Contiguous,
}

/// Tuning knobs of the conservative parallel engine. None of these change
/// observable output — the engine is byte-identical to sequential at any
/// setting — only how much work each coordinator round batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParTuning {
    /// Number of lookahead windows each shard may execute between
    /// coordinator synchronizations (the epoch length `k`). 1 reproduces
    /// the old lock-step barrier-per-window behaviour.
    pub epoch: u64,
    /// Lane-to-shard placement policy.
    pub placement: ParPlacement,
}

impl Default for ParTuning {
    fn default() -> Self {
        ParTuning {
            epoch: 64,
            placement: ParPlacement::default(),
        }
    }
}

impl ParTuning {
    /// Read the tuning from `COHFREE_PAR_EPOCH` / `COHFREE_PAR_PLACEMENT`,
    /// defaulting each unset knob.
    ///
    /// # Errors
    /// Returns [`crate::envknob::EnvKnobError`] when a set variable does not
    /// parse (non-positive epoch, unknown placement name).
    pub fn from_env() -> Result<ParTuning, crate::envknob::EnvKnobError> {
        use crate::envknob;
        let mut t = ParTuning::default();
        if let Some(k) = envknob::lookup("COHFREE_PAR_EPOCH", envknob::parse_positive)? {
            t.epoch = k;
        }
        if let Some(ix) = envknob::lookup("COHFREE_PAR_PLACEMENT", |name, raw| {
            envknob::parse_choice(
                name,
                raw,
                &["proximity", "contiguous"],
                "one of: proximity, contiguous",
            )
        })? {
            t.placement = [ParPlacement::Proximity, ParPlacement::Contiguous][ix];
        }
        Ok(t)
    }
}

/// Full description of a simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Interconnect topology (the prototype: 4×4 2D mesh).
    pub topology: Topology,
    /// Fabric physical parameters.
    pub fabric: FabricConfig,
    /// Per-node DRAM parameters.
    pub dram: DramConfig,
    /// RMC parameters (client and server side).
    pub rmc: RmcConfig,
    /// CPU cache geometry (per application core; the L2/aggregate level).
    pub cache: CacheConfig,
    /// Optional L1 in front of [`ClusterConfig::cache`]; `None` (default)
    /// keeps the single-cache baseline model.
    pub l1: Option<CacheConfig>,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Bytes each node keeps for its own OS/processes.
    pub private_bytes: u64,
    /// Bytes each node contributes to the shared pool.
    pub pool_bytes: u64,
    /// Donor selection policy for reservations.
    pub donor_policy: DonorPolicy,
    /// Software timing.
    pub os: OsTiming,
    /// Deterministic fault-injection schedule (empty by default).
    pub faults: FaultPlan,
    /// Failure-detection and recovery parameters.
    pub recovery: RecoveryConfig,
    /// Online recovery-manager control loop (disabled by default; when
    /// enabled the world runs periodic manager ticks that drive load-aware
    /// evacuation, proactive migration, and admission control).
    pub manager: ManagerConfig,
    /// Per-transaction span tracing (off by default).
    pub trace: TraceConfig,
    /// Base PRNG seed (placement, workload streams fork from it).
    pub seed: u64,
}

impl ClusterConfig {
    /// The CLUSTER 2010 prototype: 16 nodes, 4 sockets × 4 GiB each,
    /// 8 GiB private + 8 GiB pooled per node (128 GiB cluster pool),
    /// FPGA RMCs on a 4×4 mesh.
    pub fn prototype() -> ClusterConfig {
        ClusterConfig {
            topology: Topology::prototype(),
            fabric: FabricConfig::default(),
            dram: DramConfig::default(),
            rmc: RmcConfig::default(),
            cache: CacheConfig::default(),
            l1: None,
            tlb: TlbConfig::default(),
            private_bytes: 8 << 30,
            pool_bytes: 8 << 30,
            donor_policy: DonorPolicy::Nearest,
            os: OsTiming::default(),
            faults: FaultPlan::default(),
            recovery: RecoveryConfig::default(),
            manager: ManagerConfig::default(),
            trace: TraceConfig::default(),
            seed: 0xC0DE_2010,
        }
    }

    /// A hypothetical single machine with `total_bytes` of *local* memory —
    /// the paper's "local memory" comparison point (it has no usable pool
    /// and its sockets are scaled up to hold everything).
    pub fn big_local_machine(total_bytes: u64) -> ClusterConfig {
        let mut cfg = ClusterConfig::prototype();
        cfg.dram.bytes_per_socket = total_bytes.div_ceil(cfg.dram.sockets as u64);
        cfg.private_bytes = total_bytes;
        cfg.pool_bytes = 4096; // minimal non-empty pool (unused)
        cfg
    }

    /// Frames each node contributes to the pool.
    pub fn pool_frames_per_node(&self) -> u64 {
        self.pool_bytes / cohfree_os::frames::PAGE_FRAME_BYTES
    }

    /// Total shared pool across the cluster in bytes.
    pub fn cluster_pool_bytes(&self) -> u64 {
        self.pool_bytes * self.topology.num_nodes() as u64
    }

    /// An L1 refinement preset: 64 KiB 8-way L1 in front of the default L2.
    pub fn with_l1(mut self) -> ClusterConfig {
        self.l1 = Some(CacheConfig {
            line_bytes: 64,
            sets: 128,
            ways: 8,
        });
        self
    }

    /// Validate internal consistency (sizes fit address windows, etc.).
    ///
    /// # Panics
    /// Panics with a descriptive message on an inconsistent configuration.
    pub fn validate(&self) {
        let node_bytes = self.dram.node_bytes();
        assert!(
            self.private_bytes + self.pool_bytes <= node_bytes,
            "private ({}) + pool ({}) exceed node memory ({})",
            self.private_bytes,
            self.pool_bytes,
            node_bytes
        );
        assert!(
            node_bytes <= cohfree_mem::map::NODE_WINDOW_BYTES,
            "node memory exceeds the 14-bit-prefix address window"
        );
        assert!(self.topology.num_nodes() >= 2, "a cluster needs >= 2 nodes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_the_paper() {
        let c = ClusterConfig::prototype();
        c.validate();
        assert_eq!(c.topology.num_nodes(), 16);
        assert_eq!(c.dram.node_bytes(), 16 << 30);
        assert_eq!(c.cluster_pool_bytes(), 128 << 30, "the 128 GiB pool");
        assert_eq!(c.pool_frames_per_node(), (8 << 30) / 4096);
    }

    #[test]
    fn big_local_machine_holds_everything_locally() {
        let c = ClusterConfig::big_local_machine(128 << 30);
        assert!(c.dram.node_bytes() >= 128 << 30);
        assert_eq!(c.private_bytes, 128 << 30);
    }

    #[test]
    #[should_panic(expected = "exceed node memory")]
    fn oversubscribed_node_rejected() {
        let mut c = ClusterConfig::prototype();
        c.pool_bytes = 20 << 30;
        c.validate();
    }
}
