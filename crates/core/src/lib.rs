#![warn(missing_docs)]

//! # cohfree-core — the public API of the cohfree cluster simulator
//!
//! This crate assembles the substrates (`cohfree-sim/-fabric/-mem/-rmc/-os`)
//! into the system of the paper: a cluster whose nodes can borrow memory
//! from each other **without extending cache coherency across nodes**.
//!
//! The API has three levels:
//!
//! 1. [`config::ClusterConfig`] — describe the machine (topology, DRAM, RMC,
//!    cache, OS timing); [`config::ClusterConfig::prototype`] reproduces the
//!    16-node CLUSTER 2010 prototype.
//! 2. [`world::World`] — the discrete-event cluster: inject transactions,
//!    spawn traffic-generator threads (used by the Fig. 6–8 experiments),
//!    inspect component statistics.
//! 3. [`backend`] — process-level memory spaces implementing [`MemSpace`]:
//!    * [`backend::LocalMachine`] — a hypothetical big-memory single node
//!      (the paper's "local memory" reference),
//!    * [`backend::RemoteMemorySpace`] — the paper's system: reservation +
//!      prefixed page mappings + hardware remote access,
//!    * [`backend::SwapSpace`] — the remote-swap and disk-swap baselines.
//!
//!    Workloads (`cohfree-workloads`) are written once against [`MemSpace`]
//!    and run unchanged over any backend, which is exactly how the paper
//!    compares its prototype against remote swap.
//!
//! [`analytic`] implements the paper's Equations 1–2 for model-vs-simulation
//! validation.
//!
//! ## Example
//!
//! ```
//! use cohfree_core::config::ClusterConfig;
//! use cohfree_core::backend::{MemSpace, RemoteMemorySpace, AllocPolicy};
//!
//! // A process on node 1 of the 16-node prototype, allocating remote memory.
//! let cfg = ClusterConfig::prototype();
//! let mut m = RemoteMemorySpace::new(cfg, cohfree_fabric::NodeId::new(1),
//!                                    AllocPolicy::AlwaysRemote);
//! let va = m.alloc(1 << 20);
//! m.write_u64(va, 42);
//! assert_eq!(m.read_u64(va), 42);
//! assert!(m.now().as_ns() > 0); // simulated time has advanced
//! ```

pub mod analytic;
pub mod backend;
pub mod config;
pub mod envknob;
mod exec;
pub mod fault;
mod par;
pub mod trace;
pub mod world;

pub use backend::{AllocPolicy, LocalMachine, MemSpace, RemoteMemorySpace, SwapSpace};
pub use config::{ClusterConfig, OsTiming, ParPlacement, ParTuning, TraceConfig};
pub use envknob::EnvKnobError;
pub use fault::{EvacuationPolicy, FaultEvent, FaultPlan, RecoveryConfig, MAX_FAULT_EVENTS};
pub use world::{
    AccessOutcome, AccessPattern, ClusterSnapshot, Sample, ThreadSpec, World, WorldConfigError,
};

// Re-export the substrate types a user of the public API needs.
pub use cohfree_fabric::{MsgKind, NodeId, Topology};
pub use cohfree_os::manager::{ManagerConfig, NodeObservation, RecoveryManager};
pub use cohfree_sim::{
    FaultLog, FaultLogEntry, Json, Phase, Rng, SimDuration, SimTime, SpanRecord, TraceMode,
    TraceSink,
};
