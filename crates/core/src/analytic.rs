//! The paper's analytic memory-time model (Equations 1 and 2).
//!
//! Equation 1 — remote swap:
//! ```text
//! T_remote_swap = A_total · L_local + (A_total / A_page) · L_swap
//! ```
//! where `A_total` is the total number of memory accesses, `A_page` the mean
//! number of accesses a page receives during one residency, `L_local` the
//! local DRAM latency and `L_swap` the cost of bringing one page in.
//!
//! Equation 2 — the paper's remote memory:
//! ```text
//! T_remote_memory = A_total · L_remote
//! ```
//!
//! The crossover (`remote memory wins when T_remote_memory < T_remote_swap`)
//! depends only on locality: remote swap beats remote memory only when each
//! fetched page amortizes its transfer over many accesses. The `analytic`
//! bench compares these closed forms against full simulation.

use cohfree_sim::SimDuration;

/// Inputs to both equations.
#[derive(Debug, Clone, Copy)]
pub struct ModelParams {
    /// Total memory accesses performed by the application (`A_total`).
    pub total_accesses: u64,
    /// Mean accesses per page residency (`A_page`); the locality knob.
    pub accesses_per_page: f64,
    /// Local DRAM access latency (`L_local`).
    pub l_local: SimDuration,
    /// Page fetch cost, OS overhead included (`L_swap`).
    pub l_swap: SimDuration,
    /// Remote cache-line access latency (`L_remote`).
    pub l_remote: SimDuration,
}

/// Equation 1: memory time under remote swap.
pub fn t_remote_swap(p: &ModelParams) -> SimDuration {
    assert!(p.accesses_per_page > 0.0, "A_page must be positive");
    let local = p.l_local.as_ns_f64() * p.total_accesses as f64;
    let faults = p.total_accesses as f64 / p.accesses_per_page;
    let swap = p.l_swap.as_ns_f64() * faults;
    SimDuration::ns_f64(local + swap)
}

/// Equation 2: memory time under the paper's remote memory.
pub fn t_remote_memory(p: &ModelParams) -> SimDuration {
    SimDuration::ns_f64(p.l_remote.as_ns_f64() * p.total_accesses as f64)
}

/// The locality threshold `A_page*` at which both systems cost the same:
/// remote swap wins only above it. Derived from equating Eqs. 1 and 2:
/// `A_page* = L_swap / (L_remote − L_local)`.
///
/// Returns `None` when remote memory is not slower than local memory (then
/// remote memory wins at any locality).
pub fn crossover_accesses_per_page(p: &ModelParams) -> Option<f64> {
    let diff = p.l_remote.as_ns_f64() - p.l_local.as_ns_f64();
    (diff > 0.0).then(|| p.l_swap.as_ns_f64() / diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(accesses_per_page: f64) -> ModelParams {
        ModelParams {
            total_accesses: 1_000_000,
            accesses_per_page,
            l_local: SimDuration::ns(70),
            l_swap: SimDuration::us(25),
            l_remote: SimDuration::ns(1_500),
        }
    }

    #[test]
    fn equation1_matches_hand_computation() {
        let p = params(10.0);
        // 1e6 * 70ns + 1e5 * 25us = 70ms + 2500ms = 2.57s
        let t = t_remote_swap(&p);
        assert!((t.as_ms_f64() - 2_570.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn equation2_matches_hand_computation() {
        let p = params(10.0);
        // 1e6 * 1.5us = 1.5s
        let t = t_remote_memory(&p);
        assert!((t.as_ms_f64() - 1_500.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn remote_memory_is_locality_insensitive() {
        let a = t_remote_memory(&params(1.0));
        let b = t_remote_memory(&params(1_000.0));
        assert_eq!(a, b, "Eq. 2 has no locality term");
    }

    #[test]
    fn swap_improves_with_locality() {
        let poor = t_remote_swap(&params(1.0));
        let good = t_remote_swap(&params(1_000.0));
        assert!(poor.as_ns_f64() > 10.0 * good.as_ns_f64());
    }

    #[test]
    fn crossover_separates_the_winners() {
        let p = params(1.0);
        let x = crossover_accesses_per_page(&p).expect("remote slower than local");
        // Below the crossover remote memory wins; above, swap wins.
        let below = params(x * 0.5);
        assert!(t_remote_memory(&below) < t_remote_swap(&below));
        let above = params(x * 2.0);
        assert!(t_remote_memory(&above) > t_remote_swap(&above));
        // ~25us / 1.43us ≈ 17.5 accesses/page
        assert!((15.0..25.0).contains(&x), "crossover {x}");
    }

    #[test]
    fn crossover_none_when_remote_not_slower() {
        let mut p = params(1.0);
        p.l_remote = p.l_local;
        assert!(crossover_accesses_per_page(&p).is_none());
    }
}
