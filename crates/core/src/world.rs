//! The discrete-event cluster.
//!
//! [`World`] owns every timed component — fabric, per-node DRAM, RMC client
//! and server datapaths, frame allocators — and the event loop that moves
//! transactions through them:
//!
//! ```text
//! core ──submit──▶ client RMC ──▶ fabric hops ──▶ server RMC ──▶ DRAM
//!   ▲                                                             │
//!   └── completion ◀── client RMC ◀── fabric hops ◀── response ◀──┘
//! ```
//!
//! Two driving modes:
//!
//! * **Blocking** ([`World::blocking_transaction`]) — one transaction at a
//!   time, used by the synchronous [`crate::backend::MemSpace`] backends
//!   (the prototype binds memory-hungry processes to a single core with one
//!   outstanding RMC request, so this is not a simplification — it *is* the
//!   machine).
//! * **Traffic threads** ([`World::spawn_thread`] / [`World::run`]) — the
//!   multi-client random-access generators of Figs. 7 and 8, including
//!   NACK/retry behaviour.
//!
//! Reservation (software, off the access path) is performed functionally via
//! [`World::reserve_remote`], which updates the donor's frame allocator, the
//! directory and the borrower's region, and charges the configured
//! reservation latency to the caller's clock.

use crate::config::ClusterConfig;
use crate::envknob;
use crate::exec;
use crate::fault::{EvacuationPolicy, FaultEvent};
use cohfree_fabric::{Fabric, FabricRow, Message, MsgKind, NodeId};
use cohfree_mem::NodeMemory;
use cohfree_os::directory::Directory;
use cohfree_os::frames::FrameAllocator;
use cohfree_os::manager::{ManagerAction, NodeObservation, RecoveryManager};
use cohfree_os::region::{Region, Segment};
use cohfree_os::resv::{Reservation, ResvDonor, ResvRequester};
use cohfree_rmc::{RmcClient, RmcServer, Submit};
use cohfree_sim::rng::Zipf;
use cohfree_sim::span::{Phase, TraceSink};
use cohfree_sim::stats::LatencyHistogram;
use cohfree_sim::{EventQueue, FastMap, FaultLog, Json, Rng, SimDuration, SimTime};
use std::fmt;

/// Per-node timed components.
pub(crate) struct NodeCtx {
    pub(crate) mem: NodeMemory,
    pub(crate) client: RmcClient,
    pub(crate) server: RmcServer,
    pub(crate) frames: FrameAllocator,
    pub(crate) requester: ResvRequester,
    pub(crate) donor: ResvDonor,
    pub(crate) region: Region,
}

/// Events moving through the cluster.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// `msg` is at router `at` (first hop: its source node).
    Hop { msg: Message, at: NodeId },
    /// The home node's DRAM finished serving `msg` (which arrived at the
    /// server RMC at `arrived`).
    MemDone { msg: Message, arrived: SimTime },
    /// A traffic thread should take its next step.
    ThreadWake { id: usize },
    /// Loss-recovery timer for transaction `tag` fired (armed only on a
    /// lossy fabric or under a fault plan). Stale if the transaction
    /// completed or was already retransmitted (`attempt` mismatch).
    Timeout { tag: u64, attempt: u32 },
    /// Periodic metrics-sampling probe (armed by [`World::enable_sampling`]).
    /// Re-arms itself only while other events remain queued, so a draining
    /// run still terminates.
    Sample,
    /// A scheduled fault (or repair) from the configuration's
    /// [`crate::FaultPlan`] strikes.
    Fault(FaultEvent),
    /// `observer`'s client RMC exhausted its retry budget against `dead`
    /// and declares it failed. Declaration touches cluster-wide state
    /// (directory, evacuation, doomed-transaction sweep), so it runs as a
    /// global event one fabric lookahead window after the exhaustion —
    /// keeping it mergeable under any partitioning.
    Suspect {
        /// The node giving up.
        observer: NodeId,
        /// The node being declared failed.
        dead: NodeId,
    },
    /// Recovery-manager control-loop tick ([`crate::ManagerConfig`]):
    /// observe the cluster, decide, act. Touches cluster-wide state
    /// (directory, regions, per-client shed sets), so it runs as a global
    /// event on the fully merged world — partition-safe by construction.
    /// Re-arms only while threads are unfinished or transactions are in
    /// flight, so a draining run still terminates.
    Manager,
}

/// One observation of the periodic sampling probe.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Capture instant.
    pub at: SimTime,
    /// In-flight RMC transactions per node (index `i` is node `i + 1`).
    pub client_in_flight: Vec<usize>,
    /// Server RMC front-end time-to-drain backlog per node, in nanoseconds.
    pub server_backlog_ns: Vec<f64>,
    /// Busiest DRAM controller time-to-drain backlog per node, in ns.
    pub mem_backlog_ns: Vec<f64>,
    /// Busiest fabric link time-to-drain backlog, in nanoseconds.
    pub max_link_backlog_ns: f64,
    /// Events pending in the engine queue (excluding this probe).
    pub events_queued: usize,
    /// Cumulative client RMC completions per node (index `i` is node
    /// `i + 1`) — differencing consecutive samples yields the throughput
    /// timeline the failover experiments plot.
    pub completions: Vec<u64>,
}

/// Periodic queue-depth/occupancy recorder driven by [`Ev::Sample`].
struct Sampler {
    interval: SimDuration,
    samples: Vec<Sample>,
}

/// Assemble one [`Sample`] from lane-ordered node borrows. Shared between
/// the sequential sampler and the parallel engine's merged *view* (which
/// holds the nodes split across shards), so both record byte-identical
/// observations. `nodes[i]` is node `i + 1`; `events_queued` is the
/// engine-queue depth excluding the probe itself.
pub(crate) fn build_sample(
    at: SimTime,
    nodes: &[&NodeCtx],
    max_link_backlog_ns: f64,
    events_queued: usize,
) -> Sample {
    Sample {
        at,
        client_in_flight: nodes.iter().map(|n| n.client.in_flight()).collect(),
        server_backlog_ns: nodes
            .iter()
            .map(|n| n.server.engine_backlog(at).as_ns_f64())
            .collect(),
        mem_backlog_ns: nodes
            .iter()
            .map(|n| n.mem.max_backlog(at).as_ns_f64())
            .collect(),
        max_link_backlog_ns,
        events_queued,
        completions: nodes.iter().map(|n| n.client.completions()).collect(),
    }
}

/// A point-in-time serializable view of every timed component in the
/// cluster, plus the sampling probe's time series when enabled.
///
/// Produced by [`World::snapshot`]; the [`ClusterSnapshot::doc`] field holds
/// the full JSON document (see that method for the schema).
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// Instant the snapshot was taken (the engine clock).
    pub at: SimTime,
    /// The complete document.
    pub doc: Json,
}

impl ClusterSnapshot {
    /// Consume the snapshot, yielding the JSON document.
    pub fn into_json(self) -> Json {
        self.doc
    }
}

/// A [`World`] configuration request that cannot be honoured.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldConfigError {
    /// The coherent-DSM baseline cannot run over a fabric that loses
    /// messages: its probe choreography has no loss recovery.
    LossyCoherentDomain {
        /// The configured per-traversal loss probability.
        loss_rate: f64,
    },
    /// The coherent baseline has no failure handling either; a coherency
    /// domain cannot be combined with a non-empty fault plan.
    FaultyCoherentDomain,
    /// The fault plan names a node the topology does not contain; the
    /// event could never strike and the plan is almost certainly a typo.
    UnknownFaultNode {
        /// The nonexistent node.
        node: NodeId,
    },
    /// The fault plan names a link that is not a physical link of the
    /// topology (in either direction).
    UnknownFaultLink {
        /// One claimed endpoint.
        a: NodeId,
        /// The other claimed endpoint.
        b: NodeId,
    },
}

impl fmt::Display for WorldConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldConfigError::LossyCoherentDomain { loss_rate } => write!(
                f,
                "the coherent baseline requires a lossless fabric (loss_rate = {loss_rate})"
            ),
            WorldConfigError::FaultyCoherentDomain => write!(
                f,
                "the coherent baseline cannot run under a fault plan (no failure recovery)"
            ),
            WorldConfigError::UnknownFaultNode { node } => write!(
                f,
                "fault plan names node {node}, which the topology does not contain"
            ),
            WorldConfigError::UnknownFaultLink { a, b } => write!(
                f,
                "fault plan names link {a} <-> {b}, which is not a physical link of the topology"
            ),
        }
    }
}

impl std::error::Error for WorldConfigError {}

/// Outcome of one access driven through [`World::try_blocking_transaction`]:
/// either it completed, or its home node was declared failed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access completed; the issuing core observes it at `at`.
    Completed {
        /// Completion instant.
        at: SimTime,
    },
    /// The home node was declared failed (retry budget exhausted or
    /// crashed) before the access could complete.
    Failed {
        /// The home node that was given up on.
        node: NodeId,
        /// When the access was abandoned.
        at: SimTime,
    },
    /// The recovery manager is load-shedding the home node (admission
    /// control): the access was not admitted. The caller may retry once
    /// pressure clears — the manager re-admits with hysteresis.
    Shed {
        /// The overloaded home node.
        node: NodeId,
        /// When the access was turned away.
        at: SimTime,
    },
}

/// Who is waiting on a transaction tag.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Owner {
    Thread(usize),
    Sync,
    /// Nobody waits: a posted write — the core already moved on.
    Posted,
}

/// Bookkeeping for an in-flight transaction (needed for loss recovery).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingTx {
    pub(crate) owner: Owner,
    pub(crate) msg: Message,
    pub(crate) attempt: u32,
}

/// Home-side state of one coherent-DSM transaction (baseline model): the
/// response may only leave once the DRAM read *and* every snoop response
/// have arrived.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CohState {
    pub(crate) awaiting_probes: usize,
    pub(crate) mem_done: Option<SimTime>,
    pub(crate) req: Message,
    pub(crate) arrived: SimTime,
}

/// Specification of one traffic-generator thread (Figs. 7–8 style).
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Node whose core runs the thread.
    pub node: NodeId,
    /// Remote zones to target: (prefixed base, length in bytes). Each access
    /// picks a zone uniformly, then a 64-byte-aligned offset uniformly.
    pub zones: Vec<(u64, u64)>,
    /// Total accesses to perform.
    pub accesses: u64,
    /// Bytes per access (typically one cache line).
    pub bytes: u32,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// CPU time between completing one access and issuing the next.
    pub think: SimDuration,
    /// Thread-private PRNG seed.
    pub seed: u64,
}

/// How a serving thread ([`World::spawn_serving_thread`]) picks target
/// addresses within its zones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Uniform over all slots (the Figs. 7–8 generator's default).
    Uniform,
    /// Stream the zones end-to-end in address order, wrapping — the
    /// columnar-scan shape: each request reads the next chunk of the table.
    Sequential,
    /// Zipf-popularity slot pick with the given exponent (rank 0 hottest) —
    /// the KV/DB point-lookup shape over a skewed working set.
    Zipf(f64),
}

pub(crate) struct Thread {
    pub(crate) spec: ThreadSpec,
    pub(crate) rng: Rng,
    /// Stream the zones in address order instead of uniformly at random
    /// (models the read-only parallel phases of Section IV-B).
    pub(crate) sequential: bool,
    /// Issue coherent-DSM reads (the 3Leaf-style baseline) instead of the
    /// paper's non-coherent reads.
    pub(crate) coherent: bool,
    pub(crate) issued: u64,
    pub(crate) completed: u64,
    /// Accesses abandoned because their home node was declared failed (or
    /// because this thread's own node crashed).
    pub(crate) failed: u64,
    /// Open-loop requests dropped by admission control — the third terminal
    /// outcome next to completed and failed. Always 0 for closed-loop
    /// threads, which park shed accesses and retry instead.
    pub(crate) shed: u64,
    /// Accesses re-issued against a new home after an evacuation.
    pub(crate) evacuated_retries: u64,
    /// Access generated but NACKed, awaiting retry.
    pub(crate) pending: Option<(NodeId, MsgKind, u64)>,
    /// When the pending access was *first* offered (serialization-stall
    /// start for the span tracer; `None` for evacuation re-aims).
    pub(crate) pending_since: Option<SimTime>,
    /// Open-loop arrival schedule: absolute instant request `k` enters the
    /// system (sorted, one per access). Empty = closed loop (the next
    /// access issues `think` after the previous one resolves).
    pub(crate) arrivals: Vec<SimTime>,
    /// Zipf slot sampler over the combined zone slots (serving threads with
    /// [`AccessPattern::Zipf`] only).
    pub(crate) zipf: Option<Zipf>,
    /// Arrival instant of the in-flight request (serving threads only), so
    /// completion can record the end-to-end latency a user would see.
    pub(crate) inflight_since: Option<SimTime>,
    /// Per-request end-to-end latency (arrival to completion), recorded for
    /// serving threads only; deterministic, so engine-invariant.
    pub(crate) latency: Option<Box<LatencyHistogram>>,
    pub(crate) started: SimTime,
    pub(crate) finished: Option<SimTime>,
    pub(crate) nack_retries: u64,
}

impl Thread {
    /// Terminal outcomes recorded so far; the thread is finished when this
    /// reaches its access budget.
    pub(crate) fn resolved(&self) -> u64 {
        self.completed + self.failed + self.shed
    }

    /// Earliest instant the thread may offer its next fresh access after
    /// resolving one at `now`: closed-loop threads rest `think`; open-loop
    /// threads additionally wait for the next scheduled arrival (and are
    /// never early — a backed-up lane naturally queues arrivals).
    pub(crate) fn next_issue_at(&self, now: SimTime) -> SimTime {
        let rest = now + self.spec.think;
        match self.arrivals.get(self.issued as usize) {
            Some(&arrival) => rest.max(arrival),
            None => rest,
        }
    }
}

/// The simulated cluster.
///
/// ```
/// use cohfree_core::{ClusterConfig, MsgKind, NodeId, SimTime, World};
///
/// let mut w = World::new(ClusterConfig::prototype());
/// // Node 1 borrows 4 MiB from node 2 and reads the first line of it.
/// let resv = w.reserve_remote(NodeId::new(1), 1024, Some(NodeId::new(2)));
/// let done = w.blocking_transaction(
///     SimTime::ZERO,
///     NodeId::new(1),
///     NodeId::new(2),
///     MsgKind::ReadReq { bytes: 64 },
///     resv.prefixed_base,
/// );
/// assert!(done.as_ns() > 800, "a remote read is ~1 us on the prototype");
/// ```
pub struct World {
    pub(crate) cfg: ClusterConfig,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) fabric: Fabric,
    pub(crate) nodes: Vec<NodeCtx>,
    pub(crate) directory: Directory,
    pub(crate) threads: Vec<Thread>,
    pub(crate) pending: FastMap<u64, PendingTx>,
    pub(crate) sync_done: Option<(u64, SimTime)>,
    /// Members of the (single, experiment-wide) inter-node coherency domain
    /// for the coherent-DSM baseline; empty = the paper's architecture.
    pub(crate) coherent_domain: Vec<NodeId>,
    pub(crate) coh: FastMap<u64, CohState>,
    sampler: Option<Sampler>,
    /// Crash state per node (index `i` is node `i + 1`).
    pub(crate) dead: Vec<bool>,
    /// Suspect state per node (index `i` is node `i + 1`): true once any
    /// client's failure detector declared the node failed; cleared on
    /// restart. The recovery manager reads this instead of scanning every
    /// client's suspect set each tick.
    suspected: Vec<bool>,
    /// The online recovery manager (present iff
    /// [`crate::ManagerConfig::enabled`]).
    manager: Option<RecoveryManager>,
    /// Chronological record of faults, detections and recoveries.
    fault_log: FaultLog,
    /// Frames per donor node (index `i` is node `i + 1`) whose grants were
    /// dropped without a directory credit: the donor was unreachable when
    /// its zone was force-migrated away, so its debited capacity is lost
    /// until it restarts. The chaos frame-conservation oracle balances
    /// `free + hosted + lost == pool` with this.
    lost_frames: Vec<u64>,
    /// Zones successfully re-homed after a donor failure.
    evacuations: u64,
    /// A blocking transaction's home was declared failed (mirror of
    /// `sync_done` for the failure path).
    pub(crate) sync_failed: Option<(u64, SimTime)>,
    /// Per owner node: `(old_base, new_base, frames)` of evacuated zones,
    /// so interrupted and not-yet-issued accesses can be re-aimed.
    pub(crate) evac_remaps: Vec<Vec<(u64, u64, u64)>>,
    /// Per-transaction span tracer (mode per [`crate::TraceConfig`]).
    pub(crate) trace: TraceSink,
    /// Sequence number for global-context scheduling keys ([`World::gsched`]):
    /// both engines perform these calls in the same order, so the keys agree.
    pub(crate) gseq: u64,
    /// Lane events executed so far per lane (index `i` is node `i + 1`); an
    /// event's per-lane ordinal feeds its children's ordering keys.
    pub(crate) exec_counts: Vec<u64>,
    /// Worker-partition count for [`World::run`] (1 = sequential engine).
    pub(crate) parallel: usize,
}

impl World {
    /// Build a cluster per `cfg`.
    ///
    /// # Panics
    /// Panics when the fault plan names a node or link the topology does
    /// not contain; [`World::try_new`] reports that as a typed error.
    pub fn new(cfg: ClusterConfig) -> World {
        World::try_new(cfg).unwrap_or_else(|e| panic!("invalid cluster config: {e}"))
    }

    /// Build a cluster per `cfg`, validating the fault plan against the
    /// topology first.
    ///
    /// # Errors
    /// [`WorldConfigError::UnknownFaultNode`] /
    /// [`WorldConfigError::UnknownFaultLink`] when the plan schedules an
    /// event against a node or link that does not exist — such an event
    /// could never strike, which always indicates a mis-built experiment.
    pub fn try_new(cfg: ClusterConfig) -> Result<World, WorldConfigError> {
        // `COHFREE_METRICS=<path>` asks for a Prometheus export at exit;
        // flip the engine self-profiling registry on once per process so
        // every engine run records. The registry is out-of-band: enabling
        // it never changes simulation output (the differential suite
        // pins that), so this cannot perturb a world mid-experiment.
        static METRICS_FROM_ENV: std::sync::Once = std::sync::Once::new();
        METRICS_FROM_ENV.call_once(|| {
            if envknob::metrics_export_path().is_some() {
                cohfree_sim::metrics::set_enabled(true);
            }
        });
        for ev in cfg.faults.events() {
            match ev {
                FaultEvent::NodeCrash { node, .. }
                | FaultEvent::NodeRestart { node, .. }
                | FaultEvent::ServerStall { node, .. } => {
                    if !cfg.topology.contains(node) {
                        return Err(WorldConfigError::UnknownFaultNode { node });
                    }
                }
                FaultEvent::LinkDown { a, b, .. } | FaultEvent::LinkUp { a, b, .. } => {
                    let physical = cfg
                        .topology
                        .links()
                        .iter()
                        .any(|&(u, v)| (u, v) == (a, b) || (u, v) == (b, a));
                    if !physical {
                        return Err(WorldConfigError::UnknownFaultLink { a, b });
                    }
                }
            }
        }
        Ok(World::build(cfg))
    }

    fn build(cfg: ClusterConfig) -> World {
        cfg.validate();
        let n = cfg.topology.num_nodes();
        let nodes = (1..=n)
            .map(|i| {
                let id = NodeId::new(i);
                NodeCtx {
                    mem: NodeMemory::new(cfg.dram),
                    client: RmcClient::new(id, cfg.rmc),
                    server: RmcServer::new(id, cfg.rmc),
                    frames: FrameAllocator::new(cfg.private_bytes, cfg.pool_bytes),
                    requester: ResvRequester::new(id),
                    donor: ResvDonor::new(id),
                    region: Region::new(id, cfg.dram.node_bytes() / 4096),
                }
            })
            .collect();
        let mut world = World {
            fabric: Fabric::new(cfg.topology, cfg.fabric),
            nodes,
            directory: Directory::new(cfg.topology, cfg.pool_frames_per_node(), cfg.donor_policy),
            threads: Vec::new(),
            pending: FastMap::default(),
            sync_done: None,
            coherent_domain: Vec::new(),
            coh: FastMap::default(),
            sampler: None,
            dead: vec![false; n as usize],
            suspected: vec![false; n as usize],
            manager: cfg
                .manager
                .enabled
                .then(|| RecoveryManager::new(cfg.manager, n)),
            fault_log: FaultLog::new(),
            lost_frames: vec![0; n as usize],
            evacuations: 0,
            sync_failed: None,
            evac_remaps: vec![Vec::new(); n as usize],
            trace: TraceSink::new(cfg.trace.mode, cfg.trace.capacity),
            queue: EventQueue::new(),
            gseq: 0,
            exec_counts: vec![0; n as usize],
            parallel: 1,
            cfg,
        };
        let faults: Vec<FaultEvent> = world.cfg.faults.events().collect();
        for ev in faults {
            world.gsched(ev.at(), Ev::Fault(ev));
        }
        if world.manager.is_some() {
            let tick = world.cfg.manager.tick;
            world.gsched(SimTime::ZERO + tick, Ev::Manager);
        }
        world
    }

    /// Arm the periodic sampling probe: every `interval` of simulated time,
    /// record queue depths and occupancy across the cluster (see [`Sample`]).
    /// The probe only re-arms while other events remain queued, so
    /// [`World::run`] still drains. Call before spawning threads.
    ///
    /// # Panics
    /// Panics on a zero interval.
    pub fn enable_sampling(&mut self, interval: SimDuration) {
        assert!(
            interval > SimDuration::ZERO,
            "sampling interval must be positive"
        );
        self.sampler = Some(Sampler {
            interval,
            samples: Vec::new(),
        });
        let at = self.queue.now() + interval;
        self.gsched(at, Ev::Sample);
    }

    /// Observations recorded by the sampling probe so far (empty unless
    /// [`World::enable_sampling`] was called).
    pub fn samples(&self) -> &[Sample] {
        self.sampler.as_ref().map_or(&[], |s| &s.samples)
    }

    fn take_sample(&mut self, now: SimTime) {
        if self.sampler.is_none() {
            return;
        }
        let sample = {
            let refs: Vec<&NodeCtx> = self.nodes.iter().collect();
            build_sample(
                now,
                &refs,
                self.fabric.max_link_backlog(now).as_ns_f64(),
                self.queue.len(),
            )
        };
        let sampler = self.sampler.as_mut().expect("checked above");
        let interval = sampler.interval;
        sampler.samples.push(sample);
        // Re-arm only while the cluster still has work in flight; when this
        // probe is the only queued event, sampling would keep the run alive
        // forever.
        if !self.queue.is_empty() {
            self.gsched(now + interval, Ev::Sample);
        }
    }

    /// The sampling interval, when [`World::enable_sampling`] armed the
    /// probe (parallel-engine view path).
    pub(crate) fn sampler_interval(&self) -> Option<SimDuration> {
        self.sampler.as_ref().map(|s| s.interval)
    }

    /// Record one externally-assembled sample (parallel-engine view path).
    pub(crate) fn push_sample(&mut self, sample: Sample) {
        self.sampler
            .as_mut()
            .expect("sampling enabled")
            .samples
            .push(sample);
    }

    /// Whether the online recovery manager is configured.
    pub(crate) fn has_manager(&self) -> bool {
        self.manager.is_some()
    }

    /// Configure the coherent-DSM baseline: every `CohReadReq` transaction
    /// makes its home node snoop all of `domain`'s other members before
    /// answering, modelling Opteron-style broadcast coherence stretched
    /// across the fabric (the 3Leaf/Aqua approach of Section II).
    ///
    /// # Errors
    /// The baseline's probe choreography has no loss or failure recovery
    /// (the real aggregating chipsets assumed reliable links too), so this
    /// rejects a lossy fabric and any non-empty fault plan with a
    /// [`WorldConfigError`].
    pub fn set_coherent_domain(&mut self, domain: Vec<NodeId>) -> Result<(), WorldConfigError> {
        if self.cfg.fabric.loss_rate > 0.0 {
            return Err(WorldConfigError::LossyCoherentDomain {
                loss_rate: self.cfg.fabric.loss_rate,
            });
        }
        if !self.cfg.faults.is_empty() {
            return Err(WorldConfigError::FaultyCoherentDomain);
        }
        self.coherent_domain = domain;
        // The snoop choreography mutates cross-node protocol state at one
        // instant; it only runs on the sequential engine.
        self.parallel = 1;
        Ok(())
    }

    /// Set the worker-partition count for [`World::run`]. `1` (the default)
    /// runs the sequential engine; `n > 1` partitions the nodes into `n`
    /// contiguous lane ranges driven by worker threads in conservative time
    /// windows bounded by the fabric's minimum hop latency — producing
    /// byte-identical results to the sequential engine.
    ///
    /// The count is clamped to the node count, and forced back to `1` when
    /// a coherent domain is configured (its snoop choreography is cross-node
    /// within one instant) or the fabric's minimum hop latency is zero (no
    /// conservative lookahead window exists).
    pub fn set_parallel(&mut self, workers: usize) {
        let n = self.cfg.topology.num_nodes() as usize;
        let clamped = workers.clamp(1, n);
        self.parallel = if !self.coherent_domain.is_empty()
            || self.fabric.shared_ref().min_hop_latency().is_zero()
        {
            1
        } else {
            clamped
        };
    }

    /// The worker-partition count [`World::run`] will use.
    pub fn parallel(&self) -> usize {
        self.parallel
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current simulated time of the event engine.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events processed by the engine since construction. The perf harness
    /// divides this by wall time for an events/second throughput figure.
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// The interconnect (for statistics).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The cluster free-memory directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Mutable directory access (experiments pin donor orders through it).
    pub fn directory_mut(&mut self) -> &mut Directory {
        &mut self.directory
    }

    /// The client RMC of `node` (statistics).
    pub fn client(&self, node: NodeId) -> &RmcClient {
        &self.nodes[node.index()].client
    }

    /// The server RMC of `node` (statistics).
    pub fn server(&self, node: NodeId) -> &RmcServer {
        &self.nodes[node.index()].server
    }

    /// The DRAM of `node` (statistics).
    pub fn memory(&self, node: NodeId) -> &NodeMemory {
        &self.nodes[node.index()].mem
    }

    /// The memory region of `node`.
    pub fn region(&self, node: NodeId) -> &Region {
        &self.nodes[node.index()].region
    }

    // ------------------------------------------------------------------
    // Reservation (software path, functional)
    // ------------------------------------------------------------------

    /// Reserve `frames` pool frames for `asker` from `donor` (or let the
    /// directory pick one when `None`). Grows the asker's region. Returns
    /// the reservation; the caller charges
    /// [`crate::config::OsTiming::reservation`] to its own clock.
    ///
    /// # Panics
    /// Panics if no donor can satisfy the request (callers size experiments
    /// within the pool) or on protocol violations.
    pub fn reserve_remote(
        &mut self,
        asker: NodeId,
        frames: u64,
        donor: Option<NodeId>,
    ) -> Reservation {
        let donor_id = donor
            .or_else(|| self.directory.choose_donor(asker, frames))
            .unwrap_or_else(|| panic!("no donor can lend {frames} frames to {asker}"));
        assert_ne!(donor_id, asker, "reservation donor must differ from asker");
        // Requester kernel -> donor kernel messages (functional).
        let req_msg = self.nodes[asker.index()]
            .requester
            .request(donor_id, frames);
        let ack = {
            let donor_ctx = &mut self.nodes[donor_id.index()];
            donor_ctx
                .donor
                .on_request(&req_msg, &mut donor_ctx.frames)
                .unwrap_or_else(|e| panic!("donor {donor_id} failed: {e}"))
        };
        let resv = self.nodes[asker.index()]
            .requester
            .on_ack(&ack)
            .expect("fresh ack");
        self.directory.debit(donor_id, frames);
        self.nodes[asker.index()].region.extend(Segment {
            home: donor_id,
            base: resv.prefixed_base,
            frames,
        });
        // The reservation round is off the access path; the caller charges
        // `OsTiming::reservation` to its own clock starting now.
        let t0 = self.queue.now();
        self.trace
            .standalone(Phase::Resv, asker.get(), t0, t0 + self.cfg.os.reservation);
        resv
    }

    /// Release a reservation previously granted to `asker`.
    pub fn release_remote(&mut self, asker: NodeId, resv: Reservation) {
        let rel = self.nodes[asker.index()].requester.release(resv);
        let freed = {
            let donor_ctx = &mut self.nodes[resv.home.index()];
            donor_ctx
                .donor
                .on_release(&rel, &mut donor_ctx.frames)
                .expect("release of unknown grant")
        };
        self.directory.credit(resv.home, freed);
        self.nodes[asker.index()]
            .region
            .shrink(resv.prefixed_base)
            .expect("region segment missing on release");
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Global-context scheduling: every schedule performed *outside* a lane
    /// event's execution (setup, the blocking/posted drivers, global
    /// handlers) goes through here. Both engines make these calls in the
    /// same order, so the resulting keys — and therefore the total event
    /// order — agree across engines.
    pub(crate) fn gsched(&mut self, at: SimTime, ev: Ev) {
        let key = self.next_gkey(&ev);
        self.queue.schedule_keyed(at, key, ev);
    }

    /// Allocate the next global-context ordering key for `ev` without
    /// scheduling it — the parallel engine's view path re-arms probes into
    /// its own holding queue but must burn the same `gseq` values in the
    /// same order as the sequential engine.
    pub(crate) fn next_gkey(&mut self, ev: &Ev) -> u128 {
        let lane = self.lane_of(ev);
        let key = exec::make_key(lane, 0, 0, self.gseq, 0);
        self.gseq += 1;
        key
    }

    /// The node lane that processes `ev` (0 = global).
    fn lane_of(&self, ev: &Ev) -> u16 {
        match ev {
            Ev::Hop { at, .. } => at.get(),
            Ev::MemDone { msg, .. } => msg.dst.get(),
            Ev::ThreadWake { id } => self.threads[*id].spec.node.get(),
            Ev::Timeout { tag, .. } => (tag >> 48) as u16,
            Ev::Sample | Ev::Fault(_) | Ev::Suspect { .. } | Ev::Manager => exec::GLOBAL_LANE,
        }
    }

    /// Dispatch one popped event. Global events run directly against the
    /// whole world; lane events run through the shared lane executor over a
    /// full-range context (the parallel engine drives the same executor
    /// over per-shard contexts).
    pub(crate) fn handle(&mut self, now: SimTime, key: u128, ev: Ev) {
        match ev {
            Ev::Sample => self.take_sample(now),
            Ev::Fault(fault) => self.apply_fault(now, fault),
            Ev::Suspect { observer, dead } => self.on_suspect(now, observer, dead),
            Ev::Manager => self.manager_tick(now),
            ev => {
                let lane = exec::key_lane(key) as usize;
                let idx = self.exec_counts[lane - 1];
                self.exec_counts[lane - 1] += 1;
                let (shared, counters, rows) = self.fabric.decompose();
                let mut ctx = exec::LaneCtx {
                    cfg: &self.cfg,
                    first: 1,
                    nodes: &mut self.nodes,
                    threads: &mut self.threads,
                    tmap: None,
                    shard: 0,
                    pending: &mut self.pending,
                    evac_remaps: &mut self.evac_remaps,
                    rows: &mut rows[1..],
                    fab_shared: shared,
                    fab_counters: counters,
                    dead: &self.dead,
                    coh: Some((&mut self.coh, &self.coherent_domain)),
                    trace: exec::TraceCtx::Direct(&mut self.trace),
                    sink: exec::SchedSink::Seq(&mut self.queue),
                    sync_done: &mut self.sync_done,
                    now,
                    cur_lane: 0,
                    cur_gen: 0,
                    cur_key: 0,
                    cur_idx: 0,
                    child: 0,
                };
                exec::exec_event(&mut ctx, now, key, idx, ev);
            }
        }
    }

    /// Fire a timeout handler directly (test hook for stale-timer races).
    #[cfg(test)]
    fn fire_timeout(&mut self, now: SimTime, tag: u64, attempt: u32) {
        let key = exec::make_key((tag >> 48) as u16, 0, 0, self.gseq, 0);
        self.gseq += 1;
        self.handle(now, key, Ev::Timeout { tag, attempt });
    }

    /// Arm the loss-recovery timer for a transaction submitted by a
    /// blocking/posted driver (thread submissions arm theirs inside the
    /// lane executor). Armed only when messages can be lost — a lossy
    /// fabric, or any fault plan (crashes and outages swallow traffic even
    /// over lossless links). The k-th retry backs off exponentially and
    /// saturates: `timeout * 2^min(k, backoff_cap)`.
    fn arm_timeout(&mut self, injected_at: SimTime, tag: u64, attempt: u32) {
        if self.cfg.fabric.loss_rate > 0.0 || !self.cfg.faults.is_empty() {
            let delay = exec::backoff_delay(&self.cfg, tag, attempt);
            self.gsched(
                injected_at.saturating_add(delay),
                Ev::Timeout { tag, attempt },
            );
        }
    }

    // ------------------------------------------------------------------
    // Failure detection and recovery
    // ------------------------------------------------------------------

    /// `observer`'s client RMC gave up on `dead` ([`Ev::Suspect`]): mark it
    /// suspect, zero its directory capacity, evacuate zones homed there, and
    /// abort every outstanding transaction aimed at it. Idempotent — a
    /// duplicate declaration (several requesters timing out on the same
    /// home) only sweeps an empty doomed set.
    fn on_suspect(&mut self, now: SimTime, observer: NodeId, dead: NodeId) {
        if !self.nodes[observer.index()].client.is_suspect(dead) {
            self.nodes[observer.index()].client.mark_suspect(dead);
            self.suspected[dead.index()] = true;
            self.fault_log.record(
                now,
                "suspect",
                format!("node {observer} declares node {dead} failed (retry budget exhausted)"),
            );
            self.directory.set_free(dead, 0);
            self.evacuate(now, observer, dead);
        }
        // Sweep in tag order: the map's iteration order depends on insertion
        // history, which differs across engines after a shard merge.
        let mut doomed: Vec<(u64, PendingTx)> = self
            .pending
            .iter()
            .filter(|(_, p)| p.msg.src == observer && p.msg.dst == dead)
            .map(|(&tag, &p)| (tag, p))
            .collect();
        doomed.sort_unstable_by_key(|&(tag, _)| tag);
        for (tag, p) in doomed {
            self.pending.remove(&tag);
            self.nodes[observer.index()].client.abort(tag);
            self.trace.finish(tag, now, true);
            match p.owner {
                Owner::Thread(id) => self.thread_abort(now, id, p.msg),
                Owner::Sync => self.sync_failed = Some((tag, now)),
                Owner::Posted => {} // fire-and-forget; nobody to notify
            }
        }
    }

    /// Re-home every zone of `owner`'s region whose home is `dead`
    /// (directory-assisted re-reservation on a donor with capacity and a
    /// zone-base rewrite), or drop it when no donor can take it / policy is
    /// [`EvacuationPolicy::Fail`]. The owner's threads keep running: their
    /// zone tables are rewritten and interrupted accesses re-aimed through
    /// the recorded remap.
    fn evacuate(&mut self, now: SimTime, owner: NodeId, dead: NodeId) {
        let doomed: Vec<Segment> = self.nodes[owner.index()]
            .region
            .segments()
            .iter()
            .filter(|s| s.home == dead)
            .copied()
            .collect();
        for seg in doomed {
            self.nodes[owner.index()]
                .region
                .shrink(seg.base)
                .expect("doomed segment exists");
            // Discard the stale grant; the release message goes nowhere —
            // its donor is dead.
            let stale = self.nodes[owner.index()]
                .requester
                .held()
                .iter()
                .copied()
                .find(|r| r.home == dead && r.prefixed_base == seg.base);
            if let Some(r) = stale {
                let _ = self.nodes[owner.index()].requester.release(r);
            }
            let new_donor = match self.cfg.recovery.evacuation {
                EvacuationPolicy::Rehome => self.recovery_donor(now, owner, seg.frames, dead),
                EvacuationPolicy::Fail => None,
            };
            let Some(new_donor) = new_donor else {
                self.fault_log.record(
                    now,
                    "evacuation_failed",
                    format!(
                        "zone {:#x} ({} frames) on dead node {dead} dropped (no donor; \
                         accesses to it fail)",
                        seg.base, seg.frames
                    ),
                );
                continue;
            };
            let new = self.reserve_remote(owner, seg.frames, Some(new_donor));
            for th in &mut self.threads {
                if th.spec.node != owner {
                    continue;
                }
                for z in &mut th.spec.zones {
                    if z.0 == seg.base {
                        z.0 = new.prefixed_base;
                    }
                }
            }
            self.evac_remaps[owner.index()].push((seg.base, new.prefixed_base, seg.frames));
            self.evacuations += 1;
            self.trace
                .standalone(Phase::Evac, owner.get(), now, now + self.cfg.os.reservation);
            self.fault_log.record(
                now,
                "evacuation",
                format!(
                    "zone {:#x} ({} frames) re-homed from node {dead} to node {}",
                    seg.base, seg.frames, new.home
                ),
            );
        }
    }

    /// Pick a donor for a recovery re-reservation of `frames` frames for
    /// `asker`, never `avoid`. With the recovery manager enabled this is
    /// load-aware (most free frames, lowest pressure, excluding dead /
    /// isolated / suspected / shed nodes); otherwise — or when the manager
    /// has no viable candidate — it falls back to the static directory
    /// policy.
    fn recovery_donor(
        &mut self,
        now: SimTime,
        asker: NodeId,
        frames: u64,
        avoid: NodeId,
    ) -> Option<NodeId> {
        let managed = self.manager.as_ref().and_then(|mgr| {
            let obs = self.observe(now);
            mgr.choose_recovery_donor(asker, frames, &obs)
        });
        managed
            .filter(|&d| d != avoid && self.directory.free_frames(d) >= frames)
            .or_else(|| {
                self.directory
                    .choose_donor(asker, frames)
                    .filter(|&d| d != avoid)
            })
    }

    /// Build the per-node observation vector the recovery manager consumes:
    /// liveness, reachability, suspicion, queue pressure, spare capacity and
    /// whether anyone's zones are homed on the node.
    fn observe(&self, now: SimTime) -> Vec<NodeObservation> {
        let nodes: Vec<&NodeCtx> = self.nodes.iter().collect();
        let rows = self.fabric.row_refs();
        self.observe_parts(now, &nodes, &rows)
    }

    /// [`World::observe`] over lane-ordered borrows of the per-node state —
    /// the parallel engine's merged *view* passes shard borrows here so a
    /// manager tick can decide without tearing the shards down. `nodes[i]` /
    /// `rows[i]` belong to node `i + 1`; directory, liveness and suspicion
    /// state stay on the world across a split, so they are read from `self`.
    pub(crate) fn observe_parts(
        &self,
        now: SimTime,
        nodes: &[&NodeCtx],
        rows: &[&FabricRow],
    ) -> Vec<NodeObservation> {
        let isolated = self.fabric.isolated_nodes();
        (1..=self.cfg.topology.num_nodes())
            .map(|i| {
                let id = NodeId::new(i);
                let hosts_zones = nodes.iter().enumerate().any(|(j, nc)| {
                    j != id.index() && nc.region.segments().iter().any(|s| s.home == id)
                });
                NodeObservation {
                    node: id,
                    dead: self.dead[id.index()],
                    isolated: isolated[i as usize],
                    suspected: self.suspected[id.index()],
                    server_backlog: nodes[id.index()].server.engine_backlog(now),
                    link_backlog: rows[id.index()].max_backlog(now),
                    free_frames: self.directory.free_frames(id),
                    hosts_zones,
                }
            })
            .collect()
    }

    /// One recovery-manager control-loop tick ([`Ev::Manager`]): observe the
    /// cluster, let the pure policy engine decide, apply its actions, and
    /// re-arm. The tick re-arms only while threads are unfinished or
    /// transactions are in flight — never on a non-empty event queue, which
    /// would keep the sampler and the manager alive through each other
    /// forever.
    fn manager_tick(&mut self, now: SimTime) {
        if self.manager.is_none() {
            return;
        }
        let tick = self.cfg.manager.tick;
        let obs = self.observe(now);
        let actions = self.manager_decide(&obs).expect("checked above");
        self.manager_apply(now, &actions);
        if self.threads.iter().any(|t| t.finished.is_none()) || !self.pending.is_empty() {
            self.gsched(now + tick, Ev::Manager);
        }
    }

    /// Run the manager's pure policy pass over `obs` and return its actions
    /// (`None` when no manager is configured). Mutates nothing but the
    /// manager's own hysteresis state — the parallel engine calls this
    /// against a merged *view* and only pays for a full shard merge when
    /// the returned actions are non-empty.
    pub(crate) fn manager_decide(&mut self, obs: &[NodeObservation]) -> Option<Vec<ManagerAction>> {
        let mut mgr = self.manager.take()?;
        let actions = mgr.tick(obs);
        self.manager = Some(mgr);
        Some(actions)
    }

    /// Apply a batch of manager actions decided by [`World::manager_decide`].
    /// Requires the fully-merged world (rehoming touches regions, the
    /// directory and every thread's zone table).
    pub(crate) fn manager_apply(&mut self, now: SimTime, actions: &[ManagerAction]) {
        let mgr = self.manager.take().expect("manager configured");
        let tick = self.cfg.manager.tick;
        for &action in actions {
            match action {
                ManagerAction::Shed { target } => {
                    for nc in &mut self.nodes {
                        nc.client.set_shed(target);
                    }
                    self.trace
                        .standalone(Phase::Shed, target.get(), now, now + tick);
                    self.fault_log.record(
                        now,
                        "shed",
                        format!("node {target} load-shed (admission control engaged)"),
                    );
                }
                ManagerAction::Readmit { target } => {
                    for nc in &mut self.nodes {
                        nc.client.clear_shed(target);
                    }
                    self.fault_log.record(
                        now,
                        "readmit",
                        format!("node {target} re-admitted (pressure below hysteresis floor)"),
                    );
                }
                ManagerAction::Rehome { from } => self.manager_rehome(now, from, &mgr),
            }
        }
        self.manager = Some(mgr);
    }

    /// Proactively migrate every zone homed on `from` to a load-aware donor
    /// — the manager's fast path around the retry-budget detection latency.
    /// For a dead or isolated `from` the stale grant is dropped (its data
    /// is already gone); for a live-but-overloaded `from` the zone is
    /// released back properly (live migration). In-flight transactions
    /// aimed at an unreachable `from` are aborted so their threads re-aim
    /// through the recorded remap immediately instead of burning their
    /// retry budgets.
    fn manager_rehome(&mut self, now: SimTime, from: NodeId, mgr: &RecoveryManager) {
        let from_gone =
            self.dead[from.index()] || self.fabric.isolated_nodes()[from.get() as usize];
        let owners: Vec<NodeId> = (1..=self.cfg.topology.num_nodes())
            .map(NodeId::new)
            .filter(|&o| o != from && !self.dead[o.index()])
            .collect();
        for owner in owners {
            let doomed: Vec<Segment> = self.nodes[owner.index()]
                .region
                .segments()
                .iter()
                .filter(|s| s.home == from)
                .copied()
                .collect();
            for seg in doomed {
                let held = self.nodes[owner.index()]
                    .requester
                    .held()
                    .iter()
                    .copied()
                    .find(|r| r.home == from && r.prefixed_base == seg.base);
                let Some(r) = held else { continue };
                let obs = self.observe(now);
                let donor = mgr
                    .choose_recovery_donor(owner, seg.frames, &obs)
                    .filter(|&d| d != from && self.directory.free_frames(d) >= seg.frames)
                    .or_else(|| {
                        self.directory
                            .choose_donor(owner, seg.frames)
                            .filter(|&d| d != from)
                    });
                let Some(donor) = donor else {
                    self.fault_log.record(
                        now,
                        "rehome_failed",
                        format!(
                            "zone {:#x} ({} frames) on node {from} stays put (no donor)",
                            seg.base, seg.frames
                        ),
                    );
                    continue;
                };
                if from_gone {
                    // The grant is stale: drop it without crediting the
                    // directory (the crash/partition already zeroed or
                    // stranded that capacity).
                    self.nodes[owner.index()]
                        .region
                        .shrink(seg.base)
                        .expect("doomed segment exists");
                    let _ = self.nodes[owner.index()].requester.release(r);
                    self.lost_frames[from.index()] += seg.frames;
                } else {
                    self.release_remote(owner, r);
                }
                let new = self.reserve_remote(owner, seg.frames, Some(donor));
                for th in &mut self.threads {
                    if th.spec.node != owner {
                        continue;
                    }
                    for z in &mut th.spec.zones {
                        if z.0 == seg.base {
                            z.0 = new.prefixed_base;
                        }
                    }
                }
                self.evac_remaps[owner.index()].push((seg.base, new.prefixed_base, seg.frames));
                self.evacuations += 1;
                self.trace.standalone(
                    Phase::Migrate,
                    owner.get(),
                    now,
                    now + self.cfg.os.reservation,
                );
                self.fault_log.record(
                    now,
                    "migration",
                    format!(
                        "zone {:#x} ({} frames) migrated from node {from} to node {}",
                        seg.base, seg.frames, new.home
                    ),
                );
            }
        }
        if from_gone {
            // Abort in-flight traffic aimed at the unreachable node so its
            // issuers re-aim through the remaps now (swept in tag order —
            // see `on_suspect`).
            let mut doomed: Vec<(u64, PendingTx)> = self
                .pending
                .iter()
                .filter(|(_, p)| p.msg.dst == from)
                .map(|(&tag, &p)| (tag, p))
                .collect();
            doomed.sort_unstable_by_key(|&(tag, _)| tag);
            for (tag, p) in doomed {
                self.pending.remove(&tag);
                self.nodes[p.msg.src.index()].client.abort(tag);
                self.trace.finish(tag, now, true);
                match p.owner {
                    Owner::Thread(id) => self.thread_abort(now, id, p.msg),
                    Owner::Sync => self.sync_failed = Some((tag, now)),
                    Owner::Posted => {}
                }
            }
        }
    }

    /// Thread `id`'s in-flight access `msg` was aborted because its home
    /// died. If the zone was evacuated, re-aim the access at the new home
    /// (charging the re-reservation — and optionally re-fetch — latency);
    /// otherwise record it as failed.
    fn thread_abort(&mut self, now: SimTime, id: usize, msg: Message) {
        let node = self.threads[id].spec.node;
        let remap = self.evac_remaps[node.index()]
            .iter()
            .copied()
            .find(|&(old, _, frames)| msg.addr >= old && msg.addr < old + frames * 4096);
        if let Some((old, new, _)) = remap {
            let addr = new + (msg.addr - old);
            let (prefix, _) = cohfree_rmc::addr::split(addr);
            let th = &mut self.threads[id];
            th.pending = Some((NodeId::new(prefix), msg.kind, addr));
            th.evacuated_retries += 1;
            let mut delay = self.cfg.os.reservation;
            if self.cfg.recovery.refetch {
                delay += self.cfg.os.fault_overhead;
            }
            self.gsched(now + delay, Ev::ThreadWake { id });
        } else {
            self.thread_access_failed(now, id);
        }
    }

    /// Record one failed access for thread `id` and either finish it or
    /// schedule its next step (global-context twin of the lane executor's
    /// version, for the failure-declaration and crash sweeps).
    fn thread_access_failed(&mut self, now: SimTime, id: usize) {
        let th = &mut self.threads[id];
        th.failed += 1;
        th.inflight_since = None;
        if th.resolved() == th.spec.accesses {
            th.finished = Some(now);
        } else {
            let wake = th.next_issue_at(now);
            self.gsched(wake, Ev::ThreadWake { id });
        }
    }

    /// Apply one scheduled fault (or repair) to the cluster.
    fn apply_fault(&mut self, now: SimTime, fault: FaultEvent) {
        match fault {
            FaultEvent::NodeCrash { node, .. } => {
                if self.dead[node.index()] {
                    return;
                }
                self.dead[node.index()] = true;
                self.fabric.set_node_down(node);
                self.directory.set_free(node, 0);
                self.fault_log
                    .record(now, "node_crash", format!("node {node} crashed"));
                // Threads on the node die with their remaining work failed.
                for i in 0..self.threads.len() {
                    let th = &mut self.threads[i];
                    if th.spec.node == node && th.finished.is_none() {
                        let remaining = th.spec.accesses - th.resolved();
                        th.failed += remaining;
                        th.finished = Some(now);
                        // Keep the trace's tx accounting consistent with the
                        // thread accounting: each bulk-failed access gets a
                        // zero-length failed envelope.
                        for _ in 0..remaining {
                            self.trace.fail_fast(node.get(), now);
                        }
                    }
                }
                // Transactions issued by the dead node vanish with it
                // (swept in tag order — see `on_suspect`).
                let mut gone: Vec<(u64, PendingTx)> = self
                    .pending
                    .iter()
                    .filter(|(_, p)| p.msg.src == node)
                    .map(|(&tag, &p)| (tag, p))
                    .collect();
                gone.sort_unstable_by_key(|&(tag, _)| tag);
                for (tag, p) in gone {
                    self.pending.remove(&tag);
                    self.nodes[node.index()].client.abort(tag);
                    match p.owner {
                        // The thread's bulk-fail above already accounted for
                        // this access; drop the half-built trace silently.
                        Owner::Thread(_) => self.trace.abandon(tag),
                        Owner::Sync => {
                            self.trace.finish(tag, now, true);
                            self.sync_failed = Some((tag, now));
                        }
                        Owner::Posted => self.trace.finish(tag, now, true),
                    }
                }
            }
            FaultEvent::NodeRestart { node, .. } => {
                if !self.dead[node.index()] {
                    return;
                }
                self.dead[node.index()] = false;
                self.fabric.set_node_up(node);
                let ctx = &mut self.nodes[node.index()];
                ctx.frames = FrameAllocator::new(self.cfg.private_bytes, self.cfg.pool_bytes);
                ctx.donor = ResvDonor::new(node);
                self.directory
                    .set_free(node, self.cfg.pool_frames_per_node());
                for peer in &mut self.nodes {
                    peer.client.clear_suspect(node);
                }
                self.suspected[node.index()] = false;
                self.lost_frames[node.index()] = 0;
                self.fault_log.record(
                    now,
                    "node_restart",
                    format!("node {node} rejoined with a cold pool"),
                );
            }
            FaultEvent::LinkDown { a, b, .. } => {
                self.fabric.set_link_down(a, b);
                self.fault_log
                    .record(now, "link_down", format!("link {a} <-> {b} down"));
            }
            FaultEvent::LinkUp { a, b, .. } => {
                self.fabric.set_link_up(a, b);
                self.fault_log
                    .record(now, "link_up", format!("link {a} <-> {b} repaired"));
            }
            FaultEvent::ServerStall { node, duration, .. } => {
                if !self.dead[node.index()] {
                    self.nodes[node.index()].server.stall(now, duration);
                    self.fault_log.record(
                        now,
                        "server_stall",
                        format!("server RMC on node {node} wedged for {duration}"),
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Blocking (single-outstanding) transactions
    // ------------------------------------------------------------------

    /// Run one remote transaction to completion and return the instant the
    /// issuing core observes it. `start` must not precede the engine clock.
    ///
    /// Models the prototype's access path exactly: one outstanding request
    /// per core to the RMC range, NACK/retry included.
    ///
    /// # Panics
    /// Panics if traffic threads are concurrently active (blocking mode is
    /// for single-core processes; drive concurrent load with threads), or if
    /// the home node is declared failed mid-access — fault-tolerant callers
    /// use [`World::try_blocking_transaction`].
    pub fn blocking_transaction(
        &mut self,
        start: SimTime,
        src: NodeId,
        dst: NodeId,
        kind: MsgKind,
        addr: u64,
    ) -> SimTime {
        match self.try_blocking_transaction(start, src, dst, kind, addr) {
            AccessOutcome::Completed { at } => at,
            AccessOutcome::Failed { node, .. } => {
                panic!("blocking transaction failed: home node {node} declared dead")
            }
            AccessOutcome::Shed { node, .. } => {
                panic!("blocking transaction refused: home node {node} is load-shed")
            }
        }
    }

    /// Like [`World::blocking_transaction`], but a home-node failure is
    /// reported as [`AccessOutcome::Failed`] instead of retrying forever:
    /// after the retry budget ([`crate::RecoveryConfig::max_retries`]) is
    /// exhausted the node is declared suspect and the access aborted.
    /// Accesses to an already-suspect node fail immediately.
    ///
    /// # Panics
    /// Panics if traffic threads are concurrently active.
    pub fn try_blocking_transaction(
        &mut self,
        start: SimTime,
        src: NodeId,
        dst: NodeId,
        kind: MsgKind,
        addr: u64,
    ) -> AccessOutcome {
        assert!(
            self.threads.iter().all(|t| t.finished.is_some()),
            "blocking_transaction while traffic threads are active"
        );
        let mut t = start.max(self.queue.now());
        let t_first = t;
        loop {
            if self.nodes[src.index()].client.is_suspect(dst) {
                self.trace.fail_fast(src.get(), t);
                return AccessOutcome::Failed { node: dst, at: t };
            }
            if self.nodes[src.index()].client.is_shed(dst) {
                self.nodes[src.index()].client.note_shed_deferral();
                return AccessOutcome::Shed { node: dst, at: t };
            }
            match self.nodes[src.index()].client.submit(t, dst, kind, addr) {
                Submit::Accepted { msg, inject_at } => {
                    self.pending.insert(
                        msg.tag,
                        PendingTx {
                            owner: Owner::Sync,
                            msg,
                            attempt: 0,
                        },
                    );
                    self.trace_submitted(t_first, t, &msg, inject_at);
                    self.gsched(inject_at, Ev::Hop { msg, at: src });
                    self.arm_timeout(inject_at, msg.tag, 0);
                    break;
                }
                Submit::Nacked { retry_at } => {
                    // Slots may be held by in-flight posted writes; pump the
                    // queue up to the retry instant so they can drain.
                    while self.queue.peek_time().is_some_and(|pt| pt <= retry_at) {
                        let (at, key, ev) = self.queue.pop_entry().expect("peeked");
                        self.handle(at, key, ev);
                    }
                    t = retry_at;
                }
            }
        }
        loop {
            if let Some((_, done)) = self.sync_done.take() {
                return AccessOutcome::Completed { at: done };
            }
            if let Some((_, at)) = self.sync_failed.take() {
                return AccessOutcome::Failed { node: dst, at };
            }
            let (at, key, ev) = self
                .queue
                .pop_entry()
                .expect("blocking transaction lost (queue drained)");
            self.handle(at, key, ev);
        }
    }

    /// Issue a *posted* transaction: the core is released as soon as the
    /// RMC accepts the write (HyperTransport posted semantics); the
    /// transaction still occupies a request slot, the fabric and the home
    /// node until its acknowledgement returns. Returns the instant the core
    /// may continue.
    ///
    /// Pending posted traffic drains whenever the event queue is pumped; a
    /// backend that needs everything settled calls
    /// [`World::drain_background`].
    pub fn posted_transaction(
        &mut self,
        start: SimTime,
        src: NodeId,
        dst: NodeId,
        kind: MsgKind,
        addr: u64,
    ) -> SimTime {
        let mut t = start.max(self.queue.now());
        let t_first = t;
        loop {
            match self.nodes[src.index()].client.submit(t, dst, kind, addr) {
                Submit::Accepted { msg, inject_at } => {
                    self.pending.insert(
                        msg.tag,
                        PendingTx {
                            owner: Owner::Posted,
                            msg,
                            attempt: 0,
                        },
                    );
                    self.trace_submitted(t_first, t, &msg, inject_at);
                    self.gsched(inject_at, Ev::Hop { msg, at: src });
                    self.arm_timeout(inject_at, msg.tag, 0);
                    return inject_at;
                }
                // All slots busy: even a posted write stalls at the
                // interface until a slot frees. Pump the queue so slots can
                // actually free while we wait.
                Submit::Nacked { retry_at } => {
                    while self.queue.peek_time().is_some_and(|pt| pt <= retry_at) {
                        let (at, key, ev) = self.queue.pop_entry().expect("peeked");
                        self.handle(at, key, ev);
                    }
                    t = retry_at;
                }
            }
        }
    }

    /// Run the event queue dry (no sync waiter may be outstanding): settles
    /// all posted traffic. Returns the instant the last event fired.
    pub fn drain_background(&mut self) -> SimTime {
        assert!(
            self.sync_done.is_none(),
            "drain during a blocking transaction"
        );
        while let Some((at, key, ev)) = self.queue.pop_entry() {
            self.handle(at, key, ev);
        }
        self.queue.now()
    }

    /// Timed *local* access on `node` (used by backends for non-remote
    /// physical addresses).
    pub fn local_access(&mut self, now: SimTime, node: NodeId, addr: u64, bytes: u32) -> SimTime {
        self.nodes[node.index()].mem.access(now, addr, bytes)
    }

    /// Allocate one frame from `node`'s private region (local OS memory).
    pub fn alloc_private_frame(&mut self, node: NodeId) -> Option<u64> {
        self.nodes[node.index()].frames.alloc_private()
    }

    /// Unloaded estimate of a remote read round trip from `src` to `dst`
    /// fetching `bytes` (used by the prefetcher's readiness model and the
    /// analytic equations; ignores queueing).
    pub fn estimate_remote_read_latency(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
    ) -> SimDuration {
        let hops = self.cfg.topology.hops(src, dst);
        let req = MsgKind::ReadReq { bytes };
        let resp = MsgKind::ReadResp { bytes };
        self.cfg.rmc.proc_time * 2
            + self.cfg.rmc.server_proc_time * 2
            + self.fabric.unloaded_latency(req.wire_bytes(), hops)
            + self.fabric.unloaded_latency(resp.wire_bytes(), hops)
            + self.nodes[dst.index()].mem.unloaded_latency(bytes)
    }

    // ------------------------------------------------------------------
    // Traffic threads (Figs. 7-8)
    // ------------------------------------------------------------------

    /// Spawn a traffic thread; it begins issuing at `start`.
    pub fn spawn_thread(&mut self, spec: ThreadSpec, start: SimTime) -> usize {
        self.spawn(spec, start, false)
    }

    /// Spawn a thread whose reads go through the coherent-DSM baseline
    /// (every miss snoops the domain set via [`World::set_coherent_domain`]).
    /// Reads only; the study isolates the protocol's cost, not write races.
    pub fn spawn_coherent_thread(&mut self, spec: ThreadSpec, start: SimTime) -> usize {
        assert!(
            !self.coherent_domain.is_empty(),
            "call set_coherent_domain() before spawning coherent threads"
        );
        let id = self.spawn(spec, start, false);
        self.threads[id].coherent = true;
        id
    }

    /// Spawn a thread that streams its zones *sequentially* by line —
    /// the access pattern of a read-only parallel phase (Section IV-B:
    /// after a flush, several threads may scan shared data with no
    /// coherency traffic).
    pub fn spawn_sequential_thread(&mut self, spec: ThreadSpec, start: SimTime) -> usize {
        self.spawn(spec, start, true)
    }

    fn spawn(&mut self, spec: ThreadSpec, start: SimTime, sequential: bool) -> usize {
        assert!(
            !spec.zones.is_empty(),
            "thread needs at least one target zone"
        );
        assert!(spec.accesses > 0, "thread needs at least one access");
        let id = self.threads.len();
        let rng = Rng::new(spec.seed);
        self.threads.push(Thread {
            rng,
            spec,
            sequential,
            coherent: false,
            issued: 0,
            completed: 0,
            failed: 0,
            shed: 0,
            evacuated_retries: 0,
            pending: None,
            pending_since: None,
            arrivals: Vec::new(),
            zipf: None,
            inflight_since: None,
            latency: None,
            started: start,
            finished: None,
            nack_retries: 0,
        });
        self.gsched(start, Ev::ThreadWake { id });
        id
    }

    /// Spawn an **open-loop serving thread**: request `k` enters the system
    /// at `arrivals[k]` regardless of when earlier requests finish (the
    /// lane serves them in order, so a backed-up lane queues arrivals and
    /// the queueing delay lands in the request's stall phase and end-to-end
    /// latency). Admission-control shedding *drops* the request — the third
    /// terminal outcome, counted by [`World::thread_shed`] — instead of
    /// parking it the way closed-loop threads do, because an open-loop
    /// client cannot hold back its arrival stream. Per-request end-to-end
    /// latency (arrival to completion) is recorded into the deterministic
    /// histogram returned by [`World::thread_latency`].
    ///
    /// `arrivals` must be sorted and hold exactly `spec.accesses` instants;
    /// `spec.think` models per-request service preparation on the core
    /// (applied between a resolution and the next offer).
    ///
    /// # Panics
    /// Panics if `arrivals` is unsorted or its length disagrees with
    /// `spec.accesses`.
    pub fn spawn_serving_thread(
        &mut self,
        spec: ThreadSpec,
        arrivals: Vec<SimTime>,
        pattern: AccessPattern,
    ) -> usize {
        assert_eq!(
            arrivals.len() as u64,
            spec.accesses,
            "serving thread needs one arrival per access"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "serving arrivals must be sorted"
        );
        let start = arrivals[0];
        let id = self.spawn(spec, start, pattern == AccessPattern::Sequential);
        let th = &mut self.threads[id];
        if let AccessPattern::Zipf(s) = pattern {
            let slots_of = |len: u64| (len / th.spec.bytes as u64).max(1);
            let total: u64 = th.spec.zones.iter().map(|&(_, l)| slots_of(l)).sum();
            th.zipf = Some(Zipf::new(total as usize, s));
        }
        th.arrivals = arrivals;
        th.latency = Some(Box::new(LatencyHistogram::new()));
        id
    }

    /// Run the event loop until every event has drained (all threads done),
    /// on the sequential engine or — after [`World::set_parallel`] with
    /// more than one worker — the windowed parallel engine. Both produce
    /// byte-identical results.
    ///
    /// # Panics
    /// Panics if the loop exceeds a safety limit proportional to the total
    /// work (indicates a livelock bug).
    pub fn run(&mut self) {
        let total_accesses: u64 = self.threads.iter().map(|t| t.spec.accesses).sum();
        // Generous bound: hops + retries per access.
        let limit = 1_000 + total_accesses.saturating_mul(2_000);
        if self.parallel > 1 {
            crate::par::run_parallel(self, limit);
        } else {
            // Engine self-profiling (out-of-band, cohfree_sim::metrics):
            // sample queue depth and events/sec every PROF_STRIDE events.
            // The tier check is one cached bool, so the disabled path adds
            // a single predictable branch per event.
            const PROF_STRIDE: u64 = 1 << 16;
            let prof = cohfree_sim::metrics::enabled();
            let prof_start = self.queue.processed();
            let mut prof_next = prof_start + PROF_STRIDE;
            let mut prof_last = std::time::Instant::now();
            while let Some((at, key, ev)) = self.queue.pop_entry() {
                self.handle(at, key, ev);
                assert!(
                    self.queue.processed() <= limit,
                    "event budget exceeded: livelock at {at}"
                );
                if prof && self.queue.processed() >= prof_next {
                    let processed = self.queue.processed();
                    let dt = prof_last.elapsed().as_secs_f64();
                    prof_last = std::time::Instant::now();
                    if dt > 0.0 {
                        cohfree_sim::metrics::series_push(
                            "cohfree_seq_events_per_sec",
                            processed,
                            PROF_STRIDE as f64 / dt,
                        );
                    }
                    cohfree_sim::metrics::series_push(
                        "cohfree_seq_queue_depth",
                        processed,
                        self.queue.len() as f64,
                    );
                    prof_next = processed + PROF_STRIDE;
                }
            }
            if prof {
                cohfree_sim::metrics::counter_add("cohfree_seq_runs_total", 1);
                cohfree_sim::metrics::counter_add(
                    "cohfree_seq_events_total",
                    self.queue.processed() - prof_start,
                );
            }
        }
        // Close the time series with a drain-time sample so the tail of the
        // run (after the last whole interval) is represented too.
        let now = self.queue.now();
        let needs_final = self
            .sampler
            .as_ref()
            .is_some_and(|s| s.samples.last().map(|x| x.at) != Some(now));
        if needs_final {
            self.take_sample(now);
        }
    }

    /// Wall-clock (simulated) duration of thread `id`, once [`World::run`]
    /// has drained.
    ///
    /// # Panics
    /// Panics if the thread has not finished.
    pub fn thread_elapsed(&self, id: usize) -> SimDuration {
        let th = &self.threads[id];
        th.finished
            .expect("thread not finished; call run() first")
            .since(th.started)
    }

    /// NACK retries suffered by thread `id`.
    pub fn thread_nacks(&self, id: usize) -> u64 {
        self.threads[id].nack_retries
    }

    /// Number of traffic threads spawned so far (ids are `0..this`).
    pub fn threads_spawned(&self) -> usize {
        self.threads.len()
    }

    /// The access budget thread `id` was spawned with.
    pub fn thread_accesses(&self, id: usize) -> u64 {
        self.threads[id].spec.accesses
    }

    /// Accesses of thread `id` that completed.
    pub fn thread_completed(&self, id: usize) -> u64 {
        self.threads[id].completed
    }

    /// Accesses of thread `id` abandoned because their home node (or the
    /// thread's own node) was declared failed.
    pub fn thread_failed(&self, id: usize) -> u64 {
        self.threads[id].failed
    }

    /// Open-loop requests of thread `id` dropped by admission control
    /// (always 0 for closed-loop threads, which defer instead). Together
    /// with completed and failed this conserves the request count:
    /// `completed + failed + shed == accesses` once the run drains.
    pub fn thread_shed(&self, id: usize) -> u64 {
        self.threads[id].shed
    }

    /// Per-request end-to-end latency histogram (arrival to completion) of
    /// serving thread `id`; `None` for closed-loop threads. Deterministic —
    /// byte-identical across engines and partition counts.
    pub fn thread_latency(&self, id: usize) -> Option<&LatencyHistogram> {
        self.threads[id].latency.as_deref()
    }

    /// Accesses of thread `id` re-issued against a new home after an
    /// evacuation.
    pub fn thread_evacuated_retries(&self, id: usize) -> u64 {
        self.threads[id].evacuated_retries
    }

    /// Zones successfully re-homed after donor failures.
    pub fn evacuations(&self) -> u64 {
        self.evacuations
    }

    /// The chronological fault/detection/recovery log.
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// The per-transaction span tracer (inert unless
    /// [`crate::TraceConfig`] enables it).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Open a trace for an accepted submission and attribute its stall,
    /// client-queue and issue phases. `first_offer` is when the core first
    /// wanted the access out (may precede `accepted_at` by NACK rounds).
    fn trace_submitted(
        &mut self,
        first_offer: SimTime,
        accepted_at: SimTime,
        msg: &Message,
        inject_at: SimTime,
    ) {
        if !self.trace.enabled() {
            return;
        }
        let node = msg.src.get();
        let tag = msg.tag;
        self.trace.begin(tag, node, first_offer);
        self.trace
            .push(tag, Phase::Stall, node, first_offer, accepted_at);
        let svc_start = inject_at - self.cfg.rmc.proc_time;
        self.trace
            .push(tag, Phase::ClientQueue, node, accepted_at, svc_start);
        self.trace.push(
            tag,
            Phase::Issue,
            node,
            svc_start.max(accepted_at),
            inject_at,
        );
    }

    /// True while `node` is crashed.
    pub fn node_is_dead(&self, node: NodeId) -> bool {
        self.dead[node.index()]
    }

    /// True once any client's failure detector declared `node` failed and it
    /// has not restarted since. Suspicion zeroes the node's directory
    /// capacity, so the chaos frame-conservation oracle exempts suspected
    /// nodes from its equality check.
    pub fn node_is_suspected(&self, node: NodeId) -> bool {
        self.suspected[node.index()]
    }

    /// Pool frames of `node` stranded by grants dropped while it was
    /// unreachable (debited from the directory, never credited back).
    pub fn lost_frames(&self, node: NodeId) -> u64 {
        self.lost_frames[node.index()]
    }

    /// Transactions currently in flight (accepted by a client RMC, not yet
    /// completed or aborted). Zero once [`World::run`] has drained — the
    /// chaos oracles assert exactly that.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The online recovery manager, when [`crate::ManagerConfig::enabled`].
    pub fn manager(&self) -> Option<&RecoveryManager> {
        self.manager.as_ref()
    }

    /// Capture a cluster-wide metrics snapshot at the current engine clock.
    ///
    /// Document schema:
    ///
    /// ```text
    /// { "at_ns": <clock>,
    ///   "nodes": [ { "node": 1,
    ///                "rmc_client": {...}, "rmc_server": {...},
    ///                "dram": {...} }, ... ],
    ///   "fabric": { "delivered": .., "dropped": .., "links": [...] },
    ///   "directory": { "total_free_frames": .., ... },
    ///   "evacuations": ..,
    ///   "faults": [ { "t_ns": .., "kind": .., "detail": .. }, ... ],
    ///   "manager": { "ticks": .., "sheds": .., ... },       // if enabled
    ///   "samples": { "interval_ns": .., "series": [...] }   // if enabled
    /// }
    /// ```
    ///
    /// Utilizations are computed against the current clock as the horizon.
    pub fn snapshot(&self) -> ClusterSnapshot {
        let now = self.queue.now();
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Json::obj([
                    ("node", Json::from((i + 1) as u64)),
                    ("rmc_client", n.client.snapshot(now)),
                    ("rmc_server", n.server.snapshot(now)),
                    ("dram", n.mem.snapshot(now)),
                ])
            })
            .collect::<Vec<_>>();
        let mut fields = vec![
            ("at_ns".to_string(), Json::from(now.as_ns())),
            ("nodes".to_string(), Json::Arr(nodes)),
            ("fabric".to_string(), self.fabric.snapshot(now)),
            ("directory".to_string(), self.directory.snapshot()),
            ("evacuations".to_string(), Json::from(self.evacuations)),
            ("faults".to_string(), self.fault_log.snapshot()),
        ];
        if let Some(mgr) = &self.manager {
            fields.push(("manager".to_string(), mgr.snapshot()));
        }
        if self.trace.enabled() {
            fields.push(("trace".to_string(), self.trace.snapshot()));
        }
        if let Some(sampler) = &self.sampler {
            let series = sampler
                .samples
                .iter()
                .map(|s| {
                    Json::obj([
                        ("t_ns", Json::from(s.at.as_ns())),
                        ("client_in_flight", Json::from(s.client_in_flight.clone())),
                        ("server_backlog_ns", Json::from(s.server_backlog_ns.clone())),
                        ("mem_backlog_ns", Json::from(s.mem_backlog_ns.clone())),
                        ("max_link_backlog_ns", Json::from(s.max_link_backlog_ns)),
                        ("events_queued", Json::from(s.events_queued)),
                        ("completions", Json::from(s.completions.clone())),
                    ])
                })
                .collect::<Vec<_>>();
            fields.push((
                "samples".to_string(),
                Json::obj([
                    ("interval_ns", Json::from(sampler.interval.as_ns())),
                    ("series", Json::Arr(series)),
                ]),
            ));
        }
        ClusterSnapshot {
            at: now,
            doc: Json::Obj(fields),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn world() -> World {
        World::new(ClusterConfig::prototype())
    }

    #[test]
    fn reservation_grows_region_and_debits_directory() {
        let mut w = world();
        let before = w.directory().free_frames(n(2));
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        assert_eq!(resv.home, n(2));
        assert_eq!(w.directory().free_frames(n(2)), before - 1024);
        assert_eq!(w.region(n(1)).borrowed_bytes(), 1024 * 4096);
        // The zone base carries node 2's prefix above the pool base.
        assert_eq!(resv.prefixed_base >> 34, 2);
        w.release_remote(n(1), resv);
        assert_eq!(w.directory().free_frames(n(2)), before);
        assert_eq!(w.region(n(1)).borrowed_bytes(), 0);
    }

    #[test]
    fn directory_policy_used_when_no_explicit_donor() {
        let mut w = world();
        // Nearest policy from corner node 1 picks node 2.
        let resv = w.reserve_remote(n(1), 16, None);
        assert_eq!(resv.home, n(2));
    }

    #[test]
    fn blocking_read_round_trip_makes_sense() {
        let mut w = world();
        let resv = w.reserve_remote(n(1), 16, Some(n(2)));
        let done = w.blocking_transaction(
            SimTime::ZERO,
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        let lat = done.since(SimTime::ZERO);
        // Must cover at least: 4 RMC passes + 2 fabric traversals + DRAM.
        let floor = w.config().rmc.proc_time * 2 + w.config().rmc.server_proc_time * 2;
        assert!(lat > floor, "latency {lat} below component floor {floor}");
        assert!(lat < SimDuration::us(20), "latency {lat} absurdly high");
        assert_eq!(w.client(n(1)).completions(), 1);
        assert_eq!(w.server(n(2)).requests(), 1);
        assert_eq!(w.memory(n(2)).accesses(), 1);
    }

    #[test]
    fn blocking_latency_grows_with_hops() {
        // Fig. 6's core property, now through the full stack.
        let mut prev = SimDuration::ZERO;
        for dst in [2u16, 3, 4, 8, 12, 16] {
            let mut w = world();
            let resv = w.reserve_remote(n(1), 16, Some(n(dst)));
            let done = w.blocking_transaction(
                SimTime::ZERO,
                n(1),
                n(dst),
                MsgKind::ReadReq { bytes: 64 },
                resv.prefixed_base,
            );
            let lat = done.since(SimTime::ZERO);
            assert!(lat > prev, "dst {dst}: {lat} !> {prev}");
            prev = lat;
        }
    }

    #[test]
    fn consecutive_blocking_transactions_are_serial() {
        let mut w = world();
        let resv = w.reserve_remote(n(1), 16, Some(n(2)));
        let t1 = w.blocking_transaction(
            SimTime::ZERO,
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        let t2 = w.blocking_transaction(
            t1,
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base + 64,
        );
        assert!(
            t2.since(t1) >= t1.since(SimTime::ZERO) / 2,
            "second txn unreasonably fast"
        );
        assert_eq!(w.client(n(1)).completions(), 2);
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut w = world();
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 100,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 7,
            },
            SimTime::ZERO,
        );
        w.run();
        let elapsed = w.thread_elapsed(id);
        assert!(
            elapsed > SimDuration::us(50),
            "100 remote reads in {elapsed}?"
        );
        assert_eq!(w.client(n(1)).completions(), 100);
        assert_eq!(w.server(n(2)).requests(), 100);
    }

    #[test]
    fn two_threads_roughly_halve_time() {
        // Fig. 7 left group, 1 -> 2 threads: "the required time ... becomes
        // half the time".
        let total = 400u64;
        let elapsed_for = |threads: u64| {
            let mut w = world();
            let resv = w.reserve_remote(n(1), 2048, Some(n(2)));
            let ids: Vec<usize> = (0..threads)
                .map(|k| {
                    w.spawn_thread(
                        ThreadSpec {
                            node: n(1),
                            zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                            accesses: total / threads,
                            bytes: 64,
                            write_fraction: 0.0,
                            think: SimDuration::ns(5),
                            seed: 100 + k,
                        },
                        SimTime::ZERO,
                    )
                })
                .collect();
            w.run();
            ids.iter().map(|&i| w.thread_elapsed(i)).max().unwrap()
        };
        let t1 = elapsed_for(1);
        let t2 = elapsed_for(2);
        let ratio = t2.as_ns_f64() / t1.as_ns_f64();
        assert!(
            (0.45..0.70).contains(&ratio),
            "2-thread ratio {ratio} not near half (t1={t1}, t2={t2})"
        );
    }

    #[test]
    fn four_threads_hit_the_client_rmc_wall() {
        // Fig. 7: "the time does not get reduced in the expected proportion"
        // for four threads.
        let total = 800u64;
        let elapsed_for = |threads: u64| {
            let mut w = world();
            let resv = w.reserve_remote(n(1), 2048, Some(n(2)));
            let ids: Vec<usize> = (0..threads)
                .map(|k| {
                    w.spawn_thread(
                        ThreadSpec {
                            node: n(1),
                            zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                            accesses: total / threads,
                            bytes: 64,
                            write_fraction: 0.0,
                            think: SimDuration::ns(5),
                            seed: 200 + k,
                        },
                        SimTime::ZERO,
                    )
                })
                .collect();
            w.run();
            ids.iter().map(|&i| w.thread_elapsed(i)).max().unwrap()
        };
        let t2 = elapsed_for(2);
        let t4 = elapsed_for(4);
        let ratio = t4.as_ns_f64() / t2.as_ns_f64();
        assert!(
            ratio > 0.7,
            "4 threads should NOT halve again (t4/t2 = {ratio})"
        );
    }

    #[test]
    fn writes_are_acknowledged() {
        let mut w = world();
        let resv = w.reserve_remote(n(1), 16, Some(n(2)));
        let done = w.blocking_transaction(
            SimTime::ZERO,
            n(1),
            n(2),
            MsgKind::WriteReq { bytes: 64 },
            resv.prefixed_base,
        );
        assert!(done > SimTime::ZERO);
        assert_eq!(w.client(n(1)).writes(), 1);
    }

    #[test]
    #[should_panic(expected = "no donor")]
    fn impossible_reservation_panics() {
        let mut w = world();
        w.reserve_remote(n(1), u64::MAX / 4096, None);
    }

    #[test]
    fn scales_to_a_64_node_cluster() {
        // The architecture is not tied to the 4x4 prototype: an 8x8 mesh
        // builds, reserves across the diagonal, and transacts correctly.
        let mut cfg = ClusterConfig::prototype();
        cfg.topology = cohfree_fabric::Topology::Mesh2D {
            width: 8,
            height: 8,
        };
        let mut w = World::new(cfg);
        let client = n(1);
        let server = n(64); // opposite corner: 14 hops
        assert_eq!(cfg.topology.hops(client, server), 14);
        let resv = w.reserve_remote(client, 1024, Some(server));
        assert_eq!(resv.prefixed_base >> 34, 64);
        let near = w.reserve_remote(client, 1024, Some(n(2)));
        let t_far = w.blocking_transaction(
            SimTime::ZERO,
            client,
            server,
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        let t0 = t_far;
        let t_near = w.blocking_transaction(
            t0,
            client,
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            near.prefixed_base,
        );
        assert!(
            t_far.since(SimTime::ZERO) > t_near.since(t0) * 2,
            "14 hops must cost far more than 1"
        );
        assert_eq!(
            w.directory().total_free(),
            64 * cfg.pool_frames_per_node() - 2048
        );
    }

    fn coherent_run(domain_nodes: &[u16], accesses: u64) -> (SimDuration, u64) {
        let mut w = world();
        let domain: Vec<NodeId> = domain_nodes.iter().map(|&i| n(i)).collect();
        w.set_coherent_domain(domain).unwrap();
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let id = w.spawn_coherent_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 99,
            },
            SimTime::ZERO,
        );
        w.run();
        let probes: u64 = (1..=16).map(|i| w.server(n(i)).probes()).sum();
        (w.thread_elapsed(id), probes)
    }

    #[test]
    fn coherent_baseline_completes_and_probes_every_member() {
        // Domain {1, 2, 5, 6}: home 2 must probe 5 and 6 per miss (not the
        // requester 1, not itself).
        let (elapsed, probes) = coherent_run(&[1, 2, 5, 6], 100);
        assert_eq!(probes, 200, "2 members probed per access");
        assert!(elapsed > SimDuration::ZERO);
    }

    #[test]
    fn coherency_overhead_grows_with_domain_size() {
        // THE paper's thesis, quantified: the same single-node application
        // pays more per access as the coherency domain grows — while the
        // non-coherent architecture is flat by construction.
        let (d2, _) = coherent_run(&[1, 2], 200);
        let (d8, _) = coherent_run(&[1, 2, 3, 4, 5, 6, 7, 8], 200);
        let (d16, _) = coherent_run(&(1..=16).collect::<Vec<u16>>(), 200);
        assert!(
            d8.as_ns_f64() > d2.as_ns_f64() * 1.1,
            "8-node domain {d8} must cost more than 2-node {d2}"
        );
        assert!(
            d16.as_ns_f64() > d8.as_ns_f64() * 1.05,
            "16-node domain {d16} must cost more than 8-node {d8}"
        );
        // And the minimal coherent domain is itself no cheaper than the
        // paper's non-coherent access (extra protocol state, same path).
        let mut w = world();
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 200,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 99,
            },
            SimTime::ZERO,
        );
        w.run();
        let noncoh = w.thread_elapsed(id);
        assert!(
            d2.as_ns_f64() >= noncoh.as_ns_f64() * 0.99,
            "coh {d2} vs noncoh {noncoh}"
        );
    }

    #[test]
    #[should_panic(expected = "set_coherent_domain")]
    fn coherent_thread_requires_a_domain() {
        let mut w = world();
        let resv = w.reserve_remote(n(1), 64, Some(n(2)));
        w.spawn_coherent_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 1,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 1,
            },
            SimTime::ZERO,
        );
    }

    fn lossy_world(loss_rate: f64) -> World {
        let mut cfg = ClusterConfig::prototype();
        cfg.fabric.loss_rate = loss_rate;
        World::new(cfg)
    }

    #[test]
    fn lossy_fabric_still_completes_every_transaction() {
        let mut w = lossy_world(0.05); // brutal: 5% per link traversal
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 300,
                bytes: 64,
                write_fraction: 0.3,
                think: SimDuration::ns(5),
                seed: 5150,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.client(n(1)).completions(), 300, "all must complete");
        assert!(w.fabric().dropped() > 0, "losses must actually occur at 5%");
        assert!(w.client(n(1)).retransmissions() > 0, "recovery must engage");
        assert!(w.thread_elapsed(id) > SimDuration::ZERO);
    }

    #[test]
    fn loss_increases_mean_latency() {
        let run = |loss: f64| {
            let mut w = lossy_world(loss);
            let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
            let id = w.spawn_thread(
                ThreadSpec {
                    node: n(1),
                    zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                    accesses: 400,
                    bytes: 64,
                    write_fraction: 0.0,
                    think: SimDuration::ns(5),
                    seed: 6,
                },
                SimTime::ZERO,
            );
            w.run();
            w.thread_elapsed(id)
        };
        let clean = run(0.0);
        let lossy = run(0.02);
        assert!(
            lossy.as_ns_f64() > clean.as_ns_f64() * 1.05,
            "2% loss must cost time: {clean} vs {lossy}"
        );
    }

    #[test]
    fn blocking_transactions_survive_loss() {
        let mut w = lossy_world(0.1);
        let resv = w.reserve_remote(n(1), 64, Some(n(2)));
        let mut t = SimTime::ZERO;
        for i in 0..50 {
            t = w.blocking_transaction(
                t,
                n(1),
                n(2),
                MsgKind::ReadReq { bytes: 64 },
                resv.prefixed_base + i * 64,
            );
        }
        assert_eq!(w.client(n(1)).completions(), 50);
    }

    #[test]
    fn sequential_walk_respects_per_zone_sizes() {
        // Regression: the walk position used to be split by the FIRST zone's
        // slot count for every zone, so different-sized zones were visited
        // with the wrong share of accesses. With one pass over the combined
        // slot space, each home node must serve exactly its zone's slots.
        let mut w = world();
        let small = w.reserve_remote(n(1), 1, Some(n(2))); // 1 frame = 64 slots
        let large = w.reserve_remote(n(1), 2, Some(n(3))); // 2 frames = 128 slots
        let zones = vec![
            (small.prefixed_base, small.frames * 4096),
            (large.prefixed_base, large.frames * 4096),
        ];
        let total_slots = 64 + 128;
        w.spawn_sequential_thread(
            ThreadSpec {
                node: n(1),
                zones,
                accesses: total_slots,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 11,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.server(n(2)).requests(), 64, "small zone walked once");
        assert_eq!(w.server(n(3)).requests(), 128, "large zone walked once");
    }

    #[test]
    fn sequential_walk_wraps_across_zones() {
        // Two full passes over both zones: every slot visited exactly twice.
        let mut w = world();
        let a = w.reserve_remote(n(1), 1, Some(n(2)));
        let b = w.reserve_remote(n(1), 3, Some(n(5)));
        let zones = vec![
            (a.prefixed_base, a.frames * 4096),
            (b.prefixed_base, b.frames * 4096),
        ];
        w.spawn_sequential_thread(
            ThreadSpec {
                node: n(1),
                zones,
                accesses: 2 * (64 + 192),
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 12,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.server(n(2)).requests(), 128);
        assert_eq!(w.server(n(5)).requests(), 384);
    }

    #[test]
    fn sampling_records_time_series_and_run_still_drains() {
        let mut w = world();
        w.enable_sampling(SimDuration::ns(500));
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 200,
                bytes: 64,
                write_fraction: 0.2,
                think: SimDuration::ns(5),
                seed: 13,
            },
            SimTime::ZERO,
        );
        w.run();
        let samples = w.samples();
        assert!(samples.len() >= 10, "only {} samples", samples.len());
        // Time series is strictly increasing at the configured cadence.
        for pair in samples.windows(2) {
            assert_eq!(pair[1].at.since(pair[0].at), SimDuration::ns(500));
        }
        // The probe saw in-flight work at some point.
        assert!(
            samples.iter().any(|s| s.client_in_flight[0] > 0),
            "sampler never observed in-flight transactions"
        );
        assert_eq!(w.client(n(1)).completions(), 200, "run() drained normally");
    }

    #[test]
    fn snapshot_document_reflects_the_cluster() {
        let mut w = world();
        w.enable_sampling(SimDuration::ns(500));
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 150,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 14,
            },
            SimTime::ZERO,
        );
        w.run();
        let snap = w.snapshot();
        assert_eq!(snap.at, w.now());
        // Round-trip through the serialized form, then inspect.
        let doc = Json::parse(&snap.doc.to_string()).expect("snapshot serializes to valid JSON");
        let nodes = doc.get("nodes").unwrap().as_array().unwrap();
        assert_eq!(nodes.len(), 16);
        let n1 = &nodes[0];
        assert_eq!(n1.get("node").unwrap().as_u64(), Some(1));
        let client = n1.get("rmc_client").unwrap();
        assert_eq!(client.get("completions").unwrap().as_u64(), Some(150));
        assert!(
            client
                .get("engine")
                .unwrap()
                .get("utilization")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        let n2 = &nodes[1];
        assert_eq!(
            n2.get("rmc_server")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_u64(),
            Some(150)
        );
        assert!(
            n2.get("dram")
                .unwrap()
                .get("accesses")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0,
            "home node DRAM must have served accesses"
        );
        let fabric = doc.get("fabric").unwrap();
        assert_eq!(fabric.get("delivered").unwrap().as_u64(), Some(300));
        assert!(!fabric.get("links").unwrap().as_array().unwrap().is_empty());
        let series = doc
            .get("samples")
            .unwrap()
            .get("series")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(series.len() >= 10);
        assert!(series[0].get("t_ns").unwrap().as_u64().unwrap() > 0);
        let dir = doc.get("directory").unwrap();
        assert!(dir.get("total_free_frames").unwrap().as_u64().unwrap() > 0);
    }

    // ------------------------------------------------------------------
    // Fault injection, detection, and recovery
    // ------------------------------------------------------------------

    use crate::fault::FaultPlan;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::us(us)
    }

    #[test]
    fn stale_timeout_after_retransmission_is_ignored() {
        // Regression for the retransmit `attempt`-mismatch race: a timer
        // armed for attempt k must be a no-op once attempt k+1 is in flight,
        // and any timer must be a no-op after the transaction is aborted.
        let mut w = lossy_world(0.5);
        let resv = w.reserve_remote(n(1), 16, Some(n(2)));
        let t0 = w.posted_transaction(
            SimTime::ZERO,
            n(1),
            n(2),
            MsgKind::WriteReq { bytes: 64 },
            resv.prefixed_base,
        );
        let (&tag, p) = w.pending.iter().next().expect("one pending tx");
        assert_eq!(p.attempt, 0);
        // The attempt-0 timer fires: one retransmission, attempt becomes 1.
        w.fire_timeout(t0 + SimDuration::us(30), tag, 0);
        assert_eq!(w.client(n(1)).retransmissions(), 1);
        assert_eq!(w.pending[&tag].attempt, 1);
        // The same stale timer firing again must not retransmit: the
        // transaction now belongs to the attempt-1 timer.
        w.fire_timeout(t0 + SimDuration::us(60), tag, 0);
        assert_eq!(w.client(n(1)).retransmissions(), 1);
        assert_eq!(w.pending[&tag].attempt, 1);
        // After an abort even the current-attempt timer is a no-op.
        w.pending.remove(&tag);
        assert!(w.nodes[n(1).index()].client.abort(tag));
        w.fire_timeout(t0 + SimDuration::us(120), tag, 1);
        assert_eq!(w.client(n(1)).retransmissions(), 1);
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_access_and_marks_suspect() {
        let mut cfg = ClusterConfig::prototype();
        cfg.fabric.loss_rate = 1.0; // nothing ever gets through
        cfg.recovery.max_retries = 4;
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 16, Some(n(2)));
        let out = w.try_blocking_transaction(
            SimTime::ZERO,
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        match out {
            AccessOutcome::Failed { node, at } => {
                assert_eq!(node, n(2));
                assert!(at > SimTime::ZERO, "detection takes time");
            }
            AccessOutcome::Completed { .. } | AccessOutcome::Shed { .. } => {
                panic!("must fail under total loss")
            }
        }
        assert_eq!(w.client(n(1)).retransmissions(), 4, "the full budget");
        assert_eq!(w.client(n(1)).aborted(), 1);
        assert!(w.client(n(1)).is_suspect(n(2)));
        assert_eq!(w.fault_log().count("suspect"), 1);
        // Accesses to an already-suspect home fail immediately, without
        // burning another budget.
        let out2 = w.try_blocking_transaction(
            w.now(),
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        assert!(matches!(out2, AccessOutcome::Failed { .. }));
        assert_eq!(w.client(n(1)).retransmissions(), 4);
    }

    #[test]
    fn saturated_backoff_with_large_retry_budget_terminates() {
        // Regression: the retry backoff was computed as `timeout << attempt`,
        // which wraps past attempt 63 — the delay collapsed to (near) zero
        // and the engine hot-spun through timers at one instant. The delay
        // now clamps the shift and saturates the multiply: with a retry
        // budget past 64, every retry is still scheduled strictly later,
        // the timer instants stay finite, and the run terminates with the
        // access failed and the home suspect.
        let mut cfg = ClusterConfig::prototype();
        cfg.fabric.loss_rate = 1.0; // nothing ever gets through
        cfg.recovery.max_retries = 80;
        cfg.recovery.backoff_cap = 80;
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 16, Some(n(2)));
        let out = w.try_blocking_transaction(
            SimTime::ZERO,
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        match out {
            AccessOutcome::Failed { node, at } => {
                assert_eq!(node, n(2));
                assert!(at < SimTime::MAX, "timer instants must stay finite");
            }
            AccessOutcome::Completed { .. } | AccessOutcome::Shed { .. } => {
                panic!("must fail under total loss")
            }
        }
        assert_eq!(w.client(n(1)).retransmissions(), 80, "the full budget");
        assert!(w.client(n(1)).is_suspect(n(2)));
    }

    #[test]
    fn link_outage_reroutes_traffic_until_repair() {
        let mut cfg = ClusterConfig::prototype();
        cfg.faults = FaultPlan::new()
            .with(FaultEvent::LinkDown {
                at: t(5),
                a: n(1),
                b: n(2),
            })
            .with(FaultEvent::LinkUp {
                at: t(200),
                a: n(1),
                b: n(2),
            });
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 300,
                bytes: 64,
                write_fraction: 0.2,
                think: SimDuration::ns(5),
                seed: 31,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.thread_completed(id), 300, "the mesh routes around it");
        assert_eq!(w.thread_failed(id), 0);
        assert!(w.fabric().rerouted() > 0, "traffic must have detoured");
        assert_eq!(w.fault_log().count("link_down"), 1);
        assert_eq!(w.fault_log().count("link_up"), 1);
    }

    #[test]
    fn donor_crash_evacuates_the_zone_and_accesses_follow_it() {
        let mut cfg = ClusterConfig::prototype();
        cfg.recovery.max_retries = 4; // quick detection
        cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
            at: t(50),
            node: n(2),
        });
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 300,
                bytes: 64,
                write_fraction: 0.2,
                think: SimDuration::ns(5),
                seed: 42,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(
            w.thread_completed(id) + w.thread_failed(id),
            300,
            "every access accounted for"
        );
        assert_eq!(w.evacuations(), 1, "the zone must have been re-homed");
        assert!(
            w.thread_evacuated_retries(id) >= 1,
            "the interrupted access must follow the zone"
        );
        assert_eq!(w.thread_failed(id), 0, "a spare donor exists; nothing lost");
        assert_eq!(w.fault_log().count("suspect"), 1);
        assert_eq!(w.fault_log().count("evacuation"), 1);
        assert!(w.node_is_dead(n(2)));
        // The replacement home actually served the remaining traffic.
        let served_elsewhere: u64 = (3..=16).map(|i| w.server(n(i)).requests()).sum();
        assert!(served_elsewhere > 0, "accesses continued on the new home");
    }

    #[test]
    fn donor_crash_without_spare_capacity_fails_accesses() {
        let mut cfg = ClusterConfig::prototype();
        cfg.recovery.max_retries = 2;
        cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
            at: t(50),
            node: n(2),
        });
        let mut w = World::new(cfg);
        // No node but the (doomed) donor has any pool capacity left.
        for i in 3..=16 {
            w.directory_mut().set_free(n(i), 0);
        }
        w.directory_mut().set_free(n(1), 0);
        let resv = w.reserve_remote(n(1), 256, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 200,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 43,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.thread_completed(id) + w.thread_failed(id), 200);
        assert!(w.thread_failed(id) > 0, "dropped zone accesses must fail");
        assert_eq!(w.evacuations(), 0);
        assert_eq!(w.fault_log().count("evacuation_failed"), 1);
        assert!(w.region(n(1)).borrowed_bytes() == 0, "dead zone dropped");
    }

    #[test]
    fn crashed_node_restarts_with_a_cold_pool() {
        let mut cfg = ClusterConfig::prototype();
        cfg.recovery.max_retries = 2;
        cfg.faults = FaultPlan::new()
            .with(FaultEvent::NodeCrash {
                at: t(30),
                node: n(2),
            })
            .with(FaultEvent::NodeRestart {
                at: t(2_000),
                node: n(2),
            });
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 256, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 100,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 44,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.thread_completed(id) + w.thread_failed(id), 100);
        assert!(!w.node_is_dead(n(2)));
        assert!(!w.client(n(1)).is_suspect(n(2)), "suspicion cleared");
        assert_eq!(
            w.directory().free_frames(n(2)),
            w.config().pool_frames_per_node(),
            "rejoined with a full, cold pool"
        );
        assert_eq!(w.fault_log().count("node_restart"), 1);
        let _ = id;
    }

    #[test]
    fn server_stall_delays_but_loses_nothing() {
        let mut cfg = ClusterConfig::prototype();
        cfg.faults = FaultPlan::new().with(FaultEvent::ServerStall {
            at: t(20),
            node: n(2),
            duration: SimDuration::us(40),
        });
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 200,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 45,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.thread_completed(id), 200, "a stall is not a loss");
        assert_eq!(w.thread_failed(id), 0);
        assert_eq!(w.server(n(2)).stalls(), 1);
        assert_eq!(w.fault_log().count("server_stall"), 1);
    }

    #[test]
    fn coherent_domain_rejects_loss_and_fault_plans() {
        let mut w = lossy_world(0.01);
        assert_eq!(
            w.set_coherent_domain(vec![n(1), n(2)]),
            Err(WorldConfigError::LossyCoherentDomain { loss_rate: 0.01 })
        );
        let mut cfg = ClusterConfig::prototype();
        cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
            at: t(1),
            node: n(2),
        });
        let mut w2 = World::new(cfg);
        assert_eq!(
            w2.set_coherent_domain(vec![n(1), n(2)]),
            Err(WorldConfigError::FaultyCoherentDomain)
        );
        let mut w3 = world();
        assert!(w3.set_coherent_domain(vec![n(1), n(2)]).is_ok());
    }

    #[test]
    fn snapshot_carries_fault_log_and_evacuations() {
        let mut cfg = ClusterConfig::prototype();
        cfg.recovery.max_retries = 2;
        cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
            at: t(40),
            node: n(2),
        });
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 256, Some(n(2)));
        w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 150,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 46,
            },
            SimTime::ZERO,
        );
        w.run();
        let doc = Json::parse(&w.snapshot().doc.to_string()).expect("valid JSON");
        assert_eq!(doc.get("evacuations").unwrap().as_u64(), Some(1));
        let faults = doc.get("faults").unwrap().as_array().unwrap();
        assert!(faults.len() >= 3, "crash + suspect + evacuation at least");
        assert!(faults
            .iter()
            .any(|f| f.get("kind").unwrap().as_str() == Some("node_crash")));
        // Per-node client snapshots expose the abort count.
        let nodes = doc.get("nodes").unwrap().as_array().unwrap();
        let client = nodes[0].get("rmc_client").unwrap();
        assert!(client.get("aborted").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn duplicate_responses_are_harmless() {
        // With heavy loss and an aggressively short timeout, retransmitted
        // requests race their own slow responses; duplicates must be
        // discarded, not double-completed.
        let mut cfg = ClusterConfig::prototype();
        cfg.fabric.loss_rate = 0.05;
        cfg.rmc.timeout = SimDuration::ns(1_000); // shorter than the 6-hop RTT
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 1024, Some(n(16))); // 6 hops: long RTT
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 200,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 7,
            },
            SimTime::ZERO,
        );
        w.run();
        let _ = id;
        assert_eq!(
            w.client(n(1)).completions(),
            200,
            "exactly one completion each"
        );
        assert!(
            w.client(n(1)).duplicates() > 0,
            "the short timeout should have produced duplicate responses"
        );
    }

    #[test]
    fn fault_plan_naming_unknown_node_or_link_is_rejected() {
        // Regression: a typo'd fault plan used to build a world whose faults
        // could never strike; it now fails construction with a typed error.
        let mut cfg = ClusterConfig::prototype();
        cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
            at: t(10),
            node: n(77),
        });
        assert!(matches!(
            World::try_new(cfg),
            Err(WorldConfigError::UnknownFaultNode { node }) if node == n(77)
        ));
        let mut cfg = ClusterConfig::prototype();
        // 1 <-> 7 is not a physical link of the 4x4 mesh (1's neighbours
        // are 2 and 5).
        cfg.faults = FaultPlan::new().with(FaultEvent::LinkDown {
            at: t(10),
            a: n(1),
            b: n(7),
        });
        let err = World::try_new(cfg).err().expect("diagonal link rejected");
        assert!(matches!(err, WorldConfigError::UnknownFaultLink { a, b }
            if a == n(1) && b == n(7)));
        assert!(err.to_string().contains("not a physical link"));
        // A well-formed plan (existing node, physical link) still builds.
        let mut cfg = ClusterConfig::prototype();
        cfg.faults = FaultPlan::new()
            .with(FaultEvent::ServerStall {
                at: t(10),
                node: n(3),
                duration: SimDuration::us(5),
            })
            .with(FaultEvent::LinkUp {
                at: t(20),
                a: n(2),
                b: n(1), // reversed endpoint order must also be accepted
            });
        assert!(World::try_new(cfg).is_ok());
    }

    #[test]
    fn shed_home_defers_blocking_accesses_without_burning_retries() {
        let mut w = world();
        let resv = w.reserve_remote(n(1), 64, Some(n(2)));
        w.nodes[n(1).index()].client.set_shed(n(2));
        let out = w.try_blocking_transaction(
            SimTime::ZERO,
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        assert!(matches!(out, AccessOutcome::Shed { node, .. } if node == n(2)));
        assert_eq!(w.client(n(1)).retransmissions(), 0);
        assert_eq!(w.client(n(1)).shed_deferrals(), 1);
        // Re-admission makes the same access complete normally.
        w.nodes[n(1).index()].client.clear_shed(n(2));
        let out = w.try_blocking_transaction(
            w.now(),
            n(1),
            n(2),
            MsgKind::ReadReq { bytes: 64 },
            resv.prefixed_base,
        );
        assert!(matches!(out, AccessOutcome::Completed { .. }));
    }

    #[test]
    fn manager_migrates_zones_off_a_crashed_donor_before_detection() {
        let mut cfg = ClusterConfig::prototype();
        cfg.manager = crate::ManagerConfig::enabled();
        cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
            at: t(50),
            node: n(2),
        });
        let mut w = World::new(cfg);
        let resv = w.reserve_remote(n(1), 1024, Some(n(2)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: 300,
                bytes: 64,
                write_fraction: 0.2,
                think: SimDuration::ns(5),
                seed: 42,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.thread_completed(id) + w.thread_failed(id), 300);
        assert_eq!(w.thread_failed(id), 0, "migration must lose nothing");
        assert_eq!(w.evacuations(), 1, "the zone moved once");
        assert_eq!(w.fault_log().count("migration"), 1);
        // The manager's tick (2 us) beats the retry-budget detection path
        // (default budget: 16 retries with exponential backoff, ~ms): no
        // client ever had to declare the node suspect.
        assert_eq!(w.fault_log().count("suspect"), 0);
        assert!(w.manager().expect("enabled").rehomes() >= 1);
        assert_eq!(w.pending_count(), 0);
    }

    #[test]
    fn manager_sheds_a_stalled_server_and_readmits_it_after_drain() {
        let mut cfg = ClusterConfig::prototype();
        cfg.manager = crate::ManagerConfig::enabled();
        cfg.manager.migrate_after = 0; // isolate admission control
        cfg.faults = FaultPlan::new().with(FaultEvent::ServerStall {
            at: t(20),
            node: n(2),
            duration: SimDuration::us(40),
        });
        let mut w = World::new(cfg);
        let resv2 = w.reserve_remote(n(1), 1024, Some(n(2)));
        // A second zone on a healthy node keeps the thread issuing during
        // the stall (accesses aimed at the shed node defer; the others
        // proceed) instead of sitting blocked behind one queued request.
        let resv3 = w.reserve_remote(n(1), 1024, Some(n(3)));
        let id = w.spawn_thread(
            ThreadSpec {
                node: n(1),
                zones: vec![
                    (resv2.prefixed_base, resv2.frames * 4096),
                    (resv3.prefixed_base, resv3.frames * 4096),
                ],
                accesses: 400,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 45,
            },
            SimTime::ZERO,
        );
        w.run();
        assert_eq!(w.thread_completed(id), 400, "shedding defers, never fails");
        assert!(
            w.fault_log().count("shed") >= 1,
            "the 40 us stall (>> 3 us watermark) must trip admission control"
        );
        assert!(
            w.fault_log().count("readmit") >= 1,
            "the node must be re-admitted once the stall drains"
        );
        assert!(
            w.client(n(1)).shed_deferrals() > 0,
            "accesses were actually deferred"
        );
        assert!(
            !w.client(n(1)).is_shed(n(2)),
            "no node stays shed after the run"
        );
        let mgr = w.manager().expect("enabled");
        assert!(mgr.sheds() >= 1 && mgr.readmits() >= 1);
        assert_eq!(mgr.currently_shed(), 0);
    }

    #[test]
    fn manager_snapshot_appears_only_when_enabled() {
        let w = world();
        assert!(w.snapshot().doc.get("manager").is_none());
        assert!(w.manager().is_none());
        let mut cfg = ClusterConfig::prototype();
        cfg.manager = crate::ManagerConfig::enabled();
        let w = World::new(cfg);
        let doc = w.snapshot().doc;
        let mgr = doc.get("manager").expect("manager stats present");
        assert_eq!(mgr.get("ticks").unwrap().as_u64(), Some(0));
    }
}
