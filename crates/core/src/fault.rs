//! Fault injection and recovery policy.
//!
//! The paper defers "concerns related to communication reliability", but a
//! heap spanning borrowed memory makes a donor-node crash a failure mode
//! coherent SMP never had. This module declares *what goes wrong and when*
//! ([`FaultPlan`], a deterministic schedule carried by
//! [`crate::ClusterConfig`]) and *how the cluster responds*
//! ([`RecoveryConfig`]: retry budget, backoff, evacuation policy). The
//! [`crate::World`] event loop injects the events and drives detection and
//! recovery; every action lands in the fault log
//! ([`cohfree_sim::FaultLog`]) inside cluster snapshots.

use cohfree_fabric::NodeId;
use cohfree_sim::{SimDuration, SimTime};

/// One scheduled fault (or repair) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// `node` fails whole: its router, RMCs, DRAM and kernel all stop.
    /// Borrowed zones homed there lose their data; threads running on it
    /// die with their remaining accesses recorded as failed.
    NodeCrash {
        /// Crash instant.
        at: SimTime,
        /// The node that fails.
        node: NodeId,
    },
    /// A previously crashed `node` rejoins with a cold, empty pool; peers
    /// clear their suspicion of it. Pre-crash grants are *not* restored.
    NodeRestart {
        /// Restart instant.
        at: SimTime,
        /// The node that rejoins.
        node: NodeId,
    },
    /// The bidirectional link between `a` and `b` goes down; the fabric
    /// reroutes around it (or drops traffic whose destination becomes
    /// unreachable).
    LinkDown {
        /// Outage start.
        at: SimTime,
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
    },
    /// The link between `a` and `b` is repaired.
    LinkUp {
        /// Repair instant.
        at: SimTime,
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
    },
    /// `node`'s server RMC front-end stops processing for `duration`
    /// (firmware hiccup, ECC scrub storm). Requests queue behind it;
    /// clients see a latency spike that may trip their loss timers.
    ServerStall {
        /// Stall start.
        at: SimTime,
        /// The stalled memory server.
        node: NodeId,
        /// How long the front-end is wedged.
        duration: SimDuration,
    },
}

impl FaultEvent {
    /// The scheduled instant of this event.
    pub fn at(&self) -> SimTime {
        match *self {
            FaultEvent::NodeCrash { at, .. }
            | FaultEvent::NodeRestart { at, .. }
            | FaultEvent::LinkDown { at, .. }
            | FaultEvent::LinkUp { at, .. }
            | FaultEvent::ServerStall { at, .. } => at,
        }
    }
}

/// Maximum events a [`FaultPlan`] can carry. Fixed so the plan (and thus
/// [`crate::ClusterConfig`]) stays `Copy`; experiments needing more than
/// this are scripting a disaster movie, not a fault study.
pub const MAX_FAULT_EVENTS: usize = 16;

/// A deterministic schedule of fault events, carried by
/// [`crate::ClusterConfig`] and injected by the [`crate::World`] event loop.
///
/// ```
/// use cohfree_core::{FaultEvent, FaultPlan, NodeId, SimDuration, SimTime};
///
/// let plan = FaultPlan::new().with(FaultEvent::NodeCrash {
///     at: SimTime::ZERO + SimDuration::us(50),
///     node: NodeId::new(2),
/// });
/// assert_eq!(plan.len(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    events: [Option<FaultEvent>; MAX_FAULT_EVENTS],
    len: usize,
}

impl FaultPlan {
    /// An empty plan (the default: nothing ever fails).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style append.
    ///
    /// # Panics
    /// Panics when the plan already holds [`MAX_FAULT_EVENTS`] events.
    pub fn with(mut self, ev: FaultEvent) -> FaultPlan {
        self.push(ev);
        self
    }

    /// Append an event.
    ///
    /// # Panics
    /// Panics when the plan already holds [`MAX_FAULT_EVENTS`] events.
    pub fn push(&mut self, ev: FaultEvent) {
        assert!(
            self.len < MAX_FAULT_EVENTS,
            "fault plan full ({MAX_FAULT_EVENTS} events)"
        );
        self.events[self.len] = Some(ev);
        self.len += 1;
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> impl Iterator<Item = FaultEvent> + '_ {
        self.events[..self.len]
            .iter()
            .map(|e| e.expect("within len"))
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What to do with a zone whose donor has been declared dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvacuationPolicy {
    /// Re-home the zone: directory-assisted re-reservation on another donor
    /// with capacity, page-table (zone base) rewrite, and the interrupted
    /// accesses re-issued against the new home. Falls back to [`Self::Fail`]
    /// behaviour when no donor can take the zone.
    Rehome,
    /// Drop the zone; accesses to it are recorded as failed. The process
    /// would degrade to local swap for those pages.
    Fail,
}

/// Failure-detection and recovery parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Retransmissions per transaction before the home node is declared
    /// suspect and outstanding transactions to it are aborted. The default
    /// is deliberately generous so heavy-loss studies (5% per traversal)
    /// never false-positive; failover experiments sweep it down.
    pub max_retries: u32,
    /// Exponential-backoff cap: the k-th retry waits
    /// `timeout * 2^min(k, backoff_cap)`.
    pub backoff_cap: u32,
    /// Policy for zones homed at a dead donor.
    pub evacuation: EvacuationPolicy,
    /// When re-homing, also charge time to re-fetch the zone's pages from
    /// the local swap/backup copy (the data survives). When `false` the
    /// data is declared lost and only the mapping moves.
    pub refetch: bool,
    /// Deterministic jitter fraction on retry backoff: the k-th retry of a
    /// transaction waits its exponential delay plus up to `retry_jitter`
    /// of that delay, the fraction drawn from a hash of the cluster seed,
    /// the transaction tag and the attempt number. Tags encode the issuing
    /// node, so clients recovering from the same outage de-synchronize
    /// instead of re-saturating the fabric in one retry wave. `0.0`
    /// disables jitter.
    pub retry_jitter: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 16,
            backoff_cap: 4,
            evacuation: EvacuationPolicy::Rehome,
            refetch: false,
            retry_jitter: 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn plan_builds_and_iterates_in_order() {
        let t = |us| SimTime::ZERO + SimDuration::us(us);
        let plan = FaultPlan::new()
            .with(FaultEvent::LinkDown {
                at: t(10),
                a: n(1),
                b: n(2),
            })
            .with(FaultEvent::NodeCrash {
                at: t(20),
                node: n(3),
            })
            .with(FaultEvent::LinkUp {
                at: t(30),
                a: n(1),
                b: n(2),
            });
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let ats: Vec<u64> = plan.events().map(|e| e.at().as_ns()).collect();
        assert_eq!(ats, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn empty_plan_is_default() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.events().count(), 0);
    }

    #[test]
    #[should_panic(expected = "fault plan full")]
    fn overfull_plan_panics() {
        let mut plan = FaultPlan::new();
        for i in 0..=MAX_FAULT_EVENTS {
            plan.push(FaultEvent::NodeCrash {
                at: SimTime::ZERO + SimDuration::us(i as u64 + 1),
                node: n(2),
            });
        }
    }
}
