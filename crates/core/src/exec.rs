//! Engine-agnostic execution of *lane* events.
//!
//! The world's events fall into two classes:
//!
//! * **Lane events** (`Hop`, `MemDone`, `ThreadWake`, `Timeout`) touch the
//!   state of exactly one node — the event's *lane* — plus cluster-shared
//!   read-only state. They are handled here, against a [`LaneCtx`] that
//!   borrows either the whole world (sequential engine) or one partition's
//!   shard (parallel engine, `crate::par`).
//! * **Global events** (`Sample`, `Fault`, `Suspect`) may touch anything.
//!   They stay ordinary `&mut World` methods in `crate::world`; the parallel
//!   engine merges its shards back into the world before running one.
//!
//! ## Content-determined event keys
//!
//! Byte-identical output across engines requires that both pop events in the
//! same total `(time, key)` order, which in turn requires the *key* of an
//! event to be a pure function of the computation — never of engine-specific
//! scheduling order. [`make_key`] packs, from most to least significant:
//!
//! ```text
//! [ lane:16 | gen:8 | parent lane:16 | parent index:48 | child ordinal:16 ]
//! ```
//!
//! * `lane` — the node that will process the event (`0` for globals), so at
//!   one instant all global events sort before all lane events, and lanes
//!   sort by node id.
//! * `gen` — same-instant causality depth: an event scheduled at its
//!   parent's own instant *on the parent's own lane* carries `parent gen +
//!   1`, so it sorts after the parent's siblings of the same generation.
//! * `parent lane`/`parent index` — which event scheduled this one: the
//!   parent's lane and its per-lane execution ordinal (or `0`/a global
//!   sequence number for setup- and global-context scheduling, which both
//!   engines perform identically).
//! * `child ordinal` — position among the parent's same-call children.
//!
//! Both engines derive identical keys for identical events, so the parallel
//! engine's windowed merge reproduces the sequential pop order exactly.

use crate::config::ClusterConfig;
use crate::world::{CohState, Ev, NodeCtx, Owner, PendingTx, Thread};
use cohfree_fabric::{
    step_row, FabricCounters, FabricRow, FabricShared, Message, MsgKind, NodeId, Step,
};
use cohfree_rmc::{Completion, Submit};
use cohfree_sim::span::{Phase, TraceSink};
use cohfree_sim::{EventQueue, FastMap, SimDuration, SimTime};

/// Lane number of global (whole-world) events; sorts before every node lane.
pub(crate) const GLOBAL_LANE: u16 = 0;

/// Pack a content-determined event ordering key (see the module docs).
#[inline]
pub(crate) fn make_key(lane: u16, gen: u8, parent_lane: u16, parent_idx: u64, child: u16) -> u128 {
    debug_assert!(parent_idx < 1 << 48, "per-lane execution ordinal overflow");
    ((lane as u128) << 88)
        | ((gen as u128) << 80)
        | ((parent_lane as u128) << 64)
        | ((parent_idx as u128) << 16)
        | child as u128
}

/// The processing lane encoded in a key.
#[inline]
pub(crate) fn key_lane(key: u128) -> u16 {
    (key >> 88) as u16
}

/// The same-instant causality generation encoded in a key.
#[inline]
pub(crate) fn key_gen(key: u128) -> u8 {
    (key >> 80) as u8
}

/// The largest single loss-recovery backoff delay: one simulated second.
///
/// Real recovery stacks cap their exponential backoff at a maximum delay;
/// here the ceiling also keeps absolute timer *instants* representable. The
/// clock counts picoseconds in a `u64` (~213 simulated days), so an uncapped
/// exponential — default 30 µs timeout doubled a few dozen times — reaches
/// per-retry delays of ~2e18 ps and walks the clock to `SimTime::MAX` within
/// tens of retries, after which the retransmission path does arithmetic on a
/// saturated clock. At 1 s per retry, even a million-retry budget sums to
/// well inside the clock's range.
pub(crate) const BACKOFF_CEILING: SimDuration = SimDuration::secs(1);

/// Exponential loss-recovery backoff for the `attempt`-th retry of the
/// transaction tagged `tag`:
/// `min(timeout * 2^min(attempt, backoff_cap) * (1 + j), BACKOFF_CEILING)`
/// where `j ∈ [0, retry_jitter)` is a deterministic per-(tag, attempt)
/// fraction. The shift is clamped and the multiply saturates so a retry
/// budget of 64+ cannot wrap the delay to (near) zero and hot-spin the
/// event queue, and the absolute ceiling keeps timer instants finite (see
/// [`BACKOFF_CEILING`]).
///
/// The jitter is a pure function of `(cluster seed, tag, attempt)` —
/// engine- and partition-independent, so the parallel engine reproduces it
/// byte-identically. Tags encode the issuing node in their high bits, so
/// clients whose retries a shared outage synchronized spread back out
/// instead of re-saturating the restored fabric in one wave.
#[inline]
pub(crate) fn backoff_delay(cfg: &ClusterConfig, tag: u64, attempt: u32) -> SimDuration {
    let shift = attempt.min(cfg.recovery.backoff_cap).min(63);
    let base = cfg.rmc.timeout.saturating_mul(1u64 << shift);
    let jitter = cfg.recovery.retry_jitter;
    if jitter <= 0.0 {
        return base.min(BACKOFF_CEILING);
    }
    // SplitMix64-style scramble of (seed, tag, attempt) -> fraction in [0,1).
    let mut h = cfg
        .seed
        .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
    let extra = SimDuration::ns_f64(base.min(BACKOFF_CEILING).as_ns_f64() * jitter * frac);
    (base.min(BACKOFF_CEILING) + extra).min(BACKOFF_CEILING)
}

/// Delay between a requester exhausting its retry budget and the suspect
/// declaration taking effect cluster-wide ([`Ev::Suspect`]): one fabric
/// lookahead window, so the declaration is a strictly-future global event
/// under any partitioning (and a well-defined one on a zero-latency fabric).
#[inline]
pub(crate) fn suspect_delay(shared: &FabricShared) -> SimDuration {
    let w = shared.min_hop_latency();
    if w.is_zero() {
        SimDuration::ns(1)
    } else {
        w
    }
}

// ---------------------------------------------------------------------------
// Trace log-and-replay
// ---------------------------------------------------------------------------

/// One deferred [`TraceSink`] call (owned data only, so shards are `'static`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceOp {
    Begin {
        tx: u64,
        node: u16,
        t: SimTime,
    },
    Push {
        tx: u64,
        phase: Phase,
        node: u16,
        t0: SimTime,
        t1: SimTime,
        attr: Option<(&'static str, u64)>,
    },
    Finish {
        tx: u64,
        t: SimTime,
        failed: bool,
    },
    FailFast {
        node: u16,
        t: SimTime,
    },
}

impl TraceOp {
    fn apply(self, sink: &mut TraceSink) {
        match self {
            TraceOp::Begin { tx, node, t } => sink.begin(tx, node, t),
            TraceOp::Push {
                tx,
                phase,
                node,
                t0,
                t1,
                attr,
            } => sink.push_attr(tx, phase, node, t0, t1, attr),
            TraceOp::Finish { tx, t, failed } => sink.finish(tx, t, failed),
            TraceOp::FailFast { node, t } => sink.fail_fast(node, t),
        }
    }
}

/// A deferred trace call stamped with its emitting event's `(time, key)` and
/// intra-event ordinal, so a merged batch can be replayed against the real
/// sink in exactly the order the sequential engine would have made the calls.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceRec {
    pub(crate) at: SimTime,
    pub(crate) key: u128,
    pub(crate) opseq: u32,
    pub(crate) op: TraceOp,
}

/// Per-shard buffer of deferred trace calls.
#[derive(Debug, Default)]
pub(crate) struct TraceLog {
    pub(crate) enabled: bool,
    pub(crate) buf: Vec<TraceRec>,
    at: SimTime,
    key: u128,
    opseq: u32,
}

impl TraceLog {
    pub(crate) fn new(enabled: bool) -> TraceLog {
        TraceLog {
            enabled,
            ..TraceLog::default()
        }
    }

    /// Start logging under a new executing event's `(time, key)`.
    #[inline]
    pub(crate) fn set_event(&mut self, at: SimTime, key: u128) {
        self.at = at;
        self.key = key;
        self.opseq = 0;
    }

    #[inline]
    fn log(&mut self, op: TraceOp) {
        if self.enabled {
            self.buf.push(TraceRec {
                at: self.at,
                key: self.key,
                opseq: self.opseq,
                op,
            });
            self.opseq += 1;
        }
    }
}

/// Sort a batch of deferred trace calls into global event order and apply
/// them to the sink. Calls are replayed *between* windows and *before* any
/// merged-world global event runs, so direct calls made by global handlers
/// interleave correctly (every logged call strictly precedes them in event
/// order).
pub(crate) fn replay_trace(sink: &mut TraceSink, mut recs: Vec<TraceRec>) {
    // Self-profiling (out-of-band): replay volume tells a parallel-engine
    // PR how much deferred-trace work merges and flushes are moving.
    if cohfree_sim::metrics::enabled() {
        cohfree_sim::metrics::counter_add("cohfree_par_trace_replays_total", 1);
        cohfree_sim::metrics::counter_add("cohfree_par_trace_records_total", recs.len() as u64);
    }
    recs.sort_unstable_by_key(|r| (r.at, r.key, r.opseq));
    for r in recs {
        r.op.apply(sink);
    }
}

/// Where a lane context's trace calls go: straight into the world's sink
/// (sequential — and, for global handlers, the merged world), or into a
/// shard's deferred log (parallel workers).
pub(crate) enum TraceCtx<'a> {
    Direct(&'a mut TraceSink),
    Log(&'a mut TraceLog),
}

impl TraceCtx<'_> {
    /// Whether tracing is on at all. Lane code gates on this instead of the
    /// sink's per-transaction `is_traced` (which a deferred log cannot
    /// answer); the sink ignores calls for untraced ids in every mode, so
    /// the two gates produce identical output.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        match self {
            TraceCtx::Direct(s) => s.enabled(),
            TraceCtx::Log(l) => l.enabled,
        }
    }

    #[inline]
    fn begin(&mut self, tx: u64, node: u16, t: SimTime) {
        match self {
            TraceCtx::Direct(s) => s.begin(tx, node, t),
            TraceCtx::Log(l) => l.log(TraceOp::Begin { tx, node, t }),
        }
    }

    #[inline]
    fn push(&mut self, tx: u64, phase: Phase, node: u16, t0: SimTime, t1: SimTime) {
        self.push_attr(tx, phase, node, t0, t1, None);
    }

    #[inline]
    fn push_attr(
        &mut self,
        tx: u64,
        phase: Phase,
        node: u16,
        t0: SimTime,
        t1: SimTime,
        attr: Option<(&'static str, u64)>,
    ) {
        match self {
            TraceCtx::Direct(s) => s.push_attr(tx, phase, node, t0, t1, attr),
            TraceCtx::Log(l) => l.log(TraceOp::Push {
                tx,
                phase,
                node,
                t0,
                t1,
                attr,
            }),
        }
    }

    #[inline]
    fn finish(&mut self, tx: u64, t: SimTime, failed: bool) {
        match self {
            TraceCtx::Direct(s) => s.finish(tx, t, failed),
            TraceCtx::Log(l) => l.log(TraceOp::Finish { tx, t, failed }),
        }
    }

    #[inline]
    fn fail_fast(&mut self, node: u16, t: SimTime) {
        match self {
            TraceCtx::Direct(s) => s.fail_fast(node, t),
            TraceCtx::Log(l) => l.log(TraceOp::FailFast { node, t }),
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling sink
// ---------------------------------------------------------------------------

/// Where a lane context's scheduled events go. Sequential: one queue holds
/// everything. Parallel: events for this shard's own lanes go to its local
/// queue; cross-partition (and global) events go to the outbox, which the
/// coordinator routes at the window barrier.
pub(crate) enum SchedSink<'a> {
    Seq(&'a mut EventQueue<Ev>),
    Par {
        queue: &'a mut EventQueue<Ev>,
        outbox: &'a mut Vec<(SimTime, u128, u16, Ev)>,
        lo: u16,
        hi: u16,
        /// Lazy min-heap of loss-recovery timer instants armed on this
        /// shard's own lanes. The coordinator's global-event bound (see
        /// `par::run_parallel`) needs a lower bound on the earliest
        /// `Timeout` a shard holds without scanning its queue, so every
        /// locally-scheduled timer also pushes its instant here; entries go
        /// stale when the timer fires or is superseded, and stale entries
        /// are simply *early* — the bound stays conservative.
        timeout_lb: &'a mut std::collections::BinaryHeap<std::cmp::Reverse<SimTime>>,
    },
}

// ---------------------------------------------------------------------------
// Lane context
// ---------------------------------------------------------------------------

/// Mutable view of one contiguous lane range `[first, first + nodes.len())`
/// plus the cluster-shared state a lane event may touch. The sequential
/// engine builds one over the whole world per event; the parallel engine
/// builds one over a shard.
pub(crate) struct LaneCtx<'a> {
    pub(crate) cfg: &'a ClusterConfig,
    /// First node id covered by the per-lane slices below (1 = whole world).
    pub(crate) first: u16,
    pub(crate) nodes: &'a mut [NodeCtx],
    /// Threads homed on this context's lanes (all threads, sequentially).
    pub(crate) threads: &'a mut [Thread],
    /// Global thread id -> (shard, local slot); `None` = identity.
    pub(crate) tmap: Option<&'a [(u16, u32)]>,
    /// This context's shard index (0 sequentially).
    pub(crate) shard: u16,
    /// In-flight transactions whose source lane lies in this context.
    pub(crate) pending: &'a mut FastMap<u64, PendingTx>,
    /// Per-lane evacuation remap tables (index `lane - first`).
    pub(crate) evac_remaps: &'a mut [Vec<(u64, u64, u64)>],
    /// Per-lane fabric router rows (index `lane - first`).
    pub(crate) rows: &'a mut [FabricRow],
    pub(crate) fab_shared: &'a FabricShared,
    pub(crate) fab_counters: &'a mut FabricCounters,
    /// Cluster-wide crash flags (absolute index `node.index()`).
    pub(crate) dead: &'a [bool],
    /// Coherent-DSM baseline state; `None` in parallel contexts (a coherent
    /// domain forces the sequential engine).
    pub(crate) coh: Option<(&'a mut FastMap<u64, CohState>, &'a [NodeId])>,
    pub(crate) trace: TraceCtx<'a>,
    pub(crate) sink: SchedSink<'a>,
    /// Blocking-driver completion slot (`Owner::Sync`); failure declaration
    /// is global-only, so there is no failure slot here.
    pub(crate) sync_done: &'a mut Option<(u64, SimTime)>,
    // --- currently executing event (set by `exec_event`) ---
    pub(crate) now: SimTime,
    pub(crate) cur_lane: u16,
    pub(crate) cur_gen: u8,
    pub(crate) cur_key: u128,
    /// Per-lane execution ordinal of the current event.
    pub(crate) cur_idx: u64,
    /// Children scheduled by the current event so far.
    pub(crate) child: u16,
}

impl LaneCtx<'_> {
    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut NodeCtx {
        &mut self.nodes[(id.get() - self.first) as usize]
    }

    #[inline]
    fn thread_mut(&mut self, id: usize) -> &mut Thread {
        let slot = match self.tmap {
            None => id,
            Some(m) => {
                let (shard, slot) = m[id];
                debug_assert_eq!(shard, self.shard, "thread {id} handled off-shard");
                slot as usize
            }
        };
        &mut self.threads[slot]
    }

    #[inline]
    fn evac_remap(&self, node: NodeId) -> &[(u64, u64, u64)] {
        &self.evac_remaps[(node.get() - self.first) as usize]
    }

    /// Schedule `ev` on `lane` at `at` under its content-determined key.
    fn sched(&mut self, at: SimTime, lane: u16, ev: Ev) {
        let gen = if at == self.now && lane == self.cur_lane {
            debug_assert!(self.cur_gen < u8::MAX, "same-instant causality too deep");
            self.cur_gen.wrapping_add(1)
        } else {
            0
        };
        let key = make_key(lane, gen, self.cur_lane, self.cur_idx, self.child);
        self.child += 1;
        // The canonical order must be executable: a same-instant child may
        // never sort before the event that scheduled it.
        debug_assert!(
            at > self.now || key > self.cur_key,
            "same-instant event scheduled into the past of the canonical order"
        );
        match &mut self.sink {
            SchedSink::Seq(q) => q.schedule_keyed(at, key, ev),
            SchedSink::Par {
                queue,
                outbox,
                lo,
                hi,
                timeout_lb,
            } => {
                if lane >= *lo && lane <= *hi {
                    if matches!(ev, Ev::Timeout { .. }) {
                        timeout_lb.push(std::cmp::Reverse(at));
                    }
                    queue.schedule_keyed(at, key, ev);
                } else {
                    outbox.push((at, key, lane, ev));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-event execution
// ---------------------------------------------------------------------------

/// Execute one lane event against `ctx`. `key` must be the event's own
/// ordering key and `idx` its per-lane execution ordinal.
pub(crate) fn exec_event(ctx: &mut LaneCtx<'_>, now: SimTime, key: u128, idx: u64, ev: Ev) {
    ctx.now = now;
    ctx.cur_lane = key_lane(key);
    ctx.cur_gen = key_gen(key);
    ctx.cur_key = key;
    ctx.cur_idx = idx;
    ctx.child = 0;
    if let TraceCtx::Log(l) = &mut ctx.trace {
        l.set_event(now, key);
    }
    match ev {
        // A message at a crashed router vanishes with the router.
        Ev::Hop { at, .. } if ctx.dead[at.index()] => {}
        Ev::Hop { msg, at } => hop(ctx, now, msg, at),
        // The DRAM completion of a node that crashed mid-service.
        Ev::MemDone { msg, .. } if ctx.dead[msg.dst.index()] => {}
        Ev::MemDone { msg, arrived } => mem_done(ctx, now, msg, arrived),
        Ev::ThreadWake { id } => thread_step(ctx, now, id),
        Ev::Timeout { tag, attempt } => on_timeout(ctx, now, tag, attempt),
        Ev::Sample | Ev::Fault(_) | Ev::Suspect { .. } | Ev::Manager => {
            unreachable!("global event dispatched to a lane context")
        }
    }
}

fn hop(ctx: &mut LaneCtx<'_>, now: SimTime, msg: Message, at: NodeId) {
    let (step, queued) = step_row(
        ctx.fab_shared,
        ctx.fab_counters,
        &mut ctx.rows[(at.get() - ctx.first) as usize],
        now,
        at,
        &msg,
    );
    if let Step::Forward { arrive, .. } = step {
        trace_hop(ctx, &msg, at, now, arrive, queued);
    }
    match step {
        Step::Forward { next, arrive } => {
            ctx.sched(arrive, next.get(), Ev::Hop { msg, at: next });
        }
        // Lost on a link; the requester's timeout recovers it.
        Step::Dropped => {}
        Step::Deliver { at: t } => match msg.kind {
            // --- coherent-DSM baseline choreography ---
            MsgKind::ProbeReq => {
                let (resp, inject_at) = ctx.node_mut(msg.dst).server.on_probe(t, &msg);
                ctx.sched(
                    inject_at,
                    resp.src.get(),
                    Ev::Hop {
                        msg: resp,
                        at: resp.src,
                    },
                );
            }
            MsgKind::ProbeResp => {
                let done = ctx.node_mut(msg.dst).server.on_probe_response(t);
                let (coh, _) = ctx.coh.as_mut().expect("probe outside a coherent domain");
                let st = coh
                    .get_mut(&msg.tag)
                    .expect("probe response for unknown coherent transaction");
                st.awaiting_probes -= 1;
                try_finish_coherent(ctx, msg.tag, done);
            }
            MsgKind::CohReadReq { .. } => {
                let home = msg.dst;
                let node = ctx.node_mut(home);
                let issue = node.server.on_request(t, &msg);
                let done = node
                    .mem
                    .access(issue.issue_at, issue.local_addr, issue.bytes);
                ctx.sched(done, home.get(), Ev::MemDone { msg, arrived: t });
                // Broadcast snoops to every other domain member.
                let (coh, domain) = ctx.coh.as_mut().expect("coherent read outside a domain");
                let members: Vec<NodeId> = domain
                    .iter()
                    .copied()
                    .filter(|&m| m != home && m != msg.src)
                    .collect();
                coh.insert(
                    msg.tag,
                    CohState {
                        awaiting_probes: members.len(),
                        mem_done: None,
                        req: msg,
                        arrived: t,
                    },
                );
                for m in members {
                    let probe = Message::with_addr(home, m, MsgKind::ProbeReq, msg.tag, msg.addr);
                    ctx.sched(
                        issue.issue_at,
                        home.get(),
                        Ev::Hop {
                            msg: probe,
                            at: home,
                        },
                    );
                }
            }
            // --- ordinary (non-coherent) paths ---
            _ if msg.kind.is_response() => {
                // None = duplicate response under loss recovery.
                if let Some(comp) = ctx.node_mut(msg.dst).client.on_response(t, &msg) {
                    if ctx.trace.enabled() {
                        let node = msg.dst.get();
                        let svc_start = comp.done_at - ctx.cfg.rmc.proc_time;
                        ctx.trace
                            .push(comp.tag, Phase::ClientQueue, node, t, svc_start);
                        ctx.trace.push(
                            comp.tag,
                            Phase::Reply,
                            node,
                            svc_start.max(t),
                            comp.done_at,
                        );
                    }
                    complete(ctx, comp);
                }
            }
            _ => {
                let home = msg.dst;
                let node = ctx.node_mut(home);
                let issue = node.server.on_request(t, &msg);
                let done = node
                    .mem
                    .access(issue.issue_at, issue.local_addr, issue.bytes);
                if ctx.trace.enabled() {
                    let svc_start = issue.issue_at - ctx.cfg.rmc.server_proc_time;
                    ctx.trace
                        .push(msg.tag, Phase::ServerQueue, home.get(), t, svc_start);
                    ctx.trace
                        .push(msg.tag, Phase::Service, home.get(), svc_start.max(t), done);
                }
                ctx.sched(done, home.get(), Ev::MemDone { msg, arrived: t });
            }
        },
    }
}

fn mem_done(ctx: &mut LaneCtx<'_>, now: SimTime, msg: Message, arrived: SimTime) {
    if matches!(msg.kind, MsgKind::CohReadReq { .. }) {
        let (coh, _) = ctx.coh.as_mut().expect("coherent memory completion");
        let st = coh
            .get_mut(&msg.tag)
            .expect("memory completion for unknown coherent transaction");
        st.mem_done = Some(now);
        try_finish_coherent(ctx, msg.tag, now);
    } else {
        let (resp, inject_at) = ctx.node_mut(msg.dst).server.on_mem_done(now, &msg, arrived);
        if ctx.trace.enabled() {
            let home = msg.dst.get();
            let svc_start = inject_at - ctx.cfg.rmc.server_proc_time;
            ctx.trace
                .push(msg.tag, Phase::ServerQueue, home, now, svc_start);
            ctx.trace
                .push(msg.tag, Phase::Reply, home, svc_start.max(now), inject_at);
        }
        ctx.sched(
            inject_at,
            resp.src.get(),
            Ev::Hop {
                msg: resp,
                at: resp.src,
            },
        );
    }
}

/// Release a coherent response once both the DRAM read and every snoop
/// response are in.
fn try_finish_coherent(ctx: &mut LaneCtx<'_>, tag: u64, now: SimTime) {
    let st = {
        let (coh, _) = ctx.coh.as_mut().expect("coherent state map");
        let st = coh.get(&tag).expect("coherent state exists");
        if st.awaiting_probes != 0 || st.mem_done.is_none() {
            return;
        }
        coh.remove(&tag).expect("checked above")
    };
    let (resp, inject_at) = ctx
        .node_mut(st.req.dst)
        .server
        .on_mem_done(now, &st.req, st.arrived);
    ctx.sched(
        inject_at,
        resp.src.get(),
        Ev::Hop {
            msg: resp,
            at: resp.src,
        },
    );
}

fn complete(ctx: &mut LaneCtx<'_>, comp: Completion) {
    ctx.trace.finish(comp.tag, comp.done_at, false);
    match ctx.pending.remove(&comp.tag).map(|p| p.owner) {
        Some(Owner::Thread(id)) => {
            let (wake, node, finished) = {
                let th = ctx.thread_mut(id);
                th.completed += 1;
                // Serving threads record the end-to-end latency a user
                // sees: arrival (or first offer) to completion.
                if let Some(since) = th.inflight_since.take() {
                    if let Some(h) = th.latency.as_deref_mut() {
                        h.record(comp.done_at.since(since));
                    }
                }
                (
                    th.next_issue_at(comp.done_at),
                    th.spec.node,
                    th.resolved() == th.spec.accesses,
                )
            };
            if finished {
                ctx.thread_mut(id).finished = Some(comp.done_at);
            } else {
                ctx.sched(wake, node.get(), Ev::ThreadWake { id });
            }
        }
        Some(Owner::Sync) => {
            *ctx.sync_done = Some((comp.tag, comp.done_at));
        }
        Some(Owner::Posted) => {} // fire-and-forget acknowledged
        None => panic!("completion for unowned tag {:#x}", comp.tag),
    }
}

/// Arm the loss-recovery timer for `tag` if messages can be lost — a lossy
/// fabric, or any fault plan (crashes and outages swallow traffic even over
/// lossless links).
fn arm_timeout(ctx: &mut LaneCtx<'_>, injected_at: SimTime, tag: u64, attempt: u32) {
    if ctx.cfg.fabric.loss_rate > 0.0 || !ctx.cfg.faults.is_empty() {
        let delay = backoff_delay(ctx.cfg, tag, attempt);
        ctx.sched(
            injected_at.saturating_add(delay),
            (tag >> 48) as u16,
            Ev::Timeout { tag, attempt },
        );
    }
}

fn on_timeout(ctx: &mut LaneCtx<'_>, now: SimTime, tag: u64, attempt: u32) {
    let Some(p) = ctx.pending.get_mut(&tag) else {
        return; // completed or aborted; stale timer
    };
    if p.attempt != attempt {
        return; // already retransmitted; a newer timer is armed
    }
    if p.attempt >= ctx.cfg.recovery.max_retries {
        // Retry budget exhausted: the home node is unresponsive. Failure
        // declaration touches cluster-wide state (directory, evacuation),
        // so it is deferred one lookahead window as a global event; the
        // pending transaction stays in place until the declaration sweeps
        // it up, keeping further timers stale-safe.
        let (observer, dead) = (p.msg.src, p.msg.dst);
        let at = now.saturating_add(suspect_delay(ctx.fab_shared));
        ctx.sched(at, GLOBAL_LANE, Ev::Suspect { observer, dead });
        return;
    }
    p.attempt += 1;
    let (msg, new_attempt) = (p.msg, p.attempt);
    let src = msg.src;
    let inject_at = ctx.node_mut(src).client.retransmit(now, tag);
    // The retransmit pass is loss-recovery work; the wait that led to this
    // timeout becomes Retry too, via gap-filling at finish().
    ctx.trace.push_attr(
        tag,
        Phase::Retry,
        src.get(),
        now,
        inject_at,
        Some(("attempt", new_attempt as u64)),
    );
    ctx.sched(inject_at, src.get(), Ev::Hop { msg, at: src });
    arm_timeout(ctx, inject_at, tag, new_attempt);
}

/// Record one failed access for thread `id` and either finish it or
/// schedule its next step.
fn thread_access_failed(ctx: &mut LaneCtx<'_>, now: SimTime, id: usize) {
    let (wake, node, finished) = {
        let th = ctx.thread_mut(id);
        th.failed += 1;
        th.inflight_since = None;
        (
            th.next_issue_at(now),
            th.spec.node,
            th.resolved() == th.spec.accesses,
        )
    };
    if finished {
        ctx.thread_mut(id).finished = Some(now);
    } else {
        ctx.sched(wake, node.get(), Ev::ThreadWake { id });
    }
}

/// Record one shed (admission-dropped) open-loop request for thread `id`
/// and either finish it or schedule its next arrival — the serving twin of
/// [`thread_access_failed`], with its own terminal counter so the
/// conservation oracle reads `completed + failed + shed == accesses`.
fn thread_shed(ctx: &mut LaneCtx<'_>, now: SimTime, id: usize) {
    let (wake, node, finished) = {
        let th = ctx.thread_mut(id);
        th.shed += 1;
        (
            th.next_issue_at(now),
            th.spec.node,
            th.resolved() == th.spec.accesses,
        )
    };
    if finished {
        ctx.thread_mut(id).finished = Some(now);
    } else {
        ctx.sched(wake, node.get(), Ev::ThreadWake { id });
    }
}

fn thread_step(ctx: &mut LaneCtx<'_>, now: SimTime, id: usize) {
    // A wake-up for a thread that died (its node crashed) or already
    // finished (e.g. its last access failed) is stale.
    let node = {
        let th = ctx.thread_mut(id);
        if th.finished.is_some() {
            return;
        }
        th.spec.node
    };
    if ctx.dead[node.index()] {
        return;
    }
    // Take the pending (NACKed or evacuated) access or generate a fresh one.
    let (dst, kind, addr) = {
        let th = ctx.thread_mut(id);
        if let Some(p) = th.pending.take() {
            p
        } else {
            if th.issued == th.spec.accesses {
                return; // nothing left to issue
            }
            th.issued += 1;
            // Open-loop serving threads stamp the request's scheduled
            // arrival as its first offer: wake-ups never run early
            // (`next_issue_at` clamps to the arrival), so on a backed-up
            // lane the arrival precedes `now` and the queueing delay lands
            // in the stall phase and the end-to-end latency.
            if let Some(&arrival) = th.arrivals.get((th.issued - 1) as usize) {
                th.pending_since = Some(arrival);
            }
            let slots_of = |len: u64| (len / th.spec.bytes as u64).max(1);
            let (base, len, slot) = if th.sequential {
                // Walk all zones end-to-end in order, wrapping. Each zone
                // contributes its own slot count — zones may differ in
                // size, so the walk position is resolved against the
                // cumulative slot total, not the first zone's.
                let total: u64 = th.spec.zones.iter().map(|&(_, l)| slots_of(l)).sum();
                let mut off = (th.issued - 1) % total;
                let mut zi = 0usize;
                while off >= slots_of(th.spec.zones[zi].1) {
                    off -= slots_of(th.spec.zones[zi].1);
                    zi += 1;
                }
                let (base, len) = th.spec.zones[zi];
                (base, len, off)
            } else if th.zipf.is_some() {
                // Zipf rank over the combined slot space (rank 0 hottest),
                // resolved against cumulative per-zone slot counts exactly
                // like the sequential walk.
                let mut off = th.zipf.as_ref().expect("checked above").sample(&mut th.rng) as u64;
                let mut zi = 0usize;
                while off >= slots_of(th.spec.zones[zi].1) {
                    off -= slots_of(th.spec.zones[zi].1);
                    zi += 1;
                }
                let (base, len) = th.spec.zones[zi];
                (base, len, off)
            } else {
                let zi = if th.spec.zones.len() == 1 {
                    0
                } else {
                    th.rng.below(th.spec.zones.len() as u64) as usize
                };
                let (base, len) = th.spec.zones[zi];
                (base, len, th.rng.below(slots_of(len)))
            };
            let _ = len;
            let addr = base + slot * th.spec.bytes as u64;
            let write = !th.coherent && th.rng.chance(th.spec.write_fraction);
            let kind = if th.coherent {
                MsgKind::CohReadReq {
                    bytes: th.spec.bytes,
                }
            } else if write {
                MsgKind::WriteReq {
                    bytes: th.spec.bytes,
                }
            } else {
                MsgKind::ReadReq {
                    bytes: th.spec.bytes,
                }
            };
            let (prefix, _) = cohfree_rmc::addr::split(addr);
            (NodeId::new(prefix), kind, addr)
        }
    };
    // The instant the access was *first* offered to the RMC — NACK wake-ups
    // re-offer the same access, and the serialization stall is measured from
    // the very first attempt.
    let first_offer = ctx.thread_mut(id).pending_since.take().unwrap_or(now);
    // Accesses into an evacuated zone follow it to its new home
    // (pre-evacuation NACKed pendings, pre-rewrite generated addresses).
    let (dst, addr) = match ctx
        .evac_remap(node)
        .iter()
        .copied()
        .find(|&(old, _, frames)| addr >= old && addr < old + frames * 4096)
    {
        Some((old, new, _)) => {
            let a = new + (addr - old);
            let (prefix, _) = cohfree_rmc::addr::split(a);
            (NodeId::new(prefix), a)
        }
        None => (dst, addr),
    };
    // An access aimed at a declared-failed home (no evacuation took it in)
    // fails instead of burning a retry budget each time.
    if ctx.node_mut(node).client.is_suspect(dst) {
        ctx.trace.fail_fast(node.get(), now);
        thread_access_failed(ctx, now, id);
        return;
    }
    // Admission control: the recovery manager has load-shed this target.
    // Defer the access one manager tick instead of piling onto the
    // overload; the preserved `pending_since` keeps the deferral inside
    // the transaction's eventual Stall phase, and re-admission is
    // guaranteed because backlogs are time-to-drain values that decay.
    // Lane code only *reads* the shed set here — it is mutated solely by
    // global manager events, the same partition-safety contract as the
    // suspect set.
    if ctx.node_mut(node).client.is_shed(dst) {
        // Open-loop serving threads drop the request instead of deferring:
        // an arrival-driven client cannot hold back load, so shedding is a
        // terminal outcome (counted, never retried). Closed-loop threads
        // keep the defer-and-retry discipline.
        if !ctx.thread_mut(id).arrivals.is_empty() {
            ctx.trace.fail_fast(node.get(), now);
            thread_shed(ctx, now, id);
            return;
        }
        let wake = now + ctx.cfg.manager.tick.max(SimDuration::ns(1));
        {
            let th = ctx.thread_mut(id);
            th.pending = Some((dst, kind, addr));
            th.pending_since = Some(first_offer);
        }
        ctx.node_mut(node).client.note_shed_deferral();
        ctx.sched(wake, node.get(), Ev::ThreadWake { id });
        return;
    }
    match ctx.node_mut(node).client.submit(now, dst, kind, addr) {
        Submit::Accepted { msg, inject_at } => {
            {
                let th = ctx.thread_mut(id);
                if th.latency.is_some() {
                    // End-to-end serving latency runs from the request's
                    // first offer (its arrival, for open-loop threads).
                    th.inflight_since = Some(first_offer);
                }
            }
            ctx.pending.insert(
                msg.tag,
                PendingTx {
                    owner: Owner::Thread(id),
                    msg,
                    attempt: 0,
                },
            );
            trace_submitted(ctx, first_offer, now, &msg, inject_at);
            ctx.sched(inject_at, node.get(), Ev::Hop { msg, at: node });
            arm_timeout(ctx, inject_at, msg.tag, 0);
        }
        Submit::Nacked { retry_at } => {
            let th = ctx.thread_mut(id);
            th.pending = Some((dst, kind, addr));
            th.pending_since = Some(first_offer);
            th.nack_retries += 1;
            ctx.sched(retry_at, node.get(), Ev::ThreadWake { id });
        }
    }
}

/// Open a trace for an accepted submission and attribute its stall,
/// client-queue and issue phases. `first_offer` is when the core first
/// wanted the access out (may precede `accepted_at` by NACK rounds).
pub(crate) fn trace_submitted(
    ctx: &mut LaneCtx<'_>,
    first_offer: SimTime,
    accepted_at: SimTime,
    msg: &Message,
    inject_at: SimTime,
) {
    if !ctx.trace.enabled() {
        return;
    }
    let node = msg.src.get();
    let tag = msg.tag;
    ctx.trace.begin(tag, node, first_offer);
    ctx.trace
        .push(tag, Phase::Stall, node, first_offer, accepted_at);
    let svc_start = inject_at - ctx.cfg.rmc.proc_time;
    ctx.trace
        .push(tag, Phase::ClientQueue, node, accepted_at, svc_start);
    ctx.trace.push(
        tag,
        Phase::Issue,
        node,
        svc_start.max(accepted_at),
        inject_at,
    );
}

/// Attribute one forwarded hop to its wire and fabric-queue phases. Probe
/// traffic shares its parent's tag and is not part of the requester-observed
/// critical path, so it is excluded.
fn trace_hop(
    ctx: &mut LaneCtx<'_>,
    msg: &Message,
    at: NodeId,
    now: SimTime,
    arrive: SimTime,
    queued: SimDuration,
) {
    if matches!(msg.kind, MsgKind::ProbeReq | MsgKind::ProbeResp) || !ctx.trace.enabled() {
        return;
    }
    let node = at.get();
    let tag = msg.tag;
    if queued.is_zero() {
        ctx.trace.push(tag, Phase::Wire, node, now, arrive);
    } else {
        // Router pass, FIFO wait on the link serializer, then serialization
        // + flight: three sub-intervals that tile the hop.
        let enq = now + ctx.cfg.fabric.router_delay;
        ctx.trace.push(tag, Phase::Wire, node, now, enq);
        ctx.trace
            .push(tag, Phase::FabricQueue, node, enq, enq + queued);
        ctx.trace.push(tag, Phase::Wire, node, enq + queued, arrive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delay_is_monotone_and_never_wraps() {
        let mut cfg = ClusterConfig::prototype();
        cfg.recovery.backoff_cap = u32::MAX; // worst case: no config clamp
        cfg.recovery.retry_jitter = 0.0; // monotonicity holds without jitter
        let mut prev = SimDuration::ZERO;
        for attempt in 0..200 {
            let d = backoff_delay(&cfg, 7, attempt);
            assert!(d >= cfg.rmc.timeout, "attempt {attempt} collapsed");
            assert!(d >= prev, "attempt {attempt} shrank the backoff");
            prev = d;
        }
        // The plateau is the absolute ceiling, which leaves ~1.8e7 retries
        // of headroom before the picosecond clock can saturate.
        assert_eq!(prev, BACKOFF_CEILING);
        assert!(prev.as_ps() < u64::MAX / 1_000_000);
    }

    #[test]
    fn backoff_delay_respects_the_config_cap() {
        let mut cfg = ClusterConfig::prototype();
        cfg.recovery.backoff_cap = 3;
        cfg.recovery.retry_jitter = 0.0;
        assert_eq!(backoff_delay(&cfg, 7, 5), backoff_delay(&cfg, 7, 3));
        assert_eq!(
            backoff_delay(&cfg, 7, 2).as_ns(),
            cfg.rmc.timeout.as_ns() * 4
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_bounded_and_capped() {
        let cfg = ClusterConfig::prototype(); // default jitter 0.25
        for attempt in 0..8 {
            for tag in [1u64 << 48, (2u64 << 48) + 3, 9] {
                let d = backoff_delay(&cfg, tag, attempt);
                assert_eq!(d, backoff_delay(&cfg, tag, attempt), "deterministic");
                let floor = {
                    let mut c = cfg;
                    c.recovery.retry_jitter = 0.0;
                    backoff_delay(&c, tag, attempt)
                };
                assert!(d >= floor, "jitter only ever delays");
                let ceil_ns = floor.as_ns_f64() * (1.0 + cfg.recovery.retry_jitter);
                assert!(
                    d.as_ns_f64() <= ceil_ns + 1.0,
                    "jitter bounded by the fraction"
                );
                assert!(d <= BACKOFF_CEILING);
            }
        }
    }

    #[test]
    fn backoff_jitter_spreads_synchronized_clients() {
        // N clients whose retries a shared outage synchronized: their tags
        // encode their node ids, so the first-retry delays must spread out
        // rather than land on one instant.
        let cfg = ClusterConfig::prototype();
        let delays: Vec<SimDuration> = (1..=8u64)
            .map(|node| backoff_delay(&cfg, node << 48, 1))
            .collect();
        let distinct: std::collections::BTreeSet<u64> = delays.iter().map(|d| d.as_ps()).collect();
        assert!(
            distinct.len() >= 6,
            "8 synchronized clients must spread to >= 6 distinct first-retry delays, got {distinct:?}"
        );
    }

    #[test]
    fn key_layout_orders_globals_first_and_lanes_by_node() {
        let g = make_key(GLOBAL_LANE, 0, 0, 7, 0);
        let l1 = make_key(1, 0, 2, 9, 3);
        let l2 = make_key(2, 0, 1, 0, 0);
        assert!(g < l1 && l1 < l2);
        assert_eq!(key_lane(g), GLOBAL_LANE);
        assert_eq!(key_lane(l2), 2);
        assert_eq!(key_gen(make_key(4, 5, 1, 1, 1)), 5);
        // Same-instant children of deeper generations sort after shallower
        // ones on the same lane.
        assert!(make_key(3, 1, 3, 0, 0) > make_key(3, 0, 9, u64::MAX >> 16, u16::MAX));
    }
}
