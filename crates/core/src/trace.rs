//! Access-trace recording, replay, and locality analysis.
//!
//! The paper's Equations 1–2 need two workload parameters nobody states for
//! real programs: `A_page` (accesses per page residency) and the effective
//! local access cost. This module measures them:
//!
//! * [`Tracer`] wraps any [`MemSpace`] and records every operation
//!   (allocation, read, write, compute) without changing behaviour;
//! * [`replay`] re-runs a trace against another backend — cross-backend
//!   timing comparisons of the *identical* access sequence;
//! * [`page_profile`] simulates the swap backend's page cache over the
//!   trace and returns the exact fault counts the real backend would incur;
//! * [`cache_profile`] simulates the CPU cache over the trace likewise.
//!
//! The `ext_locality` study uses these to *predict* each workload's
//! swap/remote-memory time from its trace via the paper's equations, then
//! validates the predictions against full simulation.

use crate::backend::{AccessStats, MemSpace};
use cohfree_mem::{Cache, CacheConfig, CacheOutcome};
use cohfree_os::swap::{PageCache, Touch};
use cohfree_sim::{SimDuration, SimTime};
use std::collections::HashSet;

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `alloc(bytes)` (the returned VA is deterministic, so it need not be
    /// recorded).
    Alloc {
        /// Bytes requested.
        bytes: u64,
    },
    /// Timed read of `len` bytes at `va`.
    Read {
        /// Virtual address.
        va: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Timed write of `len` bytes at `va`.
    Write {
        /// Virtual address.
        va: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Pure CPU time.
    Compute {
        /// Duration charged.
        d: SimDuration,
    },
}

/// A [`MemSpace`] wrapper that records every operation it forwards.
pub struct Tracer<M: MemSpace> {
    inner: M,
    ops: Vec<Op>,
}

impl<M: MemSpace> Tracer<M> {
    /// Wrap `inner`, recording from now on.
    pub fn new(inner: M) -> Tracer<M> {
        Tracer {
            inner,
            ops: Vec::new(),
        }
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &[Op] {
        &self.ops
    }

    /// Unwrap into the inner space and the trace.
    pub fn into_parts(self) -> (M, Vec<Op>) {
        (self.inner, self.ops)
    }
}

impl<M: MemSpace> MemSpace for Tracer<M> {
    fn alloc(&mut self, bytes: u64) -> u64 {
        self.ops.push(Op::Alloc { bytes });
        self.inner.alloc(bytes)
    }

    fn read(&mut self, va: u64, buf: &mut [u8]) {
        self.ops.push(Op::Read {
            va,
            len: buf.len() as u32,
        });
        self.inner.read(va, buf);
    }

    fn write(&mut self, va: u64, data: &[u8]) {
        self.ops.push(Op::Write {
            va,
            len: data.len() as u32,
        });
        self.inner.write(va, data);
    }

    fn compute(&mut self, d: SimDuration) {
        self.ops.push(Op::Compute { d });
        self.inner.compute(d);
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn stats(&self) -> AccessStats {
        self.inner.stats()
    }
}

/// Replay a trace against `mem` (same deterministic VA layout as the
/// original run, since every backend uses the same packed bump allocator).
/// Returns the simulated time the replay took.
pub fn replay<M: MemSpace + ?Sized>(mem: &mut M, trace: &[Op]) -> SimDuration {
    let t0 = mem.now();
    let mut buf = vec![0u8; 4096];
    for op in trace {
        match *op {
            Op::Alloc { bytes } => {
                mem.alloc(bytes);
            }
            Op::Read { va, len } => {
                if buf.len() < len as usize {
                    buf.resize(len as usize, 0);
                }
                mem.read(va, &mut buf[..len as usize]);
            }
            Op::Write { va, len } => {
                if buf.len() < len as usize {
                    buf.resize(len as usize, 0);
                }
                mem.write(va, &buf[..len as usize]);
            }
            Op::Compute { d } => mem.compute(d),
        }
    }
    mem.now().since(t0)
}

/// Exact page-level locality profile of a trace under a given resident-set
/// bound (mirrors [`crate::backend::SwapSpace`]'s fault semantics: first
/// touch is a zero-fill minor fault; re-touching an evicted page is major).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageProfile {
    /// Line-granular memory accesses in the trace.
    pub accesses: u64,
    /// Zero-fill (first-touch) minor faults.
    pub minor_faults: u64,
    /// Device-bound major faults.
    pub major_faults: u64,
    /// Dirty page write-outs.
    pub pages_out: u64,
    /// The paper's `A_page`: accesses per major fault (`inf` when no major
    /// faults occur — the working set fits).
    pub accesses_per_page: f64,
}

/// Compute the [`PageProfile`] of `trace` for a `cache_pages`-page resident
/// set, with accesses split into `line_bytes` chunks exactly as backends do.
pub fn page_profile(trace: &[Op], cache_pages: usize, line_bytes: u64) -> PageProfile {
    let mut cache = PageCache::new(cache_pages);
    let mut materialized: HashSet<u64> = HashSet::new();
    let mut p = PageProfile {
        accesses: 0,
        minor_faults: 0,
        major_faults: 0,
        pages_out: 0,
        accesses_per_page: f64::INFINITY,
    };
    for op in trace {
        let (va, len, write) = match *op {
            Op::Read { va, len } => (va, len, false),
            Op::Write { va, len } => (va, len, true),
            _ => continue,
        };
        let mut a = va & !(line_bytes - 1);
        let end = va + len as u64;
        while a < end {
            p.accesses += 1;
            let vpn = a / 4096;
            if let Touch::Miss { evicted } = cache.touch(vpn, write) {
                if let Some(e) = evicted {
                    if e.dirty {
                        p.pages_out += 1;
                    }
                }
                if materialized.insert(vpn) {
                    p.minor_faults += 1;
                } else {
                    p.major_faults += 1;
                }
            }
            a += line_bytes;
        }
    }
    if p.major_faults > 0 {
        p.accesses_per_page = p.accesses as f64 / p.major_faults as f64;
    }
    p
}

/// Exact CPU-cache profile of a trace (tag simulation over virtual
/// addresses; exact for single-extent bump mappings, see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheProfile {
    /// Line-granular accesses.
    pub accesses: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Dirty-victim writebacks (lines a write-back cache pushes out).
    pub writebacks: u64,
}

/// Compute the [`CacheProfile`] of `trace` under `cfg`.
pub fn cache_profile(trace: &[Op], cfg: CacheConfig) -> CacheProfile {
    let mut cache = Cache::new(cfg);
    let mut p = CacheProfile {
        accesses: 0,
        hits: 0,
        misses: 0,
        writebacks: 0,
    };
    let line = cfg.line_bytes as u64;
    for op in trace {
        let (va, len, write) = match *op {
            Op::Read { va, len } => (va, len, false),
            Op::Write { va, len } => (va, len, true),
            _ => continue,
        };
        let mut a = va & !(line - 1);
        let end = va + len as u64;
        while a < end {
            p.accesses += 1;
            match cache.access(a, write) {
                CacheOutcome::Hit => p.hits += 1,
                CacheOutcome::Miss { victim_writeback } => {
                    p.misses += 1;
                    if victim_writeback.is_some() {
                        p.writebacks += 1;
                    }
                }
            }
            a += line;
        }
    }
    p
}

/// Approximate TLB-walk count for a trace: misses of an LRU TLB over the
/// line-granular virtual-page stream. Slightly overcounts walks on fault
/// paths (a faulting access TLB-misses first), so callers comparing against
/// backend `tlb_walks` should subtract the fault counts.
pub fn tlb_misses(trace: &[Op], entries: usize, line_bytes: u64) -> u64 {
    let mut tlb = cohfree_os::pagetable::Tlb::new(cohfree_os::pagetable::TlbConfig { entries });
    let mut misses = 0;
    for op in trace {
        let (va, len) = match *op {
            Op::Read { va, len } | Op::Write { va, len } => (va, len),
            _ => continue,
        };
        let mut a = va & !(line_bytes - 1);
        let end = va + len as u64;
        while a < end {
            let vpn = a / 4096;
            if tlb.lookup(vpn).is_none() {
                misses += 1;
                tlb.insert(vpn, vpn * 4096);
            }
            a += line_bytes;
        }
    }
    misses
}

/// Total CPU time in a trace.
pub fn compute_total(trace: &[Op]) -> SimDuration {
    trace
        .iter()
        .filter_map(|op| match op {
            Op::Compute { d } => Some(*d),
            _ => None,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LocalMachine, SwapConfig, SwapSpace};
    use crate::config::ClusterConfig;
    use crate::NodeId;
    use cohfree_sim::Rng;

    fn workload<M: MemSpace>(mem: &mut M) -> u64 {
        // A mixed workload: populate, random touches, compute.
        let va = mem.alloc(64 * 4096);
        let mut rng = Rng::new(5);
        for p in 0..64u64 {
            mem.write_u64(va + p * 4096, p);
        }
        let mut acc = 0u64;
        for _ in 0..500 {
            let a = va + rng.below(64 * 4096 / 8) * 8;
            acc = acc.wrapping_add(mem.read_u64(a));
            mem.compute(SimDuration::ns(3));
        }
        acc
    }

    #[test]
    fn tracer_is_transparent() {
        let mut plain = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
        let plain_result = workload(&mut plain);
        let mut traced = Tracer::new(LocalMachine::new(ClusterConfig::prototype(), 1 << 30));
        let traced_result = workload(&mut traced);
        assert_eq!(plain_result, traced_result, "results must match");
        assert_eq!(plain.now(), traced.now(), "timing must match");
        assert_eq!(plain.stats(), traced.stats(), "stats must match");
        assert!(traced.trace().len() > 1_000);
    }

    #[test]
    fn replay_reproduces_timing_exactly() {
        let mut traced = Tracer::new(LocalMachine::new(ClusterConfig::prototype(), 1 << 30));
        workload(&mut traced);
        let (orig, trace) = traced.into_parts();
        let mut fresh = LocalMachine::new(ClusterConfig::prototype(), 1 << 30);
        let replayed = replay(&mut fresh, &trace);
        assert_eq!(replayed, orig.now().since(SimTime::ZERO));
        assert_eq!(fresh.stats().cache_misses, orig.stats().cache_misses);
    }

    #[test]
    fn page_profile_matches_real_swap_backend_exactly() {
        let mut traced = Tracer::new(LocalMachine::new(ClusterConfig::prototype(), 1 << 30));
        workload(&mut traced);
        let (_, trace) = traced.into_parts();
        let cache_pages = 16;
        let predicted = page_profile(&trace, cache_pages, 64);
        // Ground truth: replay on a real swap backend.
        let mut swap = SwapSpace::remote(
            ClusterConfig::prototype(),
            NodeId::new(1),
            SwapConfig {
                cache_pages,
                ..SwapConfig::default()
            },
        );
        replay(&mut swap, &trace);
        let s = swap.stats();
        assert_eq!(predicted.minor_faults, s.minor_faults, "minor faults");
        assert_eq!(predicted.major_faults, s.major_faults, "major faults");
        assert_eq!(predicted.pages_out, s.pages_out, "write-outs");
        assert_eq!(predicted.accesses, s.reads + s.writes, "access count");
    }

    #[test]
    fn cache_profile_matches_local_machine_exactly() {
        let mut traced = Tracer::new(LocalMachine::new(ClusterConfig::prototype(), 1 << 30));
        workload(&mut traced);
        let (orig, trace) = traced.into_parts();
        let predicted = cache_profile(&trace, ClusterConfig::prototype().cache);
        assert_eq!(predicted.hits, orig.stats().cache_hits);
        assert_eq!(predicted.misses, orig.stats().cache_misses);
    }

    #[test]
    fn compute_total_sums_compute_ops() {
        let trace = vec![
            Op::Compute {
                d: SimDuration::ns(5),
            },
            Op::Read { va: 0, len: 8 },
            Op::Compute {
                d: SimDuration::ns(7),
            },
        ];
        assert_eq!(compute_total(&trace), SimDuration::ns(12));
    }

    #[test]
    fn page_profile_infinite_a_page_when_resident() {
        let mut traced = Tracer::new(LocalMachine::new(ClusterConfig::prototype(), 1 << 30));
        workload(&mut traced);
        let (_, trace) = traced.into_parts();
        let p = page_profile(&trace, 1_000, 64); // everything fits
        assert_eq!(p.major_faults, 0);
        assert!(p.accesses_per_page.is_infinite());
        assert_eq!(p.minor_faults, 64);
    }
}
