//! Typed parsing for `COHFREE_*` environment knobs.
//!
//! Every runtime tuning knob (`COHFREE_PAR_WORKERS`,
//! `COHFREE_PARALLEL_WORLD`, `COHFREE_PAR_EPOCH`,
//! `COHFREE_PAR_PLACEMENT`, `COHFREE_METRICS`) goes through this module so
//! a garbage value
//! produces one clear, typed [`EnvKnobError`] at startup instead of being
//! silently ignored (the old `parse().unwrap_or(0)` behaviour) or panicking
//! deep inside the worker pool. Parsing is split from environment lookup so
//! both the accept and reject paths are unit-testable without mutating the
//! process environment.

use std::fmt;

/// A `COHFREE_*` environment variable carries a value the knob cannot use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvKnobError {
    /// The environment variable name.
    pub name: String,
    /// The rejected raw value.
    pub value: String,
    /// What the knob accepts (human-readable).
    pub expected: &'static str,
}

impl fmt::Display for EnvKnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.name, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvKnobError {}

fn err(name: &str, value: &str, expected: &'static str) -> EnvKnobError {
    EnvKnobError {
        name: name.to_string(),
        value: value.to_string(),
        expected,
    }
}

/// Parse a non-negative integer knob value (0 allowed).
pub fn parse_usize(name: &str, raw: &str) -> Result<usize, EnvKnobError> {
    raw.trim()
        .parse()
        .map_err(|_| err(name, raw, "a non-negative integer"))
}

/// Parse a strictly positive integer knob value.
pub fn parse_positive(name: &str, raw: &str) -> Result<u64, EnvKnobError> {
    match raw.trim().parse() {
        Ok(v) if v >= 1 => Ok(v),
        _ => Err(err(name, raw, "a positive integer")),
    }
}

/// Parse a filesystem-path knob value: any non-empty string. An empty
/// value is rejected (a typo like `COHFREE_METRICS=` must not silently
/// disable the export the caller asked for).
pub fn parse_path(name: &str, raw: &str) -> Result<String, EnvKnobError> {
    if raw.is_empty() {
        Err(err(name, raw, "a non-empty filesystem path"))
    } else {
        Ok(raw.to_string())
    }
}

/// The `COHFREE_METRICS` knob: the path the bench pipeline writes the
/// Prometheus-text metrics export to at exit. Setting it also switches the
/// [`cohfree_sim::metrics`] registry on (see `World::new`).
///
/// # Panics
/// Panics with the typed [`EnvKnobError`] message when the variable is set
/// to an empty string.
pub fn metrics_export_path() -> Option<String> {
    lookup("COHFREE_METRICS", parse_path).unwrap_or_else(|e| panic!("{e}"))
}

/// Parse a choice knob: returns the index of `raw` in `choices`
/// (ASCII-case-insensitive).
pub fn parse_choice(
    name: &str,
    raw: &str,
    choices: &'static [&'static str],
    expected: &'static str,
) -> Result<usize, EnvKnobError> {
    choices
        .iter()
        .position(|c| c.eq_ignore_ascii_case(raw.trim()))
        .ok_or_else(|| err(name, raw, expected))
}

/// Look `name` up in the environment and parse it with `parse`;
/// `Ok(None)` when unset.
pub fn lookup<T>(
    name: &str,
    parse: impl FnOnce(&str, &str) -> Result<T, EnvKnobError>,
) -> Result<Option<T>, EnvKnobError> {
    match std::env::var(name) {
        Ok(raw) => parse(name, &raw).map(Some),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_values() {
        assert_eq!(parse_usize("COHFREE_PAR_WORKERS", "0"), Ok(0));
        assert_eq!(parse_usize("COHFREE_PAR_WORKERS", " 3 "), Ok(3));
        assert_eq!(parse_positive("COHFREE_PARALLEL_WORLD", "8"), Ok(8));
        assert_eq!(
            parse_path("COHFREE_METRICS", "/tmp/metrics.prom"),
            Ok("/tmp/metrics.prom".to_string())
        );
        assert_eq!(parse_positive("COHFREE_PAR_EPOCH", "1"), Ok(1));
        assert_eq!(
            parse_choice(
                "COHFREE_PAR_PLACEMENT",
                "Proximity",
                &["proximity", "contiguous"],
                "proximity|contiguous"
            ),
            Ok(0)
        );
    }

    #[test]
    fn rejects_garbage_with_a_typed_error() {
        let e = parse_usize("COHFREE_PAR_WORKERS", "three").unwrap_err();
        assert_eq!(e.name, "COHFREE_PAR_WORKERS");
        assert_eq!(e.value, "three");
        let msg = e.to_string();
        assert!(
            msg.contains("COHFREE_PAR_WORKERS") && msg.contains("three"),
            "{msg}"
        );

        // An export path must not be empty: typed reject, not a silently
        // dropped export.
        let e = parse_path("COHFREE_METRICS", "").unwrap_err();
        assert_eq!(e.name, "COHFREE_METRICS");

        // Zero partitions is meaningless for the world knob: typed reject,
        // not the old silent fall-back to sequential.
        assert!(parse_positive("COHFREE_PARALLEL_WORLD", "0").is_err());
        assert!(parse_positive("COHFREE_PARALLEL_WORLD", "-4").is_err());
        assert!(parse_positive("COHFREE_PAR_EPOCH", "1e3").is_err());
        assert!(parse_choice(
            "COHFREE_PAR_PLACEMENT",
            "nearby",
            &["proximity", "contiguous"],
            "proximity|contiguous"
        )
        .is_err());
    }
}
