//! Cumulative per-process access statistics.

/// Counters every backend maintains; the benches print these next to
/// elapsed time so each figure can be explained mechanistically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Read operations (per cache-line chunk).
    pub reads: u64,
    /// Write operations (per cache-line chunk).
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// CPU-cache hits.
    pub cache_hits: u64,
    /// CPU-cache misses.
    pub cache_misses: u64,
    /// Page walks (TLB misses with valid mapping).
    pub tlb_walks: u64,
    /// Minor faults (first-touch materialization).
    pub minor_faults: u64,
    /// Major faults (page fetched from a backing device).
    pub major_faults: u64,
    /// Remote cache-line read transactions (RMC path).
    pub remote_reads: u64,
    /// Remote cache-line write transactions (RMC path, incl. writebacks).
    pub remote_writes: u64,
    /// Whole pages fetched from a backing device (swap baselines).
    pub pages_in: u64,
    /// Whole dirty pages written out (swap baselines).
    pub pages_out: u64,
    /// Allocation calls served.
    pub allocations: u64,
    /// Remote-zone reservations performed.
    pub reservations: u64,
    /// Demand accesses satisfied by the RMC prefetch buffer.
    pub prefetch_hits: u64,
    /// Prefetch transactions issued.
    pub prefetch_issued: u64,
}

impl AccessStats {
    /// Total load/store operations.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// CPU-cache hit ratio (0 when no cache traffic).
    pub fn cache_hit_ratio(&self) -> f64 {
        let t = self.cache_hits + self.cache_misses;
        if t == 0 {
            0.0
        } else {
            self.cache_hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = AccessStats::default();
        assert_eq!(s.cache_hit_ratio(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.cache_hit_ratio() - 0.75).abs() < 1e-12);
        s.reads = 2;
        s.writes = 5;
        assert_eq!(s.ops(), 7);
    }
}
