//! The swap baselines: remote swap and disk swap.
//!
//! Remote swap (the paper's main comparison, Section II and Figs. 9–11)
//! keeps a bounded set of pages in local memory; touching a non-resident
//! page raises a major fault whose handler, *in software*,
//!
//! 1. picks a victim (CLOCK), writing it back to its backing slot if dirty
//!    (a 4 KiB `PageWrite` message over the same fabric, or a disk write),
//! 2. fetches the faulting page (4 KiB `PageReq`/`PageResp`, or disk read),
//! 3. remaps and returns — charging the kernel fault overhead on top.
//!
//! Resident pages are accessed at full local speed, which is why locality
//! decides everything for this baseline: Equation 1 of the paper.

use super::stats::AccessStats;
use super::MemSpace;
use crate::config::ClusterConfig;
use crate::world::World;
use cohfree_fabric::{MsgKind, NodeId};
use cohfree_mem::{CacheHierarchy, Level, SparseStore};
use cohfree_os::disk::{Disk, DiskConfig};
use cohfree_os::pagetable::{PageTable, Translation, PAGE_BYTES};
use cohfree_os::swap::{PageCache, Touch};
use cohfree_sim::{FastMap, SimDuration, SimTime};

/// How remote-swap pages travel.
///
/// The remote-swap systems the paper compares against (its references
/// \[7]\[8]\[26]\[27]) move
/// pages over a commodity network through the kernel block layer — an
/// Ethernet-class path, not the RMC fabric. That is the default here. The
/// `Fabric` variant is an *idealized* swap that ships pages over the same
/// HT fabric the RMC uses (the `abl_swap_transport` ablation).
#[derive(Debug, Clone, Copy)]
pub enum SwapTransport {
    /// Kernel network path: per-page round-trip latency + wire time at the
    /// given bandwidth, serialized at the NIC.
    Ethernet {
        /// Software + network round-trip base cost per page operation.
        rtt: SimDuration,
        /// Wire bandwidth in bytes per microsecond (1 Gb/s ⇒ 125).
        bytes_per_us: f64,
    },
    /// Page messages over the RMC fabric (idealized best-case swap).
    Fabric,
}

impl Default for SwapTransport {
    fn default() -> Self {
        // 2010-era 1 GbE + kernel block/network stack.
        SwapTransport::Ethernet {
            rtt: SimDuration::us(100),
            bytes_per_us: 125.0,
        }
    }
}

/// Swap-space sizing.
#[derive(Debug, Clone)]
pub struct SwapConfig {
    /// Pages the local memory can hold (the resident-set bound).
    pub cache_pages: usize,
    /// Explicit backing servers for fabric-transport remote swap
    /// (round-robin); `None` lets the donor policy pick.
    pub servers: Option<Vec<NodeId>>,
    /// Frames per backing-zone reservation (fabric transport).
    pub zone_frames: u64,
    /// Transport for page movement.
    pub transport: SwapTransport,
}

impl Default for SwapConfig {
    fn default() -> Self {
        SwapConfig {
            cache_pages: 65_536, // 256 MiB resident set
            servers: None,
            zone_frames: 16_384,
            transport: SwapTransport::default(),
        }
    }
}

/// Where evicted pages live.
enum Backing {
    /// Remote node memory over the RMC fabric (idealized swap). The world
    /// is boxed: it is by far the largest variant.
    FabricRemote {
        world: Box<World>,
        zone: Option<(u64, u64, u64)>,
        server_rr: usize,
    },
    /// Remote memory server over an Ethernet-class kernel path (the
    /// baseline the paper compares against).
    Ethernet {
        nic: cohfree_sim::FifoServer,
        rtt: SimDuration,
        bytes_per_us: f64,
        next_offset: u64,
    },
    /// A local disk (disk swap).
    Disk { disk: Disk, next_offset: u64 },
}

/// Page residency metadata.
#[derive(Debug, Clone, Copy)]
struct PageHome {
    /// Backing slot (prefixed remote address, or disk offset).
    slot: u64,
    /// False until first touched: first touch is a zero-fill minor fault
    /// with no device traffic (like real demand-zero paging).
    materialized: bool,
}

/// A process whose memory overflows into a swap device.
pub struct SwapSpace {
    cfg: ClusterConfig,
    node: NodeId,
    backing: Backing,
    pt: PageTable,
    cache: CacheHierarchy,
    page_cache: PageCache,
    homes: FastMap<u64, PageHome>,
    frame_of: FastMap<u64, u64>,
    next_frame: u64,
    store: SparseStore,
    clock: SimTime,
    stats: AccessStats,
    swap_cfg: SwapConfig,
    bump_va: u64,
    /// First virtual page number not yet assigned a backing slot.
    next_vpn: u64,
    /// Charged per minor (zero-fill) fault.
    minor_fault_cost: SimDuration,
}

impl SwapSpace {
    /// Remote swap: pages beyond `swap_cfg.cache_pages` live in another
    /// node's memory, fetched page-at-a-time through the kernel over
    /// `swap_cfg.transport`.
    pub fn remote(cfg: ClusterConfig, node: NodeId, swap_cfg: SwapConfig) -> SwapSpace {
        let backing = match swap_cfg.transport {
            SwapTransport::Ethernet { rtt, bytes_per_us } => Backing::Ethernet {
                nic: cohfree_sim::FifoServer::new(),
                rtt,
                bytes_per_us,
                next_offset: 0,
            },
            SwapTransport::Fabric => Backing::FabricRemote {
                world: Box::new(World::new(cfg)),
                zone: None,
                server_rr: 0,
            },
        };
        Self::build(cfg, node, backing, swap_cfg)
    }

    /// Disk swap: pages beyond the resident bound live on a local disk.
    pub fn disk(
        cfg: ClusterConfig,
        node: NodeId,
        swap_cfg: SwapConfig,
        disk: DiskConfig,
    ) -> SwapSpace {
        Self::build(
            cfg,
            node,
            Backing::Disk {
                disk: Disk::new(disk),
                next_offset: 0,
            },
            swap_cfg,
        )
    }

    fn build(
        cfg: ClusterConfig,
        node: NodeId,
        backing: Backing,
        swap_cfg: SwapConfig,
    ) -> SwapSpace {
        SwapSpace {
            pt: PageTable::new(cfg.tlb),
            cache: CacheHierarchy::new(cfg.l1, cfg.cache),
            page_cache: PageCache::new(swap_cfg.cache_pages),
            homes: FastMap::default(),
            frame_of: FastMap::default(),
            next_frame: 0,
            store: SparseStore::new(),
            clock: SimTime::ZERO,
            stats: AccessStats::default(),
            bump_va: 0x1000,
            next_vpn: 1,
            minor_fault_cost: SimDuration::us(2),
            cfg,
            node,
            backing,
            swap_cfg,
        }
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The underlying cluster when pages travel over the RMC fabric
    /// (statistics, span traces); `None` for Ethernet/disk backing, which
    /// never instantiate a cluster.
    pub fn world(&self) -> Option<&World> {
        match &self.backing {
            Backing::FabricRemote { world, .. } => Some(world),
            Backing::Ethernet { .. } | Backing::Disk { .. } => None,
        }
    }

    /// Resident-set statistics from the page cache.
    pub fn swap_stats(&self) -> cohfree_os::swap::SwapStats {
        self.page_cache.stats()
    }

    /// Write every dirty resident page out to its backing slot (timed) —
    /// the equivalent of `msync`/quiescing the dirty list. Lets experiments
    /// separate a dirty populate phase from a clean read phase.
    pub fn flush_dirty_pages(&mut self) {
        for vpn in self.page_cache.flush_dirty() {
            let slot = self.homes.get(&vpn).expect("dirty page has a home").slot;
            self.page_out(slot);
        }
    }

    /// Assign a backing slot for one new page.
    fn new_slot(&mut self) -> u64 {
        match &mut self.backing {
            Backing::FabricRemote {
                world,
                zone,
                server_rr,
            } => {
                let need_new = match zone {
                    Some((_, frames, used)) => used == frames,
                    None => true,
                };
                if need_new {
                    let donor = self.swap_cfg.servers.as_ref().map(|s| {
                        let d = s[*server_rr % s.len()];
                        *server_rr += 1;
                        d
                    });
                    let resv = world.reserve_remote(self.node, self.swap_cfg.zone_frames, donor);
                    self.clock += self.cfg.os.reservation;
                    self.stats.reservations += 1;
                    *zone = Some((resv.prefixed_base, resv.frames, 0));
                }
                let (base, _, used) = zone.as_mut().expect("zone ensured");
                let slot = *base + *used * PAGE_BYTES;
                *used += 1;
                slot
            }
            Backing::Ethernet { next_offset, .. } | Backing::Disk { next_offset, .. } => {
                let slot = *next_offset;
                *next_offset += PAGE_BYTES;
                slot
            }
        }
    }

    /// Timed Ethernet page operation (request/response through the NIC).
    fn ethernet_page_op(
        clock: SimTime,
        nic: &mut cohfree_sim::FifoServer,
        rtt: SimDuration,
        bytes_per_us: f64,
    ) -> SimTime {
        let wire = SimDuration::ns_f64(PAGE_BYTES as f64 / bytes_per_us * 1e3);
        nic.accept(clock, wire) + rtt
    }

    /// Timed page write-out to the backing store.
    fn page_out(&mut self, slot: u64) {
        self.stats.pages_out += 1;
        match &mut self.backing {
            Backing::Ethernet {
                nic,
                rtt,
                bytes_per_us,
                ..
            } => {
                self.clock = Self::ethernet_page_op(self.clock, nic, *rtt, *bytes_per_us);
            }
            Backing::FabricRemote { world, .. } => {
                let (prefix, _) = cohfree_rmc::addr::split(slot);
                let home = NodeId::new(prefix);
                self.clock = world.blocking_transaction(
                    self.clock,
                    self.node,
                    home,
                    MsgKind::PageWrite {
                        bytes: PAGE_BYTES as u32,
                    },
                    slot,
                );
            }
            Backing::Disk { disk, .. } => {
                self.clock = disk.access(self.clock, slot, PAGE_BYTES as u32);
            }
        }
    }

    /// Timed page fetch from the backing store.
    fn page_in(&mut self, slot: u64) {
        self.stats.pages_in += 1;
        match &mut self.backing {
            Backing::Ethernet {
                nic,
                rtt,
                bytes_per_us,
                ..
            } => {
                self.clock = Self::ethernet_page_op(self.clock, nic, *rtt, *bytes_per_us);
            }
            Backing::FabricRemote { world, .. } => {
                let (prefix, _) = cohfree_rmc::addr::split(slot);
                let home = NodeId::new(prefix);
                self.clock = world.blocking_transaction(
                    self.clock,
                    self.node,
                    home,
                    MsgKind::PageReq {
                        bytes: PAGE_BYTES as u32,
                    },
                    slot,
                );
            }
            Backing::Disk { disk, .. } => {
                self.clock = disk.access(self.clock, slot, PAGE_BYTES as u32);
            }
        }
    }

    /// Major/minor fault handler: make `vpn` resident and return its frame.
    fn fault_in(&mut self, vpn: u64, write: bool) -> u64 {
        let home = *self
            .homes
            .get(&vpn)
            .unwrap_or_else(|| panic!("fault on unallocated vpn {vpn:#x}"));
        let touch = self.page_cache.touch(vpn, write);
        let frame = match touch {
            Touch::Hit => unreachable!("fault raised for a resident page"),
            Touch::Miss { evicted } => {
                // Evict the victim first (its frame is reused).
                let frame = if let Some(e) = evicted {
                    let victim_frame = self
                        .frame_of
                        .remove(&e.vpage)
                        .expect("resident victim must have a frame");
                    let victim_home = self.homes.get(&e.vpage).expect("victim has a home").slot;
                    self.pt.mark_swapped(e.vpage, victim_home);
                    // Page mover copies through/around the CPU cache; drop
                    // the victim's lines (their write-back cost is part of
                    // the page-out below).
                    self.cache.flush_range(victim_frame, PAGE_BYTES);
                    if e.dirty {
                        self.page_out(victim_home);
                    }
                    victim_frame
                } else {
                    let f = self.next_frame;
                    self.next_frame += PAGE_BYTES;
                    f
                };
                frame
            }
        };
        if home.materialized {
            // Real major fault: kernel overhead + device fetch.
            self.stats.major_faults += 1;
            self.clock += self.cfg.os.fault_overhead;
            self.page_in(home.slot);
        } else {
            // Demand-zero: kernel overhead only.
            self.stats.minor_faults += 1;
            self.clock += self.minor_fault_cost;
            self.homes.get_mut(&vpn).expect("checked").materialized = true;
        }
        self.frame_of.insert(vpn, frame);
        self.pt.map(vpn, frame);
        frame
    }

    /// One timed access covering a single cache line.
    fn line_access(&mut self, va: u64, write: bool) {
        let vpn = PageTable::vpn(va);
        let phys = loop {
            match self.pt.translate(va) {
                Translation::TlbHit { phys } => break phys,
                Translation::Walked { phys } => {
                    self.stats.tlb_walks += 1;
                    self.clock += self.cfg.os.tlb_walk;
                    break phys;
                }
                Translation::MajorFault { .. } => {
                    self.fault_in(vpn, write);
                }
                Translation::Unmapped => panic!("access to unallocated VA {va:#x}"),
            }
        };
        // Keep CLOCK reference bits warm on resident hits.
        if matches!(self.page_cache.touch(vpn, write), Touch::Miss { .. }) {
            unreachable!("page translated as present but not resident");
        }
        let line_bytes = self.cache.line_bytes();
        let out = self.cache.access(phys, write);
        match out.level {
            Level::L1 => {
                self.stats.cache_hits += 1;
                self.clock += self.cfg.os.l1_hit;
            }
            Level::L2 => {
                self.stats.cache_hits += 1;
                self.clock += self.cfg.os.cache_hit;
            }
            Level::Memory => {
                self.stats.cache_misses += 1;
                self.clock += self.cfg.os.cache_hit;
                // Demand fill from local DRAM.
                let fill = match &mut self.backing {
                    Backing::FabricRemote { world, .. } => {
                        world.local_access(self.clock, self.node, phys, line_bytes)
                    }
                    // No fabric world on these machines: charge the
                    // unloaded DRAM latency.
                    Backing::Ethernet { .. } | Backing::Disk { .. } => {
                        self.clock + SimDuration::ns(65)
                    }
                };
                self.clock = fill;
            }
        }
        for victim in out.memory_writebacks {
            // All frames are local; the hardware write buffer absorbs the
            // writeback off the critical path (the controller occupancy is
            // accounted when a world exists).
            if let Backing::FabricRemote { world, .. } = &mut self.backing {
                world.local_access(self.clock, self.node, victim, line_bytes);
            }
        }
    }

    fn timed_range(&mut self, va: u64, len: usize, write: bool) {
        let line = self.cache.line_bytes() as u64;
        let mut a = va & !(line - 1);
        let end = va + len as u64;
        while a < end {
            self.line_access(a, write);
            if write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            a += line;
        }
    }
}

impl MemSpace for SwapSpace {
    fn alloc(&mut self, bytes: u64) -> u64 {
        assert!(bytes > 0, "zero-byte allocation");
        self.clock += self.cfg.os.malloc_overhead;
        // Packed bump allocation (16-byte aligned); backing slots are
        // assigned as the cursor crosses page boundaries.
        let va = self.bump_va;
        self.bump_va = (va + bytes + 15) & !15;
        let last_vpn = PageTable::vpn(self.bump_va - 1);
        while self.next_vpn <= last_vpn {
            let slot = self.new_slot();
            self.homes.insert(
                self.next_vpn,
                PageHome {
                    slot,
                    materialized: false,
                },
            );
            self.pt.mark_swapped(self.next_vpn, slot);
            self.next_vpn += 1;
        }
        self.stats.allocations += 1;
        va
    }

    fn read(&mut self, va: u64, buf: &mut [u8]) {
        self.timed_range(va, buf.len(), false);
        self.stats.bytes_read += buf.len() as u64;
        self.store.read(va, buf);
    }

    fn write(&mut self, va: u64, data: &[u8]) {
        self.timed_range(va, data.len(), true);
        self.stats.bytes_written += data.len() as u64;
        self.store.write(va, data);
    }

    fn compute(&mut self, d: SimDuration) {
        self.clock += d;
    }

    fn now(&self) -> SimTime {
        self.clock
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn small_remote(cache_pages: usize) -> SwapSpace {
        SwapSpace::remote(
            ClusterConfig::prototype(),
            n(1),
            SwapConfig {
                cache_pages,
                ..SwapConfig::default()
            },
        )
    }

    fn small_fabric(cache_pages: usize) -> SwapSpace {
        SwapSpace::remote(
            ClusterConfig::prototype(),
            n(1),
            SwapConfig {
                cache_pages,
                zone_frames: 4096,
                servers: Some(vec![n(2)]),
                transport: SwapTransport::Fabric,
            },
        )
    }

    #[test]
    fn data_round_trips_through_swap() {
        let mut m = small_remote(4);
        let va = m.alloc(32 * 4096); // 32 pages, cache holds 4
        for i in 0..32u64 {
            m.write_u64(va + i * 4096, i * 10);
        }
        for i in 0..32u64 {
            assert_eq!(m.read_u64(va + i * 4096), i * 10, "page {i}");
        }
        assert!(m.stats().major_faults > 0, "must have swapped");
        assert!(m.stats().pages_out > 0, "dirty pages written out");
        assert!(m.stats().pages_in > 0, "pages fetched back");
    }

    #[test]
    fn first_touch_is_minor_not_major() {
        let mut m = small_remote(64);
        let va = m.alloc(16 * 4096);
        for i in 0..16u64 {
            m.write_u64(va + i * 4096, i);
        }
        let s = m.stats();
        assert_eq!(s.minor_faults, 16);
        assert_eq!(s.major_faults, 0);
        assert_eq!(s.pages_in, 0, "zero-fill needs no device reads");
    }

    #[test]
    fn working_set_in_cache_runs_at_local_speed() {
        let mut m = small_remote(64);
        let va = m.alloc(8 * 4096);
        for i in 0..8u64 {
            m.write_u64(va + i * 4096, i);
        }
        let t0 = m.now();
        for _ in 0..100 {
            for i in 0..8u64 {
                m.read_u64(va + i * 4096);
            }
        }
        let per_access = m.now().since(t0).as_ns_f64() / 800.0;
        assert!(per_access < 100.0, "resident access cost {per_access}ns");
        assert_eq!(m.stats().major_faults, 0);
    }

    #[test]
    fn thrashing_explodes_cost() {
        // Sequential sweep over 4x the resident set: near 100% fault rate.
        let mut m = small_remote(8);
        let va = m.alloc(32 * 4096);
        for i in 0..32u64 {
            m.write_u64(va + i * 4096, i);
        }
        let before = m.stats().major_faults;
        let t0 = m.now();
        for _ in 0..3 {
            for i in 0..32u64 {
                m.read_u64(va + i * 4096);
            }
        }
        let faults = m.stats().major_faults - before;
        assert!(faults >= 90, "expected thrash, got {faults} faults");
        let per_access = m.now().since(t0).as_us_f64() / 96.0;
        assert!(
            per_access > 5.0,
            "faulting access cost {per_access}us too low"
        );
    }

    #[test]
    fn fabric_transport_round_trips_and_reserves() {
        let mut m = small_fabric(4);
        let va = m.alloc(16 * 4096);
        for i in 0..16u64 {
            m.write_u64(va + i * 4096, i + 1);
        }
        for i in 0..16u64 {
            assert_eq!(m.read_u64(va + i * 4096), i + 1);
        }
        assert!(m.stats().reservations >= 1, "fabric swap reserves zones");
    }

    #[test]
    fn ethernet_swap_is_slower_than_idealized_fabric_swap() {
        let thrash = |mut m: SwapSpace| {
            let va = m.alloc(32 * 4096);
            for i in 0..32u64 {
                m.write_u64(va + i * 4096, i);
            }
            for _ in 0..2 {
                for i in 0..32u64 {
                    m.read_u64(va + i * 4096);
                }
            }
            m.now().since(SimTime::ZERO)
        };
        let eth = thrash(small_remote(8));
        let fab = thrash(small_fabric(8));
        assert!(
            eth.as_ns_f64() > 2.0 * fab.as_ns_f64(),
            "ethernet {eth} should be well above fabric {fab}"
        );
    }

    #[test]
    fn disk_swap_is_far_slower_than_remote_swap() {
        let run = |mut m: SwapSpace| {
            let va = m.alloc(16 * 4096);
            for i in 0..16u64 {
                m.write_u64(va + i * 4096, i);
            }
            for _ in 0..2 {
                for i in 0..16u64 {
                    m.read_u64(va + i * 4096);
                }
            }
            m.now().since(SimTime::ZERO)
        };
        let remote = run(small_remote(4));
        let disk = run(SwapSpace::disk(
            ClusterConfig::prototype(),
            n(1),
            SwapConfig {
                cache_pages: 4,
                ..SwapConfig::default()
            },
            DiskConfig::default(),
        ));
        assert!(
            disk.as_ns_f64() > remote.as_ns_f64() * 8.0,
            "disk {disk} should dwarf remote {remote}"
        );
    }

    #[test]
    fn clean_pages_are_not_written_back() {
        let mut m = small_remote(4);
        let va = m.alloc(16 * 4096);
        // Materialize all pages (writes), then sweep read-only twice.
        for i in 0..16u64 {
            m.write_u64(va + i * 4096, i);
        }
        let pages_out_after_populate = m.stats().pages_out;
        for _ in 0..2 {
            for i in 0..16u64 {
                m.read_u64(va + i * 4096);
            }
        }
        // Read-only sweeps evict only clean pages: pages_out grows at most
        // by the dirty residue of the populate phase (<= cache capacity).
        let growth = m.stats().pages_out - pages_out_after_populate;
        assert!(growth <= 4, "read-only thrash wrote {growth} pages");
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn wild_access_panics() {
        let mut m = small_remote(4);
        m.read_u64(0xF000_0000);
    }
}
