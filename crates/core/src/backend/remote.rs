//! The paper's system: non-coherent remote memory behind plain loads/stores.
//!
//! * **Allocation** interposes `malloc` (Section IV-B): zones are reserved
//!   from donor nodes through the reservation protocol, and page-table
//!   entries point straight at **prefixed** physical addresses. One
//!   reservation covers many allocations; its software cost is charged once.
//! * **Access** is pure hardware: TLB → cache → (local controller | RMC →
//!   fabric → home DRAM). Remote ranges are write-back cacheable, exactly
//!   like the prototype; dirty victims whose line lives remotely stall the
//!   core for a write transaction first (one outstanding RMC request).
//! * The optional [`cohfree_rmc::Prefetcher`] implements the paper's
//!   future-work extension; prefetched lines become usable after an
//!   unloaded round-trip estimate (optimistic-overlap model, documented in
//!   DESIGN.md).

use super::stats::AccessStats;
use super::MemSpace;
use crate::config::ClusterConfig;
use crate::world::World;
use cohfree_fabric::{MsgKind, NodeId};
use cohfree_mem::{CacheHierarchy, Level, SparseStore};
use cohfree_os::pagetable::{PageTable, Translation, PAGE_BYTES};
use cohfree_rmc::addr::RemoteRef;
use cohfree_rmc::{Prefetcher, PrefetcherConfig};
use cohfree_sim::{FastMap, SimDuration, SimTime};

/// Where allocations land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Every allocation is backed by remote memory (how the paper runs its
    /// experiments: "we allocate remote memory explicitly").
    AlwaysRemote,
    /// Use the node's private memory until it runs out, then go remote
    /// (what a production deployment would do).
    LocalFirst,
}

/// Tuning knobs beyond the cluster config.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Map remote ranges cacheable write-back (the prototype's setting).
    /// `false` models uncached I/O-space access for the ablation.
    pub cacheable: bool,
    /// Use HyperTransport *posted* semantics for remote stores and victim
    /// write-backs: the core continues once the RMC accepts the write,
    /// while the transaction drains in the background (it still holds a
    /// request slot and loads the fabric/home). `false` (the conservative
    /// prototype behaviour) stalls the core for the full round trip.
    pub posted_writes: bool,
    /// Enable the RMC sequential prefetcher.
    pub prefetch: Option<PrefetcherConfig>,
    /// Frames per reservation zone (amortizes the software cost).
    pub zone_frames: u64,
    /// Explicit memory-server list (round-robin); `None` lets the
    /// directory's donor policy decide.
    pub servers: Option<Vec<NodeId>>,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            cacheable: true,
            posted_writes: false,
            prefetch: None,
            zone_frames: 16_384, // 64 MiB zones
            servers: None,
        }
    }
}

struct Zone {
    prefixed_base: u64,
    frames: u64,
    used: u64,
}

/// A process on `node` using the paper's remote-memory architecture.
pub struct RemoteMemorySpace {
    world: World,
    node: NodeId,
    pt: PageTable,
    cache: CacheHierarchy,
    store: SparseStore,
    clock: SimTime,
    stats: AccessStats,
    policy: AllocPolicy,
    opts: RemoteOptions,
    bump_va: u64,
    /// First virtual page number not yet backed by a frame.
    next_vpn: u64,
    zone: Option<Zone>,
    server_rr: usize,
    prefetcher: Option<Prefetcher>,
    /// line address -> instant the prefetched line becomes usable.
    prefetch_ready: FastMap<u64, SimTime>,
}

impl RemoteMemorySpace {
    /// A process on `node` of a cluster described by `cfg`.
    pub fn new(cfg: ClusterConfig, node: NodeId, policy: AllocPolicy) -> RemoteMemorySpace {
        Self::with_options(cfg, node, policy, RemoteOptions::default())
    }

    /// Full-control constructor.
    pub fn with_options(
        cfg: ClusterConfig,
        node: NodeId,
        policy: AllocPolicy,
        opts: RemoteOptions,
    ) -> RemoteMemorySpace {
        let prefetcher = opts.prefetch.map(Prefetcher::new);
        RemoteMemorySpace {
            world: World::new(cfg),
            node,
            pt: PageTable::new(cfg.tlb),
            cache: CacheHierarchy::new(cfg.l1, cfg.cache),
            store: SparseStore::new(),
            clock: SimTime::ZERO,
            stats: AccessStats::default(),
            policy,
            opts,
            bump_va: 0x1000,
            next_vpn: 1,
            zone: None,
            server_rr: 0,
            prefetcher,
            prefetch_ready: FastMap::default(),
        }
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Access to the underlying cluster (statistics).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Bytes of remote memory currently borrowed by this process's region.
    pub fn borrowed_bytes(&self) -> u64 {
        self.world.region(self.node).borrowed_bytes()
    }

    /// Grab a frame of remote memory, reserving a fresh zone when needed.
    fn next_remote_frame(&mut self) -> u64 {
        let need_new = match &self.zone {
            Some(z) => z.used == z.frames,
            None => true,
        };
        if need_new {
            let donor = self.opts.servers.as_ref().map(|s| {
                let d = s[self.server_rr % s.len()];
                self.server_rr += 1;
                d
            });
            let resv = self
                .world
                .reserve_remote(self.node, self.opts.zone_frames, donor);
            self.clock += self.world.config().os.reservation;
            self.stats.reservations += 1;
            self.zone = Some(Zone {
                prefixed_base: resv.prefixed_base,
                frames: resv.frames,
                used: 0,
            });
        }
        let z = self.zone.as_mut().expect("zone just ensured");
        let frame = z.prefixed_base + z.used * PAGE_BYTES;
        z.used += 1;
        frame
    }

    /// Blocking remote read of one line; returns completion time.
    fn remote_read(&mut self, phys: u64, home: NodeId, bytes: u32) -> SimTime {
        self.stats.remote_reads += 1;
        self.world.blocking_transaction(
            self.clock,
            self.node,
            home,
            MsgKind::ReadReq { bytes },
            phys,
        )
    }

    /// Remote write of one line; returns the instant the core continues
    /// (full round trip, or RMC acceptance under posted semantics).
    fn remote_write(&mut self, phys: u64, home: NodeId, bytes: u32) -> SimTime {
        self.stats.remote_writes += 1;
        if self.opts.posted_writes {
            self.world.posted_transaction(
                self.clock,
                self.node,
                home,
                MsgKind::WriteReq { bytes },
                phys,
            )
        } else {
            self.world.blocking_transaction(
                self.clock,
                self.node,
                home,
                MsgKind::WriteReq { bytes },
                phys,
            )
        }
    }

    /// Settle all in-flight posted writes (a memory-barrier/`sfence`
    /// equivalent); the clock advances to the drain point.
    pub fn quiesce(&mut self) {
        let t = self.world.drain_background();
        self.clock = self.clock.max(t);
    }

    fn home_of(&self, phys: u64) -> Option<NodeId> {
        match cohfree_rmc::addr::decode(self.node, phys).expect_no_loopback() {
            RemoteRef::Remote { home, .. } => Some(home),
            RemoteRef::Local { .. } => None,
            RemoteRef::Loopback { .. } => unreachable!(),
        }
    }

    /// Fetch one remote line into the cache path, consulting the prefetcher.
    fn fetch_remote_line(&mut self, line_phys: u64, home: NodeId, line_bytes: u32) {
        let decision = match self.prefetcher.as_mut() {
            Some(pf) => pf.access(line_phys),
            None => {
                self.clock = self.remote_read(line_phys, home, line_bytes);
                return;
            }
        };
        if decision.buffer_hit {
            let ready = self.prefetch_ready.remove(&line_phys).unwrap_or(self.clock);
            // Wait for the prefetch to land, then a buffer-speed fill.
            self.clock = self.clock.max(ready) + self.world.config().os.cache_hit;
            self.stats.prefetch_hits += 1;
        } else {
            self.clock = self.remote_read(line_phys, home, line_bytes);
        }
        // Launch newly decided prefetches (optimistic overlap: they complete
        // one unloaded round trip later without stalling the core; see
        // DESIGN.md).
        let est = self
            .world
            .estimate_remote_read_latency(self.node, home, line_bytes);
        for l in decision.issue {
            self.prefetch_ready.insert(l, self.clock + est);
            self.prefetcher
                .as_mut()
                .expect("prefetcher present on this path")
                .fill(l);
            self.stats.prefetch_issued += 1;
        }
    }

    /// One timed access covering a single cache line.
    fn line_access(&mut self, va: u64, write: bool) {
        let phys = match self.pt.translate(va) {
            Translation::TlbHit { phys } => phys,
            Translation::Walked { phys } => {
                self.stats.tlb_walks += 1;
                self.clock += self.world.config().os.tlb_walk;
                phys
            }
            Translation::MajorFault { .. } => {
                unreachable!("remote-memory pages are pinned, never swapped")
            }
            Translation::Unmapped => panic!("access to unallocated VA {va:#x}"),
        };
        let line_bytes = self.cache.line_bytes();
        let home = self.home_of(phys);

        if let (Some(home), false) = (home, self.opts.cacheable) {
            // Uncached I/O-space access: every load/store is a transaction
            // of the access size (8 B), no cache involved.
            if write {
                self.clock = self.remote_write(phys, home, 8);
            } else {
                self.clock = self.remote_read(phys, home, 8);
            }
            return;
        }

        let out = self.cache.access(phys, write);
        match out.level {
            Level::L1 => {
                self.stats.cache_hits += 1;
                self.clock += self.world.config().os.l1_hit;
            }
            Level::L2 => {
                self.stats.cache_hits += 1;
                self.clock += self.world.config().os.cache_hit;
            }
            Level::Memory => {
                self.stats.cache_misses += 1;
                self.clock += self.world.config().os.cache_hit;
                // Victims displaced out of the hierarchy go home first: the
                // single RMC slot serializes remote write-backs before the
                // demand fetch (local ones are absorbed by the write buffer).
                for victim in &out.memory_writebacks {
                    match self.home_of(*victim) {
                        None => {
                            self.world
                                .local_access(self.clock, self.node, *victim, line_bytes);
                        }
                        Some(vhome) => {
                            self.clock = self.remote_write(*victim, vhome, line_bytes);
                        }
                    }
                }
                match home {
                    None => {
                        self.clock = self
                            .world
                            .local_access(self.clock, self.node, phys, line_bytes);
                    }
                    Some(h) => {
                        self.fetch_remote_line(phys & !(line_bytes as u64 - 1), h, line_bytes)
                    }
                }
            }
        }
    }

    fn timed_range(&mut self, va: u64, len: usize, write: bool) {
        let line = self.cache.line_bytes() as u64;
        let mut a = va & !(line - 1);
        let end = va + len as u64;
        while a < end {
            self.line_access(a, write);
            if write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            a += line;
        }
    }

    /// Flush the CPU cache, writing every dirty line back to its home — the
    /// explicit flush the prototype performs before a read-only parallel
    /// phase (Section IV-B).
    pub fn flush_cache(&mut self) {
        for victim in self.cache.flush_all() {
            match self.home_of(victim) {
                None => {
                    let lb = self.cache.line_bytes();
                    self.world.local_access(self.clock, self.node, victim, lb);
                }
                Some(h) => {
                    let lb = self.cache.line_bytes();
                    self.clock = self.remote_write(victim, h, lb);
                }
            }
        }
    }
}

impl MemSpace for RemoteMemorySpace {
    fn alloc(&mut self, bytes: u64) -> u64 {
        assert!(bytes > 0, "zero-byte allocation");
        self.clock += self.world.config().os.malloc_overhead;
        // Packed bump allocation (16-byte aligned), like the interposed
        // malloc of the prototype; pages are mapped as the cursor crosses
        // page boundaries.
        let va = self.bump_va;
        self.bump_va = (va + bytes + 15) & !15;
        let last_vpn = PageTable::vpn(self.bump_va - 1);
        while self.next_vpn <= last_vpn {
            let frame = match self.policy {
                AllocPolicy::AlwaysRemote => self.next_remote_frame(),
                AllocPolicy::LocalFirst => match self.world.alloc_private_frame(self.node) {
                    Some(f) => f,
                    None => self.next_remote_frame(),
                },
            };
            self.pt.map(self.next_vpn, frame);
            self.next_vpn += 1;
        }
        self.stats.allocations += 1;
        va
    }

    fn read(&mut self, va: u64, buf: &mut [u8]) {
        self.timed_range(va, buf.len(), false);
        self.stats.bytes_read += buf.len() as u64;
        self.store.read(va, buf);
    }

    fn write(&mut self, va: u64, data: &[u8]) {
        self.timed_range(va, data.len(), true);
        self.stats.bytes_written += data.len() as u64;
        self.store.write(va, data);
    }

    fn compute(&mut self, d: SimDuration) {
        self.clock += d;
    }

    fn now(&self) -> SimTime {
        self.clock
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn space() -> RemoteMemorySpace {
        RemoteMemorySpace::new(ClusterConfig::prototype(), n(1), AllocPolicy::AlwaysRemote)
    }

    #[test]
    fn data_round_trips_through_remote_memory() {
        let mut m = space();
        let va = m.alloc(1 << 20);
        assert!(m.borrowed_bytes() > 0, "allocation reserved remote memory");
        m.write_u64(va + 4096, 1234);
        assert_eq!(m.read_u64(va + 4096), 1234);
        assert_eq!(m.read_u64(va), 0);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn wild_access_panics() {
        let mut m = space();
        let va = m.alloc(4096);
        m.read_u64(va + 8192);
    }

    #[test]
    fn remote_miss_latency_exceeds_microsecond_class() {
        let mut m = space();
        let va = m.alloc(1 << 16);
        let t0 = m.now();
        m.read_u64(va);
        let miss = m.now().since(t0);
        assert!(miss > SimDuration::ns(800), "remote miss {miss} too fast");
        let t1 = m.now();
        m.read_u64(va);
        assert_eq!(m.now().since(t1), ClusterConfig::prototype().os.cache_hit);
        assert_eq!(m.stats().remote_reads, 1);
        assert_eq!(m.stats().cache_hits, 1);
    }

    #[test]
    fn one_zone_serves_many_allocations() {
        let mut m = space();
        for _ in 0..16 {
            m.alloc(64 << 10);
        }
        assert_eq!(m.stats().reservations, 1, "zone should amortize");
        assert_eq!(m.stats().allocations, 16);
    }

    #[test]
    fn local_first_uses_private_memory() {
        let mut cfg = ClusterConfig::prototype();
        cfg.private_bytes = 1 << 20; // tiny private region
        cfg.pool_bytes = 8 << 30;
        let mut m = RemoteMemorySpace::with_options(
            cfg,
            n(1),
            AllocPolicy::LocalFirst,
            RemoteOptions::default(),
        );
        let va = m.alloc(512 << 10); // fits private
        m.write_u64(va, 7);
        assert_eq!(m.stats().reservations, 0);
        // Exceed the private region: spills to remote.
        m.alloc(2 << 20);
        assert_eq!(m.stats().reservations, 1);
    }

    #[test]
    fn explicit_servers_round_robin() {
        let opts = RemoteOptions {
            zone_frames: 256,
            servers: Some(vec![n(2), n(5)]),
            ..RemoteOptions::default()
        };
        let mut m = RemoteMemorySpace::with_options(
            ClusterConfig::prototype(),
            n(1),
            AllocPolicy::AlwaysRemote,
            opts,
        );
        m.alloc(3 * 256 * 4096); // three zones
        let lenders = m.world().region(n(1)).lenders();
        assert_eq!(lenders, vec![n(2), n(5)]);
        assert_eq!(m.stats().reservations, 3);
    }

    #[test]
    fn dirty_victims_write_back_remotely() {
        // A cache-thrashing write pattern must generate remote writes.
        let cfg = {
            let mut c = ClusterConfig::prototype();
            c.cache.sets = 4;
            c.cache.ways = 2; // 512 B cache
            c
        };
        let mut m = RemoteMemorySpace::with_options(
            cfg,
            n(1),
            AllocPolicy::AlwaysRemote,
            RemoteOptions::default(),
        );
        let va = m.alloc(1 << 20);
        for i in 0..64 {
            m.write_u64(va + i * 4096, i);
        }
        assert!(m.stats().remote_writes > 0, "expected dirty writebacks");
    }

    #[test]
    fn flush_cache_pushes_dirty_lines_home() {
        let mut m = space();
        let va = m.alloc(4096);
        m.write_u64(va, 1);
        let before = m.stats().remote_writes;
        m.flush_cache();
        assert_eq!(m.stats().remote_writes, before + 1);
        // After the flush the next read misses again.
        let misses = m.stats().cache_misses;
        m.read_u64(va);
        assert_eq!(m.stats().cache_misses, misses + 1);
    }

    #[test]
    fn uncacheable_mode_hits_the_fabric_every_time() {
        let opts = RemoteOptions {
            cacheable: false,
            ..RemoteOptions::default()
        };
        let mut m = RemoteMemorySpace::with_options(
            ClusterConfig::prototype(),
            n(1),
            AllocPolicy::AlwaysRemote,
            opts,
        );
        let va = m.alloc(4096);
        m.read_u64(va);
        m.read_u64(va);
        m.read_u64(va);
        assert_eq!(m.stats().remote_reads, 3, "no caching in UC mode");
        assert_eq!(m.stats().cache_hits, 0);
    }

    #[test]
    fn posted_writes_accelerate_write_heavy_patterns() {
        let run = |posted: bool| {
            let cfg = {
                let mut c = ClusterConfig::prototype();
                c.cache.sets = 4;
                c.cache.ways = 2; // tiny cache: writes spill constantly
                c
            };
            let mut m = RemoteMemorySpace::with_options(
                cfg,
                n(1),
                AllocPolicy::AlwaysRemote,
                RemoteOptions {
                    posted_writes: posted,
                    ..RemoteOptions::default()
                },
            );
            let va = m.alloc(1 << 20);
            for i in 0..2_000u64 {
                m.write_u64(va + (i * 4096) % (1 << 20), i);
            }
            m.quiesce();
            (m.now().since(SimTime::ZERO), m.stats().remote_writes)
        };
        let (blocking, wb_b) = run(false);
        let (posted, wb_p) = run(true);
        assert_eq!(wb_b, wb_p, "same write-back traffic either way");
        assert!(
            posted.as_ns_f64() < blocking.as_ns_f64() * 0.8,
            "posted {posted} should beat blocking {blocking}"
        );
    }

    #[test]
    fn posted_writes_preserve_functional_behaviour() {
        let mut m = RemoteMemorySpace::with_options(
            ClusterConfig::prototype(),
            n(1),
            AllocPolicy::AlwaysRemote,
            RemoteOptions {
                posted_writes: true,
                ..RemoteOptions::default()
            },
        );
        let va = m.alloc(1 << 20);
        for i in 0..1_000u64 {
            m.write_u64(va + i * 64, i * 3);
        }
        m.flush_cache();
        m.quiesce();
        for i in 0..1_000u64 {
            assert_eq!(m.read_u64(va + i * 64), i * 3);
        }
    }

    #[test]
    fn prefetcher_accelerates_sequential_scans() {
        let mk = |pf: Option<PrefetcherConfig>| {
            let opts = RemoteOptions {
                prefetch: pf,
                ..RemoteOptions::default()
            };
            let mut m = RemoteMemorySpace::with_options(
                ClusterConfig::prototype(),
                n(1),
                AllocPolicy::AlwaysRemote,
                opts,
            );
            let va = m.alloc(1 << 20);
            let mut buf = [0u8; 8];
            for i in 0..4096u64 {
                m.read(va + i * 64, &mut buf); // line-stride scan
            }
            m.now().since(SimTime::ZERO)
        };
        let base = mk(None);
        let with_pf = mk(Some(PrefetcherConfig::default()));
        assert!(
            with_pf.as_ns_f64() < base.as_ns_f64() * 0.8,
            "prefetching should cut sequential scan time: {with_pf} vs {base}"
        );
    }
}
