//! Process-level memory backends.
//!
//! A workload is written once against [`MemSpace`] — allocate, load, store,
//! spend CPU time — and runs unchanged over any backend, which is exactly
//! how the paper compares its prototype against remote swap and against a
//! hypothetical big-memory machine:
//!
//! | backend | models | access path |
//! |---------|--------|-------------|
//! | [`LocalMachine`] | one machine with all the memory local | TLB → cache → local DRAM |
//! | [`RemoteMemorySpace`] | **the paper's system** | TLB → cache → (local DRAM \| RMC → fabric → home DRAM) |
//! | [`SwapSpace`] (remote) | remote swap over the same fabric | TLB → page cache → fault: OS + 4 KiB page messages |
//! | `SwapSpace` (disk) | classic disk swap | TLB → page cache → fault: OS + disk |
//!
//! All timing flows through the same component models, so comparisons
//! isolate the *architecture*, not the calibration.

mod local;
mod remote;
mod stats;
mod swap;

pub use local::LocalMachine;
pub use remote::{AllocPolicy, RemoteMemorySpace, RemoteOptions};
pub use stats::AccessStats;
pub use swap::{SwapConfig, SwapSpace, SwapTransport};

use cohfree_sim::{SimDuration, SimTime};

/// A process's view of memory: virtual addressing, timed loads/stores, and
/// a simulated clock.
///
/// Functional contents are exact: every byte written is the byte read back,
/// whatever the backend moves around underneath.
pub trait MemSpace {
    /// Allocate `bytes` of zeroed memory; returns its virtual address.
    /// (The interposed-`malloc` entry point of Section IV-B.)
    fn alloc(&mut self, bytes: u64) -> u64;

    /// Timed read of `buf.len()` bytes at `va`.
    fn read(&mut self, va: u64, buf: &mut [u8]);

    /// Timed write of `data` at `va`.
    fn write(&mut self, va: u64, data: &[u8]);

    /// Charge pure CPU time (the workload's own computation).
    fn compute(&mut self, d: SimDuration);

    /// Current simulated time of this process.
    fn now(&self) -> SimTime;

    /// Cumulative access statistics.
    fn stats(&self) -> AccessStats;

    /// Timed read of a little-endian `u64`.
    fn read_u64(&mut self, va: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(va, &mut b);
        u64::from_le_bytes(b)
    }

    /// Timed write of a little-endian `u64`.
    fn write_u64(&mut self, va: u64, v: u64) {
        self.write(va, &v.to_le_bytes());
    }

    /// Timed read of a little-endian `f64`.
    fn read_f64(&mut self, va: u64) -> f64 {
        f64::from_bits(self.read_u64(va))
    }

    /// Timed write of a little-endian `f64`.
    fn write_f64(&mut self, va: u64, v: f64) {
        self.write_u64(va, v.to_bits());
    }
}
