//! The big-memory single machine ("local memory" reference).
//!
//! The paper compares its prototype against "a single machine populated
//! with 128 GB of local memory, thus avoiding the penalty of remote
//! accesses". Such a machine does not honor the 14-bit prefix window (it is
//! hypothetical), so this backend uses the DRAM and cache models directly
//! without a fabric.

use super::stats::AccessStats;
use super::MemSpace;
use crate::config::ClusterConfig;
use cohfree_mem::{CacheHierarchy, Level, NodeMemory, SparseStore};
use cohfree_os::pagetable::{PageTable, Translation, PAGE_BYTES};
use cohfree_sim::{SimDuration, SimTime};

/// A process on a machine whose entire memory is local.
pub struct LocalMachine {
    mem: NodeMemory,
    cache: CacheHierarchy,
    pt: PageTable,
    store: SparseStore,
    clock: SimTime,
    stats: AccessStats,
    timing: crate::config::OsTiming,
    bump_va: u64,
    /// First virtual page number not yet backed by a frame.
    next_vpn: u64,
    bump_frame: u64,
    mem_bytes: u64,
}

impl LocalMachine {
    /// A machine with `total_bytes` of local memory, using `cfg`'s DRAM,
    /// cache and OS timing calibration.
    pub fn new(cfg: ClusterConfig, total_bytes: u64) -> LocalMachine {
        let big = ClusterConfig::big_local_machine(total_bytes);
        LocalMachine {
            mem: NodeMemory::new(big.dram),
            cache: CacheHierarchy::new(cfg.l1, cfg.cache),
            pt: PageTable::new(cfg.tlb),
            store: SparseStore::new(),
            clock: SimTime::ZERO,
            stats: AccessStats::default(),
            timing: cfg.os,
            bump_va: 0x1000, // keep VA 0 unmapped (null-guard)
            next_vpn: 1,
            bump_frame: 0,
            mem_bytes: total_bytes,
        }
    }

    /// Bytes of physical memory installed.
    pub fn memory_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// One timed access covering a single cache line.
    fn line_access(&mut self, va: u64, write: bool) {
        let phys = match self.pt.translate(va) {
            Translation::TlbHit { phys } => phys,
            Translation::Walked { phys } => {
                self.stats.tlb_walks += 1;
                self.clock += self.timing.tlb_walk;
                phys
            }
            Translation::MajorFault { .. } => unreachable!("local machine never swaps"),
            Translation::Unmapped => panic!("access to unallocated VA {va:#x}"),
        };
        let out = self.cache.access(phys, write);
        match out.level {
            Level::L1 => {
                self.stats.cache_hits += 1;
                self.clock += self.timing.l1_hit;
            }
            Level::L2 => {
                self.stats.cache_hits += 1;
                self.clock += self.timing.cache_hit;
            }
            Level::Memory => {
                self.stats.cache_misses += 1;
                self.clock += self.timing.cache_hit; // lookup cost
                self.clock = self.mem.access(self.clock, phys, self.cache.line_bytes());
            }
        }
        for victim in out.memory_writebacks {
            // Writebacks to local DRAM are buffered by hardware: they
            // occupy the controller but do not stall the core.
            self.mem.access(self.clock, victim, self.cache.line_bytes());
        }
    }

    fn timed_range(&mut self, va: u64, len: usize, write: bool) {
        let line = self.cache.line_bytes() as u64;
        let mut a = va & !(line - 1);
        let end = va + len as u64;
        while a < end {
            self.line_access(a, write);
            if write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            a += line;
        }
    }
}

impl MemSpace for LocalMachine {
    fn alloc(&mut self, bytes: u64) -> u64 {
        assert!(bytes > 0, "zero-byte allocation");
        self.clock += self.timing.malloc_overhead;
        // Allocations pack (16-byte aligned), like a real malloc: B-tree
        // nodes straddle page boundaries exactly as the paper describes.
        let va = self.bump_va;
        self.bump_va = (va + bytes + 15) & !15;
        let last_vpn = PageTable::vpn(self.bump_va - 1);
        while self.next_vpn <= last_vpn {
            assert!(
                self.bump_frame + PAGE_BYTES <= self.mem_bytes,
                "local machine out of memory ({} bytes installed)",
                self.mem_bytes
            );
            self.pt.map(self.next_vpn, self.bump_frame);
            self.bump_frame += PAGE_BYTES;
            self.next_vpn += 1;
        }
        self.stats.allocations += 1;
        va
    }

    fn read(&mut self, va: u64, buf: &mut [u8]) {
        self.timed_range(va, buf.len(), false);
        self.stats.bytes_read += buf.len() as u64;
        self.store.read(va, buf);
    }

    fn write(&mut self, va: u64, data: &[u8]) {
        self.timed_range(va, data.len(), true);
        self.stats.bytes_written += data.len() as u64;
        self.store.write(va, data);
    }

    fn compute(&mut self, d: SimDuration) {
        self.clock += d;
    }

    fn now(&self) -> SimTime {
        self.clock
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> LocalMachine {
        LocalMachine::new(ClusterConfig::prototype(), 128 << 30)
    }

    #[test]
    fn round_trip_data() {
        let mut m = machine();
        let va = m.alloc(1 << 16);
        m.write_u64(va + 8, 0xABCD);
        assert_eq!(m.read_u64(va + 8), 0xABCD);
        assert_eq!(m.read_u64(va), 0, "allocation is zeroed");
    }

    #[test]
    fn cache_makes_repeat_access_cheap() {
        let mut m = machine();
        let va = m.alloc(4096);
        m.read_u64(va);
        let t1 = m.now();
        m.read_u64(va);
        let dt = m.now().since(t1);
        assert_eq!(dt, ClusterConfig::prototype().os.cache_hit);
        let s = m.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn multi_line_reads_charge_per_line() {
        let mut m = machine();
        let va = m.alloc(4096);
        let mut buf = vec![0u8; 256]; // 4 lines
        m.read(va, &mut buf);
        assert_eq!(m.stats().reads, 4);
        assert_eq!(m.stats().bytes_read, 256);
    }

    #[test]
    fn tlb_walks_counted() {
        let mut m = machine();
        let va = m.alloc(1 << 20);
        // Touch 256 distinct pages: each first touch walks.
        for p in 0..256u64 {
            m.read_u64(va + p * 4096);
        }
        assert_eq!(m.stats().tlb_walks, 256);
    }

    #[test]
    fn compute_advances_clock_only() {
        let mut m = machine();
        let s0 = m.stats();
        m.compute(SimDuration::us(5));
        assert_eq!(m.now().since(SimTime::ZERO), SimDuration::us(5));
        assert_eq!(m.stats(), s0);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn wild_access_panics() {
        let mut m = machine();
        m.read_u64(0xDEAD_0000);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn exhaustion_panics() {
        let mut m = LocalMachine::new(ClusterConfig::prototype(), 1 << 20);
        m.alloc(2 << 20);
    }
}
