//! End-to-end tests of the span-tracing subsystem over the assembled
//! cluster: the exported Chrome trace is well-formed, envelope accounting
//! matches thread accounting, and the exact-tiling invariant (per-phase
//! spans sum to the end-to-end latency) survives loss recovery and zone
//! evacuation on the full 16-node world.

use std::collections::HashMap;

use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{
    ClusterConfig, FaultEvent, FaultPlan, Json, NodeId, Phase, Rng, SimDuration, SimTime,
    TraceConfig,
};

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

fn spawn(w: &mut World, node: u16, donor: u16, accesses: u64, seed: u64) -> usize {
    let node = n(node);
    let resv = w.reserve_remote(node, 256, Some(n(donor)));
    w.spawn_thread(
        ThreadSpec {
            node,
            zones: vec![(resv.prefixed_base, resv.frames * 4096)],
            accesses,
            bytes: 64,
            write_fraction: 0.25,
            think: SimDuration::ns(5),
            seed,
        },
        SimTime::ZERO,
    )
}

/// Multi-threaded lossless run in Full mode: the Chrome trace survives a
/// JSON parse round-trip, spans on one (pid, tid) track are monotone and
/// non-overlapping, and the number of `Tx` envelopes equals the threads'
/// completed + failed accesses.
#[test]
fn chrome_trace_is_well_formed_and_envelopes_match_thread_accounting() {
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    let mut w = World::new(cfg);
    let mut ids = Vec::new();
    let mut rng = Rng::new(0x7ACE);
    for k in 0..6u64 {
        let node = rng.range(1, 17) as u16;
        let donor = rng.range(1, 17) as u16;
        let donor = if donor == node { donor % 16 + 1 } else { donor };
        ids.push(spawn(&mut w, node, donor, rng.range(20, 120), 0x5EED + k));
    }
    w.run();

    let accounted: u64 = ids
        .iter()
        .map(|&id| w.thread_completed(id) + w.thread_failed(id))
        .sum();
    assert!(accounted > 0);
    let sink = w.trace();
    assert_eq!(sink.dropped(), 0, "ring must hold the whole run");
    assert_eq!(sink.completed() + sink.failed(), accounted);
    let envelopes = sink.spans().filter(|s| s.phase == Phase::Tx).count() as u64;
    assert_eq!(envelopes, accounted, "one Tx envelope per access");

    // Round-trip through the serialized form.
    let text = sink.chrome_trace().to_string();
    let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let mut tracks: HashMap<(u64, u64), Vec<(f64, f64)>> = HashMap::new();
    let mut xs = 0u64;
    for e in events {
        let Some("X") = e.get("ph").and_then(|p| p.as_str()) else {
            continue;
        };
        xs += 1;
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = e.get("dur").and_then(|v| v.as_f64()).expect("dur");
        let pid = e.get("pid").and_then(|v| v.as_u64()).expect("pid");
        let tid = e.get("tid").and_then(|v| v.as_u64()).expect("tid");
        assert!(dur >= 0.0);
        let name = e.get("name").and_then(|v| v.as_str()).expect("name");
        // Tx envelopes deliberately overlay their own phase spans.
        if name != "tx" {
            tracks.entry((pid, tid)).or_default().push((ts, ts + dur));
        }
    }
    assert!(xs as usize >= events.len() / 2, "mostly X events");
    for ((pid, tid), spans) in tracks.iter_mut() {
        spans.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-9,
                "track ({pid},{tid}): spans overlap: {w:?}"
            );
        }
    }
}

/// Randomized 16-node run with link loss (forcing retries) and a mid-run
/// donor crash (forcing evacuation): for every traced transaction the
/// phase spans tile the envelope exactly, so their sum equals the
/// end-to-end latency (the acceptance bound is 1%; the construction gives
/// exactness, which is what we assert).
#[test]
fn phase_spans_sum_to_end_to_end_latency_under_loss_and_evacuation() {
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    cfg.fabric.loss_rate = 0.02;
    cfg.recovery.max_retries = 16;
    // Node 2 donates to several clients, then dies mid-run.
    cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
        at: SimTime::ZERO + SimDuration::us(40),
        node: n(2),
    });
    let mut w = World::new(cfg);
    let mut ids = Vec::new();
    for (k, client) in [1u16, 3, 5, 9].into_iter().enumerate() {
        ids.push(spawn(&mut w, client, 2, 400, 0xE7AC + k as u64));
    }
    // Background traffic not aimed at the doomed donor.
    ids.push(spawn(&mut w, 11, 16, 200, 0xBEEF));
    w.run();

    assert!(w.node_is_dead(n(2)));
    assert!(w.evacuations() >= 1, "crash of a donor must evacuate zones");
    let retx: u64 = (1..=16).map(|i| w.client(n(i)).retransmissions()).sum();
    assert!(retx >= 1, "2% loss must force retransmissions");
    for &id in &ids {
        assert!(w.thread_completed(id) + w.thread_failed(id) > 0);
    }

    let sink = w.trace();
    assert_eq!(sink.dropped(), 0, "ring must hold the whole run");
    // Group the span stream by transaction and check the tiling invariant.
    let mut envelope: HashMap<u64, SimDuration> = HashMap::new();
    let mut phase_sum: HashMap<u64, SimDuration> = HashMap::new();
    let mut retry_txs = 0u64;
    for s in sink.spans() {
        if s.phase == Phase::Tx {
            envelope.insert(s.tx_id, s.duration());
        } else if s.phase != Phase::Resv && s.phase != Phase::Evac {
            if s.phase == Phase::Retry {
                retry_txs += 1;
            }
            *phase_sum.entry(s.tx_id).or_insert(SimDuration::ZERO) += s.duration();
        }
    }
    assert!(envelope.len() > 1000, "expected a busy trace");
    assert!(retry_txs > 0, "loss recovery must leave Retry spans");
    for (tx, env) in &envelope {
        let sum = phase_sum.get(tx).copied().unwrap_or(SimDuration::ZERO);
        assert_eq!(
            sum.as_ps(),
            env.as_ps(),
            "tx {tx}: phase spans must tile the envelope exactly"
        );
    }
}
