//! Property-based tests over the assembled cluster: conservation laws that
//! must hold for any traffic mix, and determinism.

use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{ClusterConfig, NodeId, SimDuration, SimTime};
use proptest::prelude::*;

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

/// A compact random thread description.
#[derive(Debug, Clone)]
struct Spec {
    node: u16,
    donor: u16,
    accesses: u64,
    write_fraction: f64,
    seed: u64,
}

fn arb_specs() -> impl Strategy<Value = Vec<Spec>> {
    prop::collection::vec(
        (1u16..=16, 1u16..=16, 1u64..150, 0.0f64..1.0, any::<u64>()).prop_map(
            |(node, donor, accesses, write_fraction, seed)| Spec {
                node,
                donor,
                accesses,
                write_fraction,
                seed,
            },
        ),
        1..6,
    )
}

fn build_and_run(specs: &[Spec], loss_rate: f64) -> World {
    let mut cfg = ClusterConfig::prototype();
    cfg.fabric.loss_rate = loss_rate;
    let mut w = World::new(cfg);
    for s in specs {
        let node = n(s.node);
        let donor = if s.donor == s.node {
            n(s.donor % 16 + 1)
        } else {
            n(s.donor)
        };
        let resv = w.reserve_remote(node, 256, Some(donor));
        w.spawn_thread(
            ThreadSpec {
                node,
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: s.accesses,
                bytes: 64,
                write_fraction: s.write_fraction,
                think: SimDuration::ns(5),
                seed: s.seed,
            },
            SimTime::ZERO,
        );
    }
    w.run();
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every issued access completes exactly once; server requests equal
    /// client submissions; fabric deliveries are exactly two per
    /// transaction (request + response) on a lossless fabric.
    #[test]
    fn transaction_conservation(specs in arb_specs()) {
        let w = build_and_run(&specs, 0.0);
        let total: u64 = specs.iter().map(|s| s.accesses).sum();
        let completions: u64 = (1..=16).map(|i| w.client(n(i)).completions()).sum();
        prop_assert_eq!(completions, total);
        let served: u64 = (1..=16).map(|i| w.server(n(i)).requests()).sum();
        prop_assert_eq!(served, total);
        prop_assert_eq!(w.fabric().delivered(), 2 * total);
        let mem_accesses: u64 = (1..=16).map(|i| w.memory(n(i)).accesses()).sum();
        prop_assert_eq!(mem_accesses, total);
        // No loss, no recovery machinery engaged.
        let retx: u64 = (1..=16).map(|i| w.client(n(i)).retransmissions()).sum();
        prop_assert_eq!(retx, 0);
    }

    /// Under loss, completions are still exact (each access completes once)
    /// and deliveries + drops account for every injected hop sequence.
    #[test]
    fn lossy_conservation(specs in arb_specs(), loss in 0.001f64..0.05) {
        let w = build_and_run(&specs, loss);
        let total: u64 = specs.iter().map(|s| s.accesses).sum();
        let completions: u64 = (1..=16).map(|i| w.client(n(i)).completions()).sum();
        prop_assert_eq!(completions, total, "loss must never lose or duplicate completions");
        // Each server request produced a response; duplicates were discarded.
        let served: u64 = (1..=16).map(|i| w.server(n(i)).requests()).sum();
        prop_assert!(served >= total, "every access served at least once");
    }

    /// The full cluster simulation is a pure function of its inputs.
    #[test]
    fn whole_world_determinism(specs in arb_specs()) {
        let a = build_and_run(&specs, 0.0);
        let b = build_and_run(&specs, 0.0);
        for i in 0..specs.len() {
            prop_assert_eq!(a.thread_elapsed(i).as_ps(), b.thread_elapsed(i).as_ps());
        }
        prop_assert_eq!(a.fabric().total_hops(), b.fabric().total_hops());
    }

    /// Directory/allocator conservation under arbitrary reserve/release
    /// interleavings: total pool frames are invariant and regions always
    /// account exactly for what the directory lent out.
    #[test]
    fn reservation_conservation(
        ops in prop::collection::vec((1u16..=16, 1u16..=16, 1u64..512, prop::bool::ANY), 1..40)
    ) {
        let mut w = World::new(ClusterConfig::prototype());
        let pool_total = w.directory().total_free();
        let mut held: Vec<(NodeId, cohfree_os::resv::Reservation)> = Vec::new();
        for (asker, donor, frames, release_first) in ops {
            if release_first && !held.is_empty() {
                let (node, r) = held.swap_remove(0);
                w.release_remote(node, r);
            }
            let asker = n(asker);
            let donor = if donor == asker.get() { n(donor % 16 + 1) } else { n(donor) };
            if w.directory().free_frames(donor) >= frames {
                let r = w.reserve_remote(asker, frames, Some(donor));
                held.push((asker, r));
            }
            let lent: u64 = held.iter().map(|(_, r)| r.frames).sum();
            prop_assert_eq!(w.directory().total_free() + lent, pool_total);
            // Per-node region borrowed bytes match its held reservations.
            for node_id in 1..=16u16 {
                let node = n(node_id);
                let expect: u64 = held
                    .iter()
                    .filter(|(a, _)| *a == node)
                    .map(|(_, r)| r.frames * 4096)
                    .sum();
                prop_assert_eq!(w.region(node).borrowed_bytes(), expect);
            }
        }
        for (node, r) in held {
            w.release_remote(node, r);
        }
        prop_assert_eq!(w.directory().total_free(), pool_total);
    }
}
