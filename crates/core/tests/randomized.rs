//! Seeded randomized tests over the assembled cluster: conservation laws
//! that must hold for any traffic mix, and determinism.
//!
//! Offline build: no external property-testing framework; every case is
//! reproducible from the loop seed via the simulator's own [`Rng`].

use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{ClusterConfig, FaultEvent, FaultPlan, NodeId, SimDuration, SimTime};
use cohfree_sim::Rng;

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

/// A compact random thread description.
#[derive(Debug, Clone)]
struct Spec {
    node: u16,
    donor: u16,
    accesses: u64,
    write_fraction: f64,
    seed: u64,
}

fn arb_specs(rng: &mut Rng) -> Vec<Spec> {
    let count = rng.range(1, 6) as usize;
    (0..count)
        .map(|_| Spec {
            node: rng.range(1, 17) as u16,
            donor: rng.range(1, 17) as u16,
            accesses: rng.range(1, 150),
            write_fraction: rng.f64(),
            seed: rng.next_u64(),
        })
        .collect()
}

fn build_and_run(specs: &[Spec], loss_rate: f64) -> World {
    let mut cfg = ClusterConfig::prototype();
    cfg.fabric.loss_rate = loss_rate;
    let mut w = World::new(cfg);
    for s in specs {
        let node = n(s.node);
        let donor = if s.donor == s.node {
            n(s.donor % 16 + 1)
        } else {
            n(s.donor)
        };
        let resv = w.reserve_remote(node, 256, Some(donor));
        w.spawn_thread(
            ThreadSpec {
                node,
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: s.accesses,
                bytes: 64,
                write_fraction: s.write_fraction,
                think: SimDuration::ns(5),
                seed: s.seed,
            },
            SimTime::ZERO,
        );
    }
    w.run();
    w
}

/// Every issued access completes exactly once; server requests equal client
/// submissions; fabric deliveries are exactly two per transaction
/// (request + response) on a lossless fabric.
#[test]
fn transaction_conservation() {
    for seed in 0..24 {
        let mut rng = Rng::new(0xC0_7235 + seed);
        let specs = arb_specs(&mut rng);
        let w = build_and_run(&specs, 0.0);
        let total: u64 = specs.iter().map(|s| s.accesses).sum();
        let completions: u64 = (1..=16).map(|i| w.client(n(i)).completions()).sum();
        assert_eq!(completions, total, "seed {seed}");
        let served: u64 = (1..=16).map(|i| w.server(n(i)).requests()).sum();
        assert_eq!(served, total, "seed {seed}");
        assert_eq!(w.fabric().delivered(), 2 * total, "seed {seed}");
        let mem_accesses: u64 = (1..=16).map(|i| w.memory(n(i)).accesses()).sum();
        assert_eq!(mem_accesses, total, "seed {seed}");
        // No loss, no recovery machinery engaged.
        let retx: u64 = (1..=16).map(|i| w.client(n(i)).retransmissions()).sum();
        assert_eq!(retx, 0, "seed {seed}");
    }
}

/// Under loss, completions are still exact (each access completes once) and
/// every access is served at least once.
#[test]
fn lossy_conservation() {
    for seed in 0..24 {
        let mut rng = Rng::new(0x1055 + seed);
        let specs = arb_specs(&mut rng);
        let loss = 0.001 + rng.f64() * 0.049;
        let w = build_and_run(&specs, loss);
        let total: u64 = specs.iter().map(|s| s.accesses).sum();
        let completions: u64 = (1..=16).map(|i| w.client(n(i)).completions()).sum();
        assert_eq!(
            completions, total,
            "seed {seed}: loss must never lose or duplicate completions"
        );
        // Each server request produced a response; duplicates were discarded.
        let served: u64 = (1..=16).map(|i| w.server(n(i)).requests()).sum();
        assert!(
            served >= total,
            "seed {seed}: every access served at least once"
        );
    }
}

/// The full cluster simulation is a pure function of its inputs.
#[test]
fn whole_world_determinism() {
    for seed in 0..24 {
        let mut rng = Rng::new(0xDE7 + seed);
        let specs = arb_specs(&mut rng);
        let a = build_and_run(&specs, 0.0);
        let b = build_and_run(&specs, 0.0);
        for i in 0..specs.len() {
            assert_eq!(
                a.thread_elapsed(i).as_ps(),
                b.thread_elapsed(i).as_ps(),
                "seed {seed}"
            );
        }
        assert_eq!(
            a.fabric().total_hops(),
            b.fabric().total_hops(),
            "seed {seed}"
        );
    }
}

/// Robustness acceptance: under a mid-run node crash *plus* 1e-3 link loss,
/// `run()` terminates (no hang, no panic) and every access of every thread
/// is accounted for — completed, failed, or evacuated-and-retried.
#[test]
fn mid_run_crash_with_loss_accounts_for_every_access() {
    for seed in 0..24 {
        let mut rng = Rng::new(0xFA11 + seed);
        let specs = arb_specs(&mut rng);
        let crash_node = n(rng.range(1, 17) as u16);
        let crash_at = SimTime::ZERO + SimDuration::us(rng.range(20, 200));
        let mut cfg = ClusterConfig::prototype();
        cfg.fabric.loss_rate = 1e-3;
        cfg.recovery.max_retries = 4;
        cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
            at: crash_at,
            node: crash_node,
        });
        let mut w = World::new(cfg);
        let mut ids = Vec::new();
        for s in &specs {
            let node = n(s.node);
            let donor = if s.donor == s.node {
                n(s.donor % 16 + 1)
            } else {
                n(s.donor)
            };
            let resv = w.reserve_remote(node, 256, Some(donor));
            ids.push(w.spawn_thread(
                ThreadSpec {
                    node,
                    zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                    accesses: s.accesses,
                    bytes: 64,
                    write_fraction: s.write_fraction,
                    think: SimDuration::ns(5),
                    seed: s.seed,
                },
                SimTime::ZERO,
            ));
        }
        w.run(); // must terminate without panicking
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(
                w.thread_completed(ids[i]) + w.thread_failed(ids[i]),
                s.accesses,
                "seed {seed}: thread {i} (node {}, donor {}, crash {crash_node}) \
                 left accesses unaccounted",
                s.node,
                s.donor
            );
        }
        assert!(w.node_is_dead(crash_node), "seed {seed}");
    }
}

/// Directory/allocator conservation under arbitrary reserve/release
/// interleavings: total pool frames are invariant and regions always account
/// exactly for what the directory lent out.
#[test]
fn reservation_conservation() {
    for seed in 0..24 {
        let mut rng = Rng::new(0x2E5E2E + seed);
        let mut w = World::new(ClusterConfig::prototype());
        let pool_total = w.directory().total_free();
        let mut held: Vec<(NodeId, cohfree_os::resv::Reservation)> = Vec::new();
        let ops = rng.range(1, 40);
        for _ in 0..ops {
            if rng.chance(0.5) && !held.is_empty() {
                let (node, r) = held.swap_remove(0);
                w.release_remote(node, r);
            }
            let asker = n(rng.range(1, 17) as u16);
            let donor = rng.range(1, 17) as u16;
            let donor = if donor == asker.get() {
                n(donor % 16 + 1)
            } else {
                n(donor)
            };
            let frames = rng.range(1, 512);
            if w.directory().free_frames(donor) >= frames {
                let r = w.reserve_remote(asker, frames, Some(donor));
                held.push((asker, r));
            }
            let lent: u64 = held.iter().map(|(_, r)| r.frames).sum();
            assert_eq!(w.directory().total_free() + lent, pool_total, "seed {seed}");
            // Per-node region borrowed bytes match its held reservations.
            for node_id in 1..=16u16 {
                let node = n(node_id);
                let expect: u64 = held
                    .iter()
                    .filter(|(a, _)| *a == node)
                    .map(|(_, r)| r.frames * 4096)
                    .sum();
                assert_eq!(w.region(node).borrowed_bytes(), expect, "seed {seed}");
            }
        }
        for (node, r) in held {
            w.release_remote(node, r);
        }
        assert_eq!(w.directory().total_free(), pool_total, "seed {seed}");
    }
}
