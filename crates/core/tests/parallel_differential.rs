//! Sequential-vs-parallel differential tests: the windowed parallel engine
//! must produce **byte-identical** observable output — snapshot JSON, full
//! span streams, samples, fault log — for any world, any partition count.
//!
//! Worlds here are thread-driven (the blocking drivers are inherently
//! sequential) and deliberately hostile: cross-partition traffic, message
//! loss, node crashes, link outages, evacuation, sampling and Full tracing
//! all at once.

use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{
    ClusterConfig, FaultEvent, FaultPlan, NodeId, SimDuration, SimTime, Topology, TraceConfig,
};
use cohfree_sim::Rng;

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

/// A compact random thread description (node, donor, workload shape).
#[derive(Debug, Clone)]
struct Spec {
    node: u16,
    donor: u16,
    accesses: u64,
    write_fraction: f64,
    seed: u64,
}

fn arb_specs(rng: &mut Rng, nodes: u16, max_accesses: u64) -> Vec<Spec> {
    let count = rng.range(2, 8) as usize;
    (0..count)
        .map(|_| Spec {
            node: rng.range(1, nodes as u64 + 1) as u16,
            donor: rng.range(1, nodes as u64 + 1) as u16,
            accesses: rng.range(1, max_accesses),
            write_fraction: rng.f64(),
            seed: rng.next_u64(),
        })
        .collect()
}

/// Build the world, run it with `parallel` partitions, and return it.
fn run_world(cfg: ClusterConfig, specs: &[Spec], sample: bool, parallel: usize) -> World {
    let nodes = cfg.topology.num_nodes();
    let mut w = World::new(cfg);
    if sample {
        w.enable_sampling(SimDuration::us(20));
    }
    for s in specs {
        let node = n(s.node);
        let donor = if s.donor == s.node {
            n(s.donor % nodes + 1)
        } else {
            n(s.donor)
        };
        let resv = w.reserve_remote(node, 256, Some(donor));
        w.spawn_thread(
            ThreadSpec {
                node,
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: s.accesses,
                bytes: 64,
                write_fraction: s.write_fraction,
                think: SimDuration::ns(5),
                seed: s.seed,
            },
            SimTime::ZERO,
        );
    }
    w.set_parallel(parallel);
    assert_eq!(w.parallel(), parallel.clamp(1, nodes as usize));
    w.run();
    w
}

/// Every observable byte of a finished world: the snapshot document, the
/// complete span stream, the time series and the fault log.
fn fingerprint(w: &World, threads: usize) -> String {
    let mut out = String::new();
    out.push_str(&w.snapshot().doc.to_string());
    out.push('\n');
    out.push_str(&w.trace().chrome_trace().to_string());
    out.push('\n');
    for s in w.samples() {
        out.push_str(&format!(
            "{} {} {} {}\n",
            s.at.as_ns(),
            s.events_queued,
            s.client_in_flight.iter().sum::<usize>(),
            s.max_link_backlog_ns
        ));
    }
    out.push_str(&format!("{:?}\n", w.fault_log()));
    for id in 0..threads {
        out.push_str(&format!(
            "t{id}: {} {} {} {} {}",
            w.thread_completed(id),
            w.thread_failed(id),
            w.thread_shed(id),
            w.thread_nacks(id),
            w.thread_evacuated_retries(id)
        ));
        // Serving threads also carry an end-to-end latency histogram; its
        // every bucket must match across engines.
        if let Some(h) = w.thread_latency(id) {
            out.push_str(&format!(" lat {} {:?}", h.count(), h.bucket_counts()));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "now={} processed={}",
        w.now(),
        w.events_processed()
    ));
    out
}

fn assert_engine_invariant(cfg: ClusterConfig, specs: &[Spec], sample: bool, label: &str) {
    let baseline = fingerprint(&run_world(cfg, specs, sample, 1), specs.len());
    for parts in [2usize, 4, 8] {
        let par = fingerprint(&run_world(cfg, specs, sample, parts), specs.len());
        assert_eq!(
            baseline, par,
            "{label}: {parts}-partition run diverged from sequential"
        );
    }
}

/// Fig. 6-like steady-state traffic on the 16-node prototype: lossless,
/// sampled, fully traced.
#[test]
fn fig6_like_world_is_engine_invariant() {
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    let mut rng = Rng::new(0xF166);
    let specs = arb_specs(&mut rng, 16, 200);
    assert_engine_invariant(cfg, &specs, true, "fig6-like");
}

/// EXT-FAILOVER-like world: a node crash, a link outage and repair, lossy
/// links, a tight retry budget — detection, evacuation and fail-fast all
/// engage, and the output must still be engine-invariant.
#[test]
fn failover_world_is_engine_invariant() {
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    cfg.fabric.loss_rate = 1e-3;
    cfg.recovery.max_retries = 4;
    cfg.faults = FaultPlan::new()
        .with(FaultEvent::NodeCrash {
            at: SimTime::ZERO + SimDuration::us(40),
            node: n(6),
        })
        .with(FaultEvent::LinkDown {
            at: SimTime::ZERO + SimDuration::us(15),
            a: n(1),
            b: n(2),
        })
        .with(FaultEvent::LinkUp {
            at: SimTime::ZERO + SimDuration::us(120),
            a: n(1),
            b: n(2),
        });
    let mut rng = Rng::new(0xFA110);
    let specs = arb_specs(&mut rng, 16, 120);
    assert_engine_invariant(cfg, &specs, true, "failover");
}

/// A 16×16 mesh (256 nodes) — the big-world shape the perf harness uses —
/// stays engine-invariant with traffic spread across distant partitions.
#[test]
fn big_mesh_world_is_engine_invariant() {
    let mut cfg = ClusterConfig::prototype();
    cfg.topology = Topology::Mesh2D {
        width: 16,
        height: 16,
    };
    let mut rng = Rng::new(0xB16);
    let mut specs = arb_specs(&mut rng, 256, 60);
    // Force some traffic across the whole machine diameter.
    specs.push(Spec {
        node: 1,
        donor: 256,
        accesses: 50,
        write_fraction: 0.5,
        seed: 7,
    });
    assert_engine_invariant(cfg, &specs, false, "big-mesh");
}

/// Randomized sweep: seeded random worlds (loss, a random fault, sampling,
/// tracing level varied) must be engine-invariant at 2/4/8 partitions.
#[test]
fn randomized_worlds_are_engine_invariant() {
    for seed in 0..10u64 {
        let mut rng = Rng::new(0xD1FF + seed);
        let mut cfg = ClusterConfig::prototype();
        if rng.chance(0.5) {
            cfg.fabric.loss_rate = 1e-3 + rng.f64() * 5e-3;
            cfg.recovery.max_retries = rng.range(2, 8) as u32;
        }
        cfg.trace = if rng.chance(0.5) {
            TraceConfig::full()
        } else {
            TraceConfig::aggregate()
        };
        if rng.chance(0.5) {
            cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
                at: SimTime::ZERO + SimDuration::us(rng.range(20, 120)),
                node: n(rng.range(1, 17) as u16),
            });
        }
        let sample = rng.chance(0.5);
        let specs = arb_specs(&mut rng, 16, 120);
        assert_engine_invariant(cfg, &specs, sample, &format!("randomized seed {seed}"));
    }
}

/// Fault churn: crash + restart + link flaps mid-window, a stall, loss and
/// a tight retry budget all at once — the heaviest concurrent-fault world
/// the chaos harness generates, pinned here as a differential regression.
#[test]
fn fault_churn_world_is_engine_invariant() {
    let t = |us| SimTime::ZERO + SimDuration::us(us);
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    cfg.fabric.loss_rate = 2e-3;
    cfg.recovery.max_retries = 4;
    cfg.faults = FaultPlan::new()
        .with(FaultEvent::NodeCrash {
            at: t(30),
            node: n(6),
        })
        .with(FaultEvent::LinkDown {
            at: t(10),
            a: n(2),
            b: n(3),
        })
        .with(FaultEvent::ServerStall {
            at: t(20),
            node: n(11),
            duration: SimDuration::us(35),
        })
        .with(FaultEvent::NodeRestart {
            at: t(200),
            node: n(6),
        })
        .with(FaultEvent::LinkUp {
            at: t(90),
            a: n(2),
            b: n(3),
        })
        .with(FaultEvent::NodeCrash {
            at: t(260),
            node: n(16),
        });
    let mut rng = Rng::new(0xC4AC);
    let specs = arb_specs(&mut rng, 16, 150);
    assert_engine_invariant(cfg, &specs, true, "fault-churn");
}

/// The same fault churn with the online recovery manager enabled: manager
/// ticks, sheds, re-admissions and proactive migrations are all global
/// events and must leave the output engine-invariant too.
#[test]
fn manager_enabled_fault_churn_world_is_engine_invariant() {
    let t = |us| SimTime::ZERO + SimDuration::us(us);
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    cfg.manager = cohfree_core::ManagerConfig::enabled();
    cfg.fabric.loss_rate = 1e-3;
    cfg.recovery.max_retries = 6;
    cfg.faults = FaultPlan::new()
        .with(FaultEvent::NodeCrash {
            at: t(40),
            node: n(7),
        })
        .with(FaultEvent::ServerStall {
            at: t(15),
            node: n(10),
            duration: SimDuration::us(40),
        })
        .with(FaultEvent::LinkDown {
            at: t(25),
            a: n(1),
            b: n(5),
        })
        .with(FaultEvent::LinkUp {
            at: t(110),
            a: n(1),
            b: n(5),
        })
        .with(FaultEvent::NodeRestart {
            at: t(220),
            node: n(7),
        });
    let mut rng = Rng::new(0x3A6E);
    let specs = arb_specs(&mut rng, 16, 150);
    assert_engine_invariant(cfg, &specs, true, "manager fault-churn");
}

/// The worker-thread channel path (shard ownership moves across threads
/// every window) must be engine-invariant too. The pool is normally sized
/// to spare hardware cores — zero on a single-core CI box — so force three
/// workers via the override to guarantee this path runs everywhere.
#[test]
fn worker_channel_path_is_engine_invariant() {
    std::env::set_var("COHFREE_PAR_WORKERS", "3");
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    let mut rng = Rng::new(0xC4A7);
    let specs = arb_specs(&mut rng, 16, 150);
    assert_engine_invariant(cfg, &specs, true, "worker-channel");
    std::env::remove_var("COHFREE_PAR_WORKERS");
}

/// `set_parallel` degrades to sequential where the lookahead disappears:
/// a coherent domain forces one partition.
#[test]
fn coherent_domain_forces_sequential() {
    let mut w = World::new(ClusterConfig::prototype());
    w.set_coherent_domain(vec![n(1), n(2), n(3)]).unwrap();
    w.set_parallel(8);
    assert_eq!(w.parallel(), 1);
}

/// A fully connected fabric has no distance structure: every cross-shard
/// distance is exactly one hop, so the asymmetric pairwise lookahead
/// collapses to the uniform single-hop bound and proximity placement falls
/// back to contiguous splitting. Output must still be byte-identical.
#[test]
fn fully_connected_world_is_engine_invariant() {
    let mut cfg = ClusterConfig::prototype();
    cfg.topology = Topology::FullyConnected { nodes: 8 };
    cfg.trace = TraceConfig::full();
    let mut rng = Rng::new(0xFC01);
    let specs = arb_specs(&mut rng, 8, 120);
    assert_engine_invariant(cfg, &specs, true, "fully-connected");
}

/// The smallest legal world — two nodes on a unidirectional ring — at
/// partition counts far beyond the lane count. `set_parallel` clamps to 2,
/// each shard holds a single lane, and every pairwise distance (and the
/// self round-trip bound) is at its degenerate minimum.
#[test]
fn tiny_two_node_world_is_engine_invariant() {
    let mut cfg = ClusterConfig::prototype();
    cfg.topology = Topology::Ring { nodes: 2 };
    cfg.trace = TraceConfig::full();
    let mut rng = Rng::new(0x2B0D);
    let specs = arb_specs(&mut rng, 2, 120);
    assert_engine_invariant(cfg, &specs, true, "two-node ring");
}

/// The tentpole contract of the engine-metrics subsystem: self-profiling
/// records entirely out-of-band, so every observable byte is identical
/// with metrics off or on, at 1/2/4/8 partitions, through a crash (merge
/// path), loss (suspect timers) and sampling (view path) all at once.
/// Enabling the tier process-wide is safe to leak to concurrent tests —
/// it is output-invariant by this very contract.
#[test]
fn metrics_enabled_output_is_byte_identical_at_every_partition_count() {
    use cohfree_sim::metrics;
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    cfg.fabric.loss_rate = 1e-3;
    cfg.recovery.max_retries = 4;
    cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
        at: SimTime::ZERO + SimDuration::us(40),
        node: n(6),
    });
    let mut rng = Rng::new(0x0B5E);
    let specs = arb_specs(&mut rng, 16, 120);
    let parts_sweep = [1usize, 2, 4, 8];
    let base: Vec<String> = parts_sweep
        .iter()
        .map(|&p| fingerprint(&run_world(cfg, &specs, true, p), specs.len()))
        .collect();

    metrics::set_enabled(true);
    for (off, &parts) in base.iter().zip(&parts_sweep) {
        let on = fingerprint(&run_world(cfg, &specs, true, parts), specs.len());
        assert_eq!(
            off, &on,
            "metrics-on {parts}-partition run diverged from metrics-off"
        );
    }
    let snap = metrics::snapshot();
    metrics::set_enabled(false);

    // The probes must actually have been live, not compiled away: the
    // sequential run flushed, every parallel run flushed, and the crash
    // forced at least one cause-attributed merge.
    assert!(snap.counter("cohfree_seq_runs_total") >= 1);
    assert!(snap.counter("cohfree_par_runs_total") >= 3);
    assert!(snap.counter("cohfree_par_rounds_total") > 0);
    assert!(
        snap.counter_sum("cohfree_par_merges_total") >= 1,
        "the node crash must force at least one merge"
    );
}

/// PR 3's drain-time fix-up closes the sample series at `now` for worlds
/// that drain between probe ticks. The parallel path must reproduce it —
/// same series, same final instant — at every partition count, through
/// both engine endings: the plain drain branch and the merged-path ending
/// a mid-run crash forces.
#[test]
fn drain_between_probe_ticks_final_sample_is_engine_invariant() {
    let sample_series = |cfg: ClusterConfig, interval_us: u64, parallel: usize| {
        let mut w = World::new(cfg);
        w.enable_sampling(SimDuration::us(interval_us));
        let resv = w.reserve_remote(n(1), 256, Some(n(16)));
        for k in 0..3u64 {
            w.spawn_thread(
                ThreadSpec {
                    node: n(1 + (k as u16) * 5),
                    zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                    accesses: 5,
                    bytes: 64,
                    write_fraction: 0.2,
                    think: SimDuration::ns(5),
                    seed: 42 + k,
                },
                SimTime::ZERO,
            );
        }
        w.set_parallel(parallel);
        w.run();
        let series: Vec<(u64, usize)> = w
            .samples()
            .iter()
            .map(|s| (s.at.as_ns(), s.events_queued))
            .collect();
        (series, w.now())
    };
    // Probe intervals far coarser than the ~tens-of-µs drain time, so the
    // run always ends between ticks.
    for crash in [false, true] {
        for interval_us in [100u64, 1000] {
            let mut cfg = ClusterConfig::prototype();
            if crash {
                cfg.fabric.loss_rate = 1e-3;
                cfg.recovery.max_retries = 4;
                cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
                    at: SimTime::ZERO + SimDuration::us(3),
                    node: n(16),
                });
            }
            let (seq, seq_now) = sample_series(cfg, interval_us, 1);
            assert_eq!(
                seq.last().map(|&(at, _)| at),
                Some(seq_now.as_ns()),
                "sequential series must close with a drain-time sample"
            );
            for parts in [2usize, 4, 8] {
                let (par, par_now) = sample_series(cfg, interval_us, parts);
                assert_eq!(seq_now, par_now, "crash={crash} interval={interval_us}us");
                assert_eq!(
                    seq, par,
                    "crash={crash} interval={interval_us}us parts={parts}: sample series diverged"
                );
            }
        }
    }
}

/// The tuning knobs must never change a single output byte: epoch 1 (the
/// old barrier-per-window lock step), a huge epoch, and both placement
/// policies all reproduce the sequential fingerprint on a lossy world.
/// Valid knob values are safe to leak to concurrently running tests —
/// they are output-invariant by contract — so no serialization is needed.
#[test]
fn tuning_knobs_preserve_byte_identity() {
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    cfg.fabric.loss_rate = 1e-3;
    cfg.recovery.max_retries = 4;
    let mut rng = Rng::new(0x7A6B);
    let specs = arb_specs(&mut rng, 16, 120);
    let baseline = fingerprint(&run_world(cfg, &specs, true, 1), specs.len());
    for (epoch, placement) in [
        ("1", "proximity"),
        ("1", "contiguous"),
        ("512", "proximity"),
        ("512", "contiguous"),
    ] {
        std::env::set_var("COHFREE_PAR_EPOCH", epoch);
        std::env::set_var("COHFREE_PAR_PLACEMENT", placement);
        for parts in [2usize, 4, 8] {
            let par = fingerprint(&run_world(cfg, &specs, true, parts), specs.len());
            assert_eq!(
                baseline, par,
                "epoch {epoch} / {placement}: {parts}-partition run diverged"
            );
        }
        std::env::remove_var("COHFREE_PAR_EPOCH");
        std::env::remove_var("COHFREE_PAR_PLACEMENT");
    }
}

/// Seeded Poisson arrivals for the serving worlds below — the same shape
/// `cohfree_workloads::serving` generates, built here directly against the
/// core API (core tests cannot depend on the workloads crate).
fn poisson_arrivals(seed: u64, rate_hz: f64, count: usize) -> Vec<SimTime> {
    let mut rng = Rng::new(seed);
    let mut t = SimTime::ZERO;
    (0..count)
        .map(|_| {
            t += SimDuration::ps(((rng.exponential(rate_hz) * 1e12).round() as u64).max(1));
            t
        })
        .collect()
}

/// Build a mixed-tenant serving world: a zipf point-KV tenant on node 1
/// (donors 3 and 4) and a columnar sequential-scan tenant on node 2
/// (donor 5), both open loop, with the KV tenant's donor 3 crashing
/// mid-run. Exercises arrival-clamped wakes, shed drops (manager runs),
/// per-thread latency histograms and bulk-fail on crash.
fn run_serving_world(manager: bool, parallel: usize) -> World {
    let mut cfg = ClusterConfig::prototype();
    cfg.trace = TraceConfig::full();
    if manager {
        cfg.manager = cohfree_core::ManagerConfig::enabled();
    }
    cfg.faults = FaultPlan::new().with(FaultEvent::NodeCrash {
        at: SimTime::ZERO + SimDuration::us(40),
        node: n(3),
    });
    let mut w = World::new(cfg);
    w.enable_sampling(SimDuration::us(20));
    // KV tenant: 2 lanes of zipf point reads/writes over two donors.
    let kv_zones = {
        let a = w.reserve_remote(n(1), 128, Some(n(3)));
        let b = w.reserve_remote(n(1), 128, Some(n(4)));
        vec![
            (a.prefixed_base, a.frames * 4096),
            (b.prefixed_base, b.frames * 4096),
        ]
    };
    for lane in 0..2u64 {
        let arrivals = poisson_arrivals(0x5E41 + lane, 2.0e6, 300);
        w.spawn_serving_thread(
            ThreadSpec {
                node: n(1),
                zones: kv_zones.clone(),
                accesses: arrivals.len() as u64,
                bytes: 64,
                write_fraction: 0.1,
                think: SimDuration::ns(5),
                seed: 0x5EED + lane,
            },
            arrivals,
            cohfree_core::AccessPattern::Zipf(0.9),
        );
    }
    // Columnar tenant: one lane of large sequential scan reads.
    let scan = w.reserve_remote(n(2), 128, Some(n(5)));
    let arrivals = poisson_arrivals(0xC01, 4.0e5, 120);
    w.spawn_serving_thread(
        ThreadSpec {
            node: n(2),
            zones: vec![(scan.prefixed_base, scan.frames * 4096)],
            accesses: arrivals.len() as u64,
            bytes: 4096,
            write_fraction: 0.0,
            think: SimDuration::ns(20),
            seed: 0xA11,
        },
        arrivals,
        cohfree_core::AccessPattern::Sequential,
    );
    w.set_parallel(parallel);
    w.run();
    w
}

/// Serving-workload world (mixed KV + columnar tenants, donor crash
/// mid-run) byte-identical at 2/4/8 partitions, manager off and on.
#[test]
fn serving_world_is_engine_invariant() {
    for manager in [false, true] {
        let baseline = fingerprint(&run_serving_world(manager, 1), 3);
        for parts in [2usize, 4, 8] {
            let par = fingerprint(&run_serving_world(manager, parts), 3);
            assert_eq!(
                baseline, par,
                "serving world (manager={manager}): {parts}-partition run diverged"
            );
        }
    }
}

/// The serving world really ends open-loop requests in all three terminal
/// states under the crash, and every generated request is accounted for.
#[test]
fn serving_world_conserves_requests_across_outcomes() {
    let w = run_serving_world(true, 1);
    let mut completed = 0;
    let mut resolved = 0;
    let mut generated = 0;
    for id in 0..3 {
        completed += w.thread_completed(id);
        resolved += w.thread_completed(id) + w.thread_failed(id) + w.thread_shed(id);
        generated += w.thread_accesses(id);
        let h = w
            .thread_latency(id)
            .expect("serving threads have histograms");
        assert_eq!(h.count(), w.thread_completed(id));
    }
    assert_eq!(
        resolved, generated,
        "generated == completed + failed + shed"
    );
    assert!(completed > 0);
}
