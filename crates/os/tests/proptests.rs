//! Property-based tests for the OS substrate: frame accounting, page
//! tables, the page cache and the reservation protocol.

use cohfree_fabric::NodeId;
use cohfree_os::frames::{FrameAllocator, PAGE_FRAME_BYTES};
use cohfree_os::pagetable::{PageTable, TlbConfig, Translation, PAGE_BYTES};
use cohfree_os::resv::{ResvDonor, ResvRequester};
use cohfree_os::swap::{PageCache, Touch};
use proptest::prelude::*;

proptest! {
    /// Frame accounting is conserved and grants never overlap, under any
    /// interleaving of reserves and releases.
    #[test]
    fn frame_allocator_conservation(
        ops in prop::collection::vec((1u64..64, prop::bool::ANY), 1..100)
    ) {
        let pool_frames = 512u64;
        let mut a = FrameAllocator::new(1 << 20, pool_frames * PAGE_FRAME_BYTES);
        let mut held: Vec<u64> = Vec::new();
        for (frames, release_first) in ops {
            if release_first && !held.is_empty() {
                let base = held.swap_remove(0);
                a.release(base).unwrap();
            }
            if let Ok(base) = a.reserve(frames, NodeId::new(2)) {
                held.push(base);
            }
            // Conservation.
            prop_assert_eq!(a.free_frames() + a.granted_frames(), pool_frames);
            // Disjointness: sort grants and check pairwise.
            let mut grants: Vec<(u64, u64)> = a.grants().map(|g| (g.base, g.frames)).collect();
            grants.sort_unstable();
            for w in grants.windows(2) {
                prop_assert!(
                    w[0].0 + w[0].1 * PAGE_FRAME_BYTES <= w[1].0,
                    "grants overlap"
                );
            }
        }
        // Release everything: a full-pool reservation must then succeed.
        for base in held {
            a.release(base).unwrap();
        }
        prop_assert_eq!(a.free_frames(), pool_frames);
        prop_assert!(a.reserve(pool_frames, NodeId::new(3)).is_ok());
    }

    /// The page table agrees with a HashMap oracle under arbitrary
    /// map/unmap/swap transitions.
    #[test]
    fn page_table_matches_oracle(
        ops in prop::collection::vec((0u64..64, 0u8..3), 1..200)
    ) {
        #[derive(Clone, Copy, PartialEq)]
        enum St { Mapped(u64), Swapped(u64), None }
        let mut pt = PageTable::new(TlbConfig { entries: 8 });
        let mut oracle: std::collections::HashMap<u64, St> = Default::default();
        for (i, (vpn, op)) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    let phys = (i as u64 + 1) * PAGE_BYTES;
                    pt.map(vpn, phys);
                    oracle.insert(vpn, St::Mapped(phys));
                }
                1 => {
                    pt.mark_swapped(vpn, i as u64);
                    oracle.insert(vpn, St::Swapped(i as u64));
                }
                _ => {
                    pt.unmap(vpn);
                    oracle.insert(vpn, St::None);
                }
            }
            // Probe a few addresses after each mutation.
            for probe in [vpn, (vpn + 1) % 64] {
                let got = pt.translate(probe * PAGE_BYTES + 5);
                let want = oracle.get(&probe).copied().unwrap_or(St::None);
                match (got, want) {
                    (Translation::TlbHit { phys } | Translation::Walked { phys }, St::Mapped(p)) => {
                        prop_assert_eq!(phys, p + 5);
                    }
                    (Translation::MajorFault { slot }, St::Swapped(s)) => {
                        prop_assert_eq!(slot, s);
                    }
                    (Translation::Unmapped, St::None) => {}
                    (got, _) => prop_assert!(false, "vpn {probe}: mismatch {got:?}"),
                }
            }
        }
    }

    /// Page-cache residency: bounded, hit iff resident, dirty write-backs
    /// exactly for pages written since they became resident.
    #[test]
    fn page_cache_matches_oracle(
        capacity in 1usize..16,
        ops in prop::collection::vec((0u64..48, prop::bool::ANY), 1..300)
    ) {
        let mut cache = PageCache::new(capacity);
        let mut resident: std::collections::HashMap<u64, bool> = Default::default();
        for (vpage, write) in ops {
            match cache.touch(vpage, write) {
                Touch::Hit => {
                    prop_assert!(resident.contains_key(&vpage), "hit on non-resident");
                    if write {
                        resident.insert(vpage, true);
                    }
                }
                Touch::Miss { evicted } => {
                    prop_assert!(!resident.contains_key(&vpage), "miss on resident");
                    if let Some(e) = evicted {
                        let was_dirty = resident.remove(&e.vpage)
                            .expect("evicted page must be resident");
                        prop_assert_eq!(e.dirty, was_dirty, "dirty flag wrong");
                    }
                    resident.insert(vpage, write);
                }
            }
            prop_assert!(cache.resident() <= capacity);
            prop_assert_eq!(cache.resident(), resident.len());
        }
        let mut flushed = cache.flush_dirty();
        flushed.sort_unstable();
        let mut dirty: Vec<u64> = resident.iter().filter(|(_, &d)| d).map(|(&v, _)| v).collect();
        dirty.sort_unstable();
        prop_assert_eq!(flushed, dirty);
    }

    /// Reservation protocol: any sequence of grants from one donor yields
    /// disjoint prefixed zones, and releasing all of them restores the pool.
    #[test]
    fn reservation_protocol_disjoint_zones(sizes in prop::collection::vec(1u64..32, 1..20)) {
        let donor_node = NodeId::new(4);
        let donor = ResvDonor::new(donor_node);
        let mut alloc = FrameAllocator::new(1 << 20, 1 << 20);
        let mut req = ResvRequester::new(NodeId::new(1));
        let mut granted = Vec::new();
        for frames in sizes {
            let m = req.request(donor_node, frames);
            if let Ok(ack) = donor.on_request(&m, &mut alloc) {
                granted.push(req.on_ack(&ack));
            }
        }
        let mut zones: Vec<(u64, u64)> =
            granted.iter().map(|r| (r.prefixed_base, r.frames)).collect();
        zones.sort_unstable();
        for w in zones.windows(2) {
            prop_assert!(w[0].0 + w[0].1 * PAGE_FRAME_BYTES <= w[1].0, "zones overlap");
        }
        for r in granted {
            let rel = req.release(r);
            donor.on_release(&rel, &mut alloc).unwrap();
        }
        prop_assert_eq!(alloc.granted_frames(), 0);
        prop_assert_eq!(alloc.free_frames(), 256);
    }
}
