//! Seeded randomized tests for the OS substrate: frame accounting, page
//! tables, the page cache and the reservation protocol.
//!
//! Offline build: no external property-testing framework; every case is
//! reproducible from the loop seed via the simulator's own [`Rng`].

use cohfree_fabric::NodeId;
use cohfree_os::frames::{FrameAllocator, PAGE_FRAME_BYTES};
use cohfree_os::pagetable::{PageTable, TlbConfig, Translation, PAGE_BYTES};
use cohfree_os::resv::{ResvDonor, ResvRequester};
use cohfree_os::swap::{PageCache, Touch};
use cohfree_sim::Rng;

const CASES: u64 = 48;

/// Frame accounting is conserved and grants never overlap, under any
/// interleaving of reserves and releases.
#[test]
fn frame_allocator_conservation() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xF2A3E + seed);
        let pool_frames = 512u64;
        let mut a = FrameAllocator::new(1 << 20, pool_frames * PAGE_FRAME_BYTES);
        let mut held: Vec<u64> = Vec::new();
        let ops = rng.range(1, 100);
        for _ in 0..ops {
            let frames = rng.range(1, 64);
            if rng.chance(0.5) && !held.is_empty() {
                let base = held.swap_remove(0);
                a.release(base).unwrap();
            }
            if let Ok(base) = a.reserve(frames, NodeId::new(2)) {
                held.push(base);
            }
            // Conservation.
            assert_eq!(
                a.free_frames() + a.granted_frames(),
                pool_frames,
                "seed {seed}"
            );
            // Disjointness: sort grants and check pairwise.
            let mut grants: Vec<(u64, u64)> = a.grants().map(|g| (g.base, g.frames)).collect();
            grants.sort_unstable();
            for w in grants.windows(2) {
                assert!(
                    w[0].0 + w[0].1 * PAGE_FRAME_BYTES <= w[1].0,
                    "seed {seed}: grants overlap"
                );
            }
        }
        // Release everything: a full-pool reservation must then succeed.
        for base in held {
            a.release(base).unwrap();
        }
        assert_eq!(a.free_frames(), pool_frames, "seed {seed}");
        assert!(
            a.reserve(pool_frames, NodeId::new(3)).is_ok(),
            "seed {seed}"
        );
    }
}

/// The page table agrees with a HashMap oracle under arbitrary
/// map/unmap/swap transitions.
#[test]
fn page_table_matches_oracle() {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Mapped(u64),
        Swapped(u64),
        None,
    }
    for seed in 0..CASES {
        let mut rng = Rng::new(0x9A6E7 + seed);
        let mut pt = PageTable::new(TlbConfig { entries: 8 });
        let mut oracle: std::collections::HashMap<u64, St> = Default::default();
        let ops = rng.range(1, 200);
        for i in 0..ops {
            let vpn = rng.below(64);
            match rng.below(3) {
                0 => {
                    let phys = (i + 1) * PAGE_BYTES;
                    pt.map(vpn, phys);
                    oracle.insert(vpn, St::Mapped(phys));
                }
                1 => {
                    pt.mark_swapped(vpn, i);
                    oracle.insert(vpn, St::Swapped(i));
                }
                _ => {
                    pt.unmap(vpn);
                    oracle.insert(vpn, St::None);
                }
            }
            // Probe a few addresses after each mutation.
            for probe in [vpn, (vpn + 1) % 64] {
                let got = pt.translate(probe * PAGE_BYTES + 5);
                let want = oracle.get(&probe).copied().unwrap_or(St::None);
                match (got, want) {
                    (
                        Translation::TlbHit { phys } | Translation::Walked { phys },
                        St::Mapped(p),
                    ) => {
                        assert_eq!(phys, p + 5, "seed {seed}");
                    }
                    (Translation::MajorFault { slot }, St::Swapped(s)) => {
                        assert_eq!(slot, s, "seed {seed}");
                    }
                    (Translation::Unmapped, St::None) => {}
                    (got, _) => panic!("seed {seed}: vpn {probe}: mismatch {got:?}"),
                }
            }
        }
    }
}

/// Page-cache residency: bounded, hit iff resident, dirty write-backs
/// exactly for pages written since they became resident.
#[test]
fn page_cache_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x9A6EC + seed);
        let capacity = rng.range(1, 16) as usize;
        let mut cache = PageCache::new(capacity);
        let mut resident: std::collections::HashMap<u64, bool> = Default::default();
        let ops = rng.range(1, 300);
        for _ in 0..ops {
            let vpage = rng.below(48);
            let write = rng.chance(0.5);
            match cache.touch(vpage, write) {
                Touch::Hit => {
                    assert!(
                        resident.contains_key(&vpage),
                        "seed {seed}: hit on non-resident"
                    );
                    if write {
                        resident.insert(vpage, true);
                    }
                }
                Touch::Miss { evicted } => {
                    assert!(
                        !resident.contains_key(&vpage),
                        "seed {seed}: miss on resident"
                    );
                    if let Some(e) = evicted {
                        let was_dirty = resident
                            .remove(&e.vpage)
                            .expect("evicted page must be resident");
                        assert_eq!(e.dirty, was_dirty, "seed {seed}: dirty flag wrong");
                    }
                    resident.insert(vpage, write);
                }
            }
            assert!(cache.resident() <= capacity, "seed {seed}");
            assert_eq!(cache.resident(), resident.len(), "seed {seed}");
        }
        let mut flushed = cache.flush_dirty();
        flushed.sort_unstable();
        let mut dirty: Vec<u64> = resident
            .iter()
            .filter(|(_, &d)| d)
            .map(|(&v, _)| v)
            .collect();
        dirty.sort_unstable();
        assert_eq!(flushed, dirty, "seed {seed}");
    }
}

/// Reservation protocol: any sequence of grants from one donor yields
/// disjoint prefixed zones, and releasing all of them restores the pool.
#[test]
fn reservation_protocol_disjoint_zones() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x2E5B + seed);
        let donor_node = NodeId::new(4);
        let mut donor = ResvDonor::new(donor_node);
        let mut alloc = FrameAllocator::new(1 << 20, 1 << 20);
        let mut req = ResvRequester::new(NodeId::new(1));
        let mut granted = Vec::new();
        let count = rng.range(1, 20);
        for _ in 0..count {
            let frames = rng.range(1, 32);
            let m = req.request(donor_node, frames);
            if let Ok(ack) = donor.on_request(&m, &mut alloc) {
                granted.push(req.on_ack(&ack).expect("fresh ack"));
            }
        }
        let mut zones: Vec<(u64, u64)> = granted
            .iter()
            .map(|r| (r.prefixed_base, r.frames))
            .collect();
        zones.sort_unstable();
        for w in zones.windows(2) {
            assert!(
                w[0].0 + w[0].1 * PAGE_FRAME_BYTES <= w[1].0,
                "seed {seed}: zones overlap"
            );
        }
        for r in granted {
            let rel = req.release(r);
            donor.on_release(&rel, &mut alloc).unwrap();
        }
        assert_eq!(alloc.granted_frames(), 0, "seed {seed}");
        assert_eq!(alloc.free_frames(), 256, "seed {seed}");
    }
}
