//! The online cluster recovery manager: a deterministic control-loop
//! policy engine over periodic cluster observations.
//!
//! PR 2 gave the simulator recovery *mechanisms* — retry budgets, zone
//! evacuation, fabric rerouting — each triggered by a hard-coded, one-shot
//! condition. This module supplies the *policy* layer the ROADMAP's
//! "close the loop" item asks for: a [`RecoveryManager`] that consumes one
//! [`NodeObservation`] per node at a fixed tick interval and emits
//! [`ManagerAction`]s:
//!
//! * **Rehome** — zones hosted on a dead or fabric-isolated donor are
//!   evacuated immediately (instead of waiting for every client to burn
//!   its full retry budget), and zones on a donor whose pressure has
//!   stayed above the high watermark for [`ManagerConfig::migrate_after`]
//!   consecutive ticks are migrated *proactively* while the donor is
//!   still up (a rolling server stall looks exactly like this).
//! * **Shed / Readmit** — admission control with hysteresis: when a
//!   node's pressure (the max of its server-RMC backlog and its worst
//!   outgoing-link backlog, both time-to-drain figures) crosses
//!   [`ManagerConfig::shed_on`], new accesses targeting it are deferred;
//!   once pressure decays below [`ManagerConfig::shed_off`] the target is
//!   re-admitted. Backlogs are time-to-drain values that shrink as
//!   simulated time passes, so a shed target always re-admits eventually.
//!
//! The manager is deliberately *pure*: it owns no simulator state and
//! performs no I/O — `cohfree-core` builds the observations, applies the
//! actions (rewriting zones, flipping per-client shed sets, tracing each
//! decision as a span) and schedules the next tick. Purity keeps the
//! decision rules unit-testable here and, because the manager runs as a
//! global event on the fully merged world, partition-count invariant by
//! construction.
//!
//! Donor selection for both reactive evacuation and proactive migration
//! goes through [`RecoveryManager::choose_recovery_donor`]: a load-aware
//! score (most free frames, then least pressure, then lowest node id)
//! over candidates that are alive, reachable, unsuspected and not
//! currently shed — replacing the static [`crate::DonorPolicy`] spare
//! list for recovery decisions.

use cohfree_fabric::NodeId;
use cohfree_sim::{Json, SimDuration};

/// Tuning knobs for the recovery manager control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagerConfig {
    /// Master switch. Disabled by default so fault handling stays exactly
    /// the PR 2 static behaviour unless a world opts in.
    pub enabled: bool,
    /// Control-loop tick interval (simulated time between observations).
    pub tick: SimDuration,
    /// High watermark: a node whose pressure (max of server-RMC backlog
    /// and worst outgoing-link backlog) reaches this is load-shed.
    pub shed_on: SimDuration,
    /// Low watermark for re-admission; must be `< shed_on` for hysteresis.
    pub shed_off: SimDuration,
    /// Consecutive hot ticks (pressure ≥ `shed_on`) after which zones are
    /// proactively migrated off a still-alive donor. `0` disables
    /// pressure-triggered migration (dead/isolated donors still rehome).
    pub migrate_after: u32,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            enabled: false,
            tick: SimDuration::us(2),
            shed_on: SimDuration::us(3),
            shed_off: SimDuration::us(1),
            migrate_after: 4,
        }
    }
}

impl ManagerConfig {
    /// The default knobs with the control loop switched on.
    pub fn enabled() -> Self {
        ManagerConfig {
            enabled: true,
            ..Self::default()
        }
    }
}

/// One node's state as seen by the manager at a tick (or at a donor
/// choice). Built by the world from its snapshot-grade component state.
#[derive(Debug, Clone, Copy)]
pub struct NodeObservation {
    /// The observed node.
    pub node: NodeId,
    /// Crashed (from the world's fault state).
    pub dead: bool,
    /// Cut off by the current link-outage set (no usable incident link).
    pub isolated: bool,
    /// Declared suspect by at least one client's failure detector.
    pub suspected: bool,
    /// Server-RMC engine backlog, time to drain at the observation instant.
    pub server_backlog: SimDuration,
    /// Worst outgoing fabric-link backlog, time to drain.
    pub link_backlog: SimDuration,
    /// Free pool frames per the cluster directory.
    pub free_frames: u64,
    /// True if any live reservation's zone is currently homed here.
    pub hosts_zones: bool,
}

impl NodeObservation {
    /// The scalar pressure signal the watermarks compare against.
    pub fn pressure(&self) -> SimDuration {
        self.server_backlog.max(self.link_backlog)
    }
}

/// One decision emitted by a manager tick, applied by the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerAction {
    /// Stop admitting new accesses targeting `target` (pressure crossed
    /// the high watermark).
    Shed {
        /// The overloaded target node.
        target: NodeId,
    },
    /// Resume admitting accesses targeting `target` (pressure decayed
    /// below the low watermark).
    Readmit {
        /// The recovered target node.
        target: NodeId,
    },
    /// Move every zone homed on `from` to healthier donors: reactive
    /// evacuation when `from` is dead or isolated, proactive live
    /// migration when it is merely persistently hot.
    Rehome {
        /// The donor to vacate.
        from: NodeId,
    },
}

/// The deterministic recovery-policy engine. See the module docs for the
/// decision rules.
#[derive(Debug, Clone)]
pub struct RecoveryManager {
    cfg: ManagerConfig,
    /// Current shed state per node id (index 0 unused).
    shed: Vec<bool>,
    /// Consecutive ticks each node has spent at or above `shed_on`.
    hot_ticks: Vec<u32>,
    ticks: u64,
    sheds: u64,
    readmits: u64,
    rehomes: u64,
}

impl RecoveryManager {
    /// A manager for a cluster of `nodes` nodes (ids `1..=nodes`).
    pub fn new(cfg: ManagerConfig, nodes: u16) -> RecoveryManager {
        RecoveryManager {
            cfg,
            shed: vec![false; nodes as usize + 1],
            hot_ticks: vec![0; nodes as usize + 1],
            ticks: 0,
            sheds: 0,
            readmits: 0,
            rehomes: 0,
        }
    }

    /// The config this manager runs under.
    pub fn config(&self) -> &ManagerConfig {
        &self.cfg
    }

    /// Run one control-loop tick over the cluster observations (one entry
    /// per node, any order; decisions are made in ascending node-id order
    /// for determinism). Returns the actions for the world to apply.
    pub fn tick(&mut self, obs: &[NodeObservation]) -> Vec<ManagerAction> {
        self.ticks += 1;
        let mut sorted: Vec<&NodeObservation> = obs.iter().collect();
        sorted.sort_unstable_by_key(|o| o.node.get());
        let mut actions = Vec::new();
        for o in sorted {
            let id = o.node.get() as usize;
            let pressure = o.pressure();
            let hot = pressure >= self.cfg.shed_on;
            self.hot_ticks[id] = if hot { self.hot_ticks[id] + 1 } else { 0 };

            // Rehome: reactive on death/partition, proactive on sustained
            // pressure. Reset the hot streak so a still-alive donor is not
            // re-vacated every subsequent tick while it drains.
            let must_move = o.dead || o.isolated;
            let should_move = self.cfg.migrate_after > 0
                && self.hot_ticks[id] >= self.cfg.migrate_after
                && !o.suspected;
            if o.hosts_zones && (must_move || should_move) {
                actions.push(ManagerAction::Rehome { from: o.node });
                self.rehomes += 1;
                self.hot_ticks[id] = 0;
            }

            // Admission control with hysteresis. Dead/isolated nodes are
            // the failure detector's problem (suspect + evacuate), not
            // admission control's; shedding them would only delay the
            // retries that drive detection.
            if !must_move {
                if !self.shed[id] && hot {
                    self.shed[id] = true;
                    self.sheds += 1;
                    actions.push(ManagerAction::Shed { target: o.node });
                } else if self.shed[id] && pressure <= self.cfg.shed_off {
                    self.shed[id] = false;
                    self.readmits += 1;
                    actions.push(ManagerAction::Readmit { target: o.node });
                }
            } else if self.shed[id] {
                // A target that died while shed: lift the shed so clients
                // fail fast through the suspect path instead of deferring
                // against a node that will never drain.
                self.shed[id] = false;
                self.readmits += 1;
                actions.push(ManagerAction::Readmit { target: o.node });
            }
        }
        actions
    }

    /// Load-aware donor choice for a recovery move: among nodes that are
    /// alive, reachable, unsuspected, not shed, not `asker`, and have at
    /// least `frames` free, pick the one with the most free frames;
    /// break ties by lower pressure, then lower node id.
    pub fn choose_recovery_donor(
        &self,
        asker: NodeId,
        frames: u64,
        obs: &[NodeObservation],
    ) -> Option<NodeId> {
        obs.iter()
            .filter(|o| {
                o.node != asker
                    && !o.dead
                    && !o.isolated
                    && !o.suspected
                    && !self.shed[o.node.get() as usize]
                    && o.free_frames >= frames
            })
            .min_by_key(|o| (u64::MAX - o.free_frames, o.pressure(), o.node.get()))
            .map(|o| o.node)
    }

    /// True if the manager currently load-sheds accesses to `node`.
    pub fn is_shed(&self, node: NodeId) -> bool {
        self.shed[node.get() as usize]
    }

    /// Number of nodes currently load-shed.
    pub fn currently_shed(&self) -> usize {
        self.shed.iter().filter(|&&s| s).count()
    }

    /// Control-loop ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Shed decisions made so far.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Re-admissions made so far.
    pub fn readmits(&self) -> u64 {
        self.readmits
    }

    /// Rehome decisions (reactive + proactive) made so far.
    pub fn rehomes(&self) -> u64 {
        self.rehomes
    }

    /// Serializable decision counters for the cluster snapshot.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("ticks", Json::from(self.ticks)),
            ("sheds", Json::from(self.sheds)),
            ("readmits", Json::from(self.readmits)),
            ("rehomes", Json::from(self.rehomes)),
            ("currently_shed", Json::from(self.currently_shed())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn quiet(id: u16) -> NodeObservation {
        NodeObservation {
            node: n(id),
            dead: false,
            isolated: false,
            suspected: false,
            server_backlog: SimDuration::ZERO,
            link_backlog: SimDuration::ZERO,
            free_frames: 1_000,
            hosts_zones: false,
        }
    }

    fn mgr() -> RecoveryManager {
        RecoveryManager::new(ManagerConfig::enabled(), 4)
    }

    #[test]
    fn shed_and_readmit_follow_the_hysteresis_band() {
        let mut m = mgr();
        let hot = NodeObservation {
            server_backlog: SimDuration::us(5),
            ..quiet(2)
        };
        assert_eq!(
            m.tick(&[quiet(1), hot, quiet(3), quiet(4)]),
            vec![ManagerAction::Shed { target: n(2) }]
        );
        assert!(m.is_shed(n(2)));
        // In the band between the watermarks: no flapping either way.
        let warm = NodeObservation {
            server_backlog: SimDuration::us(2),
            ..quiet(2)
        };
        assert!(m.tick(&[quiet(1), warm, quiet(3), quiet(4)]).is_empty());
        assert!(m.is_shed(n(2)));
        // Below the low watermark: re-admitted.
        assert_eq!(
            m.tick(&[quiet(1), quiet(2), quiet(3), quiet(4)]),
            vec![ManagerAction::Readmit { target: n(2) }]
        );
        assert!(!m.is_shed(n(2)));
        assert_eq!((m.sheds(), m.readmits()), (1, 1));
    }

    #[test]
    fn dead_or_isolated_hosts_rehome_immediately_and_are_not_shed() {
        let mut m = mgr();
        let dead = NodeObservation {
            dead: true,
            hosts_zones: true,
            server_backlog: SimDuration::us(100),
            ..quiet(3)
        };
        assert_eq!(
            m.tick(&[quiet(1), quiet(2), dead, quiet(4)]),
            vec![ManagerAction::Rehome { from: n(3) }]
        );
        let isolated = NodeObservation {
            isolated: true,
            hosts_zones: true,
            ..quiet(4)
        };
        assert_eq!(
            m.tick(&[quiet(1), quiet(2), quiet(3), isolated]),
            vec![ManagerAction::Rehome { from: n(4) }]
        );
        assert_eq!(m.rehomes(), 2);
        assert_eq!(m.sheds(), 0, "dead nodes are never shed");
    }

    #[test]
    fn sustained_pressure_triggers_proactive_migration_once() {
        let mut m = RecoveryManager::new(
            ManagerConfig {
                migrate_after: 3,
                ..ManagerConfig::enabled()
            },
            2,
        );
        let hot_host = NodeObservation {
            server_backlog: SimDuration::us(10),
            hosts_zones: true,
            ..quiet(2)
        };
        // Tick 1 sheds; ticks 1-2 are below the streak threshold.
        assert_eq!(
            m.tick(&[quiet(1), hot_host]),
            vec![ManagerAction::Shed { target: n(2) }]
        );
        assert!(m.tick(&[quiet(1), hot_host]).is_empty());
        // Tick 3 reaches the streak: migrate, and the streak resets so the
        // next hot tick does not re-vacate.
        assert_eq!(
            m.tick(&[quiet(1), hot_host]),
            vec![ManagerAction::Rehome { from: n(2) }]
        );
        assert!(m.tick(&[quiet(1), hot_host]).is_empty());
        assert_eq!(m.rehomes(), 1);
    }

    #[test]
    fn donor_choice_prefers_free_frames_then_pressure_then_id() {
        let m = mgr();
        let mut obs = vec![quiet(1), quiet(2), quiet(3), quiet(4)];
        obs[2].free_frames = 2_000; // node 3: most free wins
        assert_eq!(m.choose_recovery_donor(n(1), 500, &obs), Some(n(3)));
        // Equal frames: lower pressure wins.
        obs[2].free_frames = 1_000;
        obs[1].link_backlog = SimDuration::us(1);
        obs[2].link_backlog = SimDuration::ns(10);
        obs[3].link_backlog = SimDuration::us(1);
        assert_eq!(m.choose_recovery_donor(n(1), 500, &obs), Some(n(3)));
        // Fully equal: lowest id that is not the asker.
        for o in obs.iter_mut() {
            o.link_backlog = SimDuration::ZERO;
        }
        assert_eq!(m.choose_recovery_donor(n(1), 500, &obs), Some(n(2)));
        // Dead, isolated, suspected and too-small candidates are excluded.
        obs[1].dead = true;
        obs[2].suspected = true;
        obs[3].free_frames = 499;
        assert_eq!(m.choose_recovery_donor(n(1), 500, &obs), None);
    }

    #[test]
    fn shed_nodes_are_excluded_as_donors_until_readmitted() {
        let mut m = mgr();
        let hot = NodeObservation {
            server_backlog: SimDuration::us(5),
            ..quiet(2)
        };
        m.tick(&[quiet(1), hot, quiet(3), quiet(4)]);
        let obs = vec![quiet(1), quiet(2), quiet(3), quiet(4)];
        assert_eq!(
            m.choose_recovery_donor(n(1), 500, &obs),
            Some(n(3)),
            "shed node 2 must be skipped"
        );
        m.tick(&obs); // pressure cleared -> readmit
        assert_eq!(m.choose_recovery_donor(n(1), 500, &obs), Some(n(2)));
    }

    #[test]
    fn snapshot_reports_the_decision_counters() {
        let mut m = mgr();
        let hot = NodeObservation {
            server_backlog: SimDuration::us(5),
            ..quiet(2)
        };
        m.tick(&[quiet(1), hot, quiet(3), quiet(4)]);
        let s = m.snapshot();
        assert_eq!(s.get("ticks").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("sheds").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("currently_shed").and_then(Json::as_u64), Some(1));
    }
}
