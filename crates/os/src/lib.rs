#![warn(missing_docs)]

//! # cohfree-os — operating-system substrate
//!
//! The paper keeps software *off the access path* but needs OS machinery
//! around it: hot-pluggable physical memory, cluster-wide knowledge of free
//! memory, a reservation protocol, and (for the baseline) a swap subsystem.
//! This crate implements those pieces as deterministic models:
//!
//! * [`frames`] — per-node physical frame accounting: a private region for
//!   the local OS and a *pool* region that can be lent to other nodes
//!   (8 GiB + 8 GiB in the prototype), with contiguous-zone reservation and
//!   a lender ledger (granted frames are pinned: never swapped, never given
//!   to local processes),
//! * [`pagetable`] — per-process virtual memory: page table, TLB with LRU
//!   replacement, page-walk cost hooks, and page states (resident local,
//!   mapped remote, swapped out),
//! * [`directory`] — the cluster free-memory directory and donor-selection
//!   policies used to decide *which* node lends memory,
//! * [`region`] — memory regions (Fig. 1): one per node, listing the local
//!   and borrowed segments that form that node's coherency domain,
//! * [`resv`] — the reservation protocol: request/ack/release message flows
//!   whose *functional* effect lands in [`frames`] and [`region`],
//! * [`swap`] — the remote-swap / disk-swap baseline: a bounded page cache
//!   with LRU eviction and dirty write-back, plus fault-cost accounting,
//! * [`disk`] — a rotational-disk timing model for the disk-swap baseline,
//! * [`balloon`] — the hot-plug/hot-remove watermark policy deciding when a
//!   node borrows or returns zones,
//! * [`manager`] — the online cluster recovery manager: a deterministic
//!   control loop turning periodic cluster observations into load-aware
//!   evacuation, proactive live migration, and admission-control decisions.

pub mod balloon;
pub mod directory;
pub mod disk;
pub mod frames;
pub mod manager;
pub mod pagetable;
pub mod region;
pub mod resv;
pub mod swap;

pub use balloon::{Balloon, BalloonAction, BalloonConfig};
pub use directory::{Directory, DonorPolicy};
pub use disk::{Disk, DiskConfig};
pub use frames::{FrameAllocator, FrameError, PAGE_FRAME_BYTES};
pub use manager::{ManagerAction, ManagerConfig, NodeObservation, RecoveryManager};
pub use pagetable::{PageFlags, PageTable, Tlb, TlbConfig, Translation};
pub use region::{Region, Segment};
pub use resv::{ResvDonor, ResvRequester};
pub use swap::{PageCache, SwapStats};
