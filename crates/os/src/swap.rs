//! The swap-baseline page cache.
//!
//! Remote swap (and classic disk swap) keep only a bounded number of pages
//! in local DRAM; the rest live on a backing device — a remote node's memory
//! reached by page-granularity messages, or a disk. [`PageCache`] models the
//! resident set with the CLOCK (second-chance) replacement policy: O(1)
//! amortized, deterministic, and a faithful stand-in for what 2010-era Linux
//! did with its active/inactive lists.
//!
//! The *cost* of a fault (OS overhead, fetch, dirty write-back) is charged
//! by the owning backend in `cohfree-core`; this module decides *which*
//! page moves and keeps the accounting.

use cohfree_sim::FastMap;

/// A page evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Virtual page number that lost residency.
    pub vpage: u64,
    /// True if the page was modified and must be written back to the
    /// backing store before its frame is reused.
    pub dirty: bool,
}

/// Outcome of touching a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// Page resident: minor cost only.
    Hit,
    /// Page not resident: a major fault. The page has been made resident;
    /// if a victim had to be displaced it is reported for write-back.
    Miss {
        /// Victim displaced to make room, if the cache was full.
        evicted: Option<Evicted>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    vpage: u64,
    referenced: bool,
    dirty: bool,
}

/// Cumulative swap-activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Resident hits.
    pub hits: u64,
    /// Major faults (pages fetched from the backing store).
    pub major_faults: u64,
    /// Dirty evictions (pages written back).
    pub writebacks: u64,
    /// Clean evictions (frames silently reused).
    pub clean_evictions: u64,
}

/// Bounded resident-set model with CLOCK replacement.
#[derive(Debug)]
pub struct PageCache {
    capacity: usize,
    slots: Vec<Slot>,
    map: FastMap<u64, usize>,
    hand: usize,
    stats: SwapStats,
}

impl PageCache {
    /// A cache holding at most `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PageCache {
        assert!(capacity > 0, "page cache needs capacity >= 1");
        PageCache {
            capacity,
            slots: Vec::with_capacity(capacity),
            map: FastMap::default(),
            hand: 0,
            stats: SwapStats::default(),
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.slots.len()
    }

    /// True if `vpage` is resident (no state change).
    pub fn contains(&self, vpage: u64) -> bool {
        self.map.contains_key(&vpage)
    }

    /// Touch `vpage` (write access dirties it). Makes the page resident.
    pub fn touch(&mut self, vpage: u64, write: bool) -> Touch {
        if let Some(&i) = self.map.get(&vpage) {
            let s = &mut self.slots[i];
            s.referenced = true;
            s.dirty |= write;
            self.stats.hits += 1;
            return Touch::Hit;
        }
        self.stats.major_faults += 1;
        let evicted = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                vpage,
                referenced: true,
                dirty: write,
            });
            self.map.insert(vpage, self.slots.len() - 1);
            None
        } else {
            // CLOCK: advance the hand, clearing reference bits, until an
            // unreferenced victim is found.
            let victim_idx = loop {
                let s = &mut self.slots[self.hand];
                if s.referenced {
                    s.referenced = false;
                    self.hand = (self.hand + 1) % self.capacity;
                } else {
                    break self.hand;
                }
            };
            let victim = self.slots[victim_idx];
            self.map.remove(&victim.vpage);
            self.slots[victim_idx] = Slot {
                vpage,
                referenced: true,
                dirty: write,
            };
            self.map.insert(vpage, victim_idx);
            self.hand = (victim_idx + 1) % self.capacity;
            if victim.dirty {
                self.stats.writebacks += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
            Some(Evicted {
                vpage: victim.vpage,
                dirty: victim.dirty,
            })
        };
        Touch::Miss { evicted }
    }

    /// Write back every dirty page (e.g. at program exit); returns the
    /// vpages that were dirty. Residency is preserved.
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for s in &mut self.slots {
            if s.dirty {
                dirty.push(s.vpage);
                s.dirty = false;
            }
        }
        self.stats.writebacks += dirty.len() as u64;
        dirty.sort_unstable();
        dirty
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_without_eviction_up_to_capacity() {
        let mut c = PageCache::new(3);
        for v in 0..3 {
            assert_eq!(c.touch(v, false), Touch::Miss { evicted: None });
        }
        assert_eq!(c.resident(), 3);
        assert_eq!(c.stats().major_faults, 3);
        assert_eq!(c.touch(1, false), Touch::Hit);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut c = PageCache::new(3);
        c.touch(0, false);
        c.touch(1, false);
        c.touch(2, false);
        // All referenced; hand sweeps clearing bits, evicting slot 0 (vpage 0).
        match c.touch(3, false) {
            Touch::Miss { evicted: Some(e) } => assert_eq!(e.vpage, 0),
            other => panic!("{other:?}"),
        }
        // vpage 1's bit was cleared by the sweep; re-reference it.
        assert_eq!(c.touch(1, false), Touch::Hit);
        // Next eviction should skip vpage 1 (referenced) and take vpage 2.
        match c.touch(4, false) {
            Touch::Miss { evicted: Some(e) } => assert_eq!(e.vpage, 2),
            other => panic!("{other:?}"),
        }
        assert!(c.contains(1));
    }

    #[test]
    fn dirty_pages_report_writeback() {
        let mut c = PageCache::new(1);
        c.touch(0, true);
        match c.touch(1, false) {
            Touch::Miss { evicted: Some(e) } => {
                assert_eq!(
                    e,
                    Evicted {
                        vpage: 0,
                        dirty: true
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().clean_evictions, 0);
    }

    #[test]
    fn write_hit_dirties_resident_page() {
        let mut c = PageCache::new(2);
        c.touch(0, false);
        c.touch(0, true); // dirty it
        c.touch(1, false);
        // Evict 0: must be dirty.
        c.touch(2, false); // sweeps: clears 0, clears 1, evicts 0
        let st = c.stats();
        assert_eq!(st.writebacks + st.clean_evictions, 1);
        assert_eq!(st.writebacks, 1);
    }

    #[test]
    fn flush_dirty_lists_and_cleans() {
        let mut c = PageCache::new(4);
        c.touch(10, true);
        c.touch(11, false);
        c.touch(12, true);
        assert_eq!(c.flush_dirty(), vec![10, 12]);
        assert_eq!(c.flush_dirty(), Vec::<u64>::new(), "now clean");
        assert_eq!(c.resident(), 3, "residency preserved");
    }

    #[test]
    fn working_set_within_capacity_stops_faulting() {
        let mut c = PageCache::new(8);
        for round in 0..10 {
            for v in 0..8 {
                let t = c.touch(v, false);
                if round > 0 {
                    assert_eq!(t, Touch::Hit, "round {round} vpage {v}");
                }
            }
        }
        assert_eq!(c.stats().major_faults, 8);
        assert_eq!(c.stats().hits, 72);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        // Sequential sweep over capacity+1 pages with CLOCK ≈ every touch
        // faults — the classic thrashing syndrome the paper invokes.
        let mut c = PageCache::new(4);
        let mut faults = 0;
        for _ in 0..5 {
            for v in 0..5 {
                if matches!(c.touch(v, false), Touch::Miss { .. }) {
                    faults += 1;
                }
            }
        }
        assert!(
            faults >= 20,
            "expected heavy thrashing, got {faults} faults"
        );
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        PageCache::new(0);
    }
}
