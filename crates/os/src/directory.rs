//! Cluster free-memory directory.
//!
//! The paper's Section III lists "augmenting the OS services so that
//! knowledge of the location of free memory across the cluster is achieved"
//! as a required component. This module is that service: a (logically
//! distributed, here centralized-for-determinism) view of how many pool
//! frames every node still has free, plus donor-selection policies.

use cohfree_fabric::{NodeId, Topology};

/// How a node in need chooses a donor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DonorPolicy {
    /// Closest node (in fabric hops) with enough free frames; ties broken
    /// by lower node id. Minimizes remote-access latency.
    Nearest,
    /// Node with the most free frames; spreads load and leaves big zones
    /// intact. Ties broken by lower node id.
    MostFree,
    /// Fixed explicit order (useful for experiments that place memory
    /// servers deliberately, like Figs. 6–8).
    Fixed,
}

/// The directory of free pool frames per node.
#[derive(Debug)]
pub struct Directory {
    topo: Topology,
    free: Vec<u64>,
    policy: DonorPolicy,
    /// Preference order for [`DonorPolicy::Fixed`].
    fixed_order: Vec<NodeId>,
}

impl Directory {
    /// Build a directory where every node starts with `frames_per_node`
    /// free pool frames.
    pub fn new(topo: Topology, frames_per_node: u64, policy: DonorPolicy) -> Directory {
        Directory {
            free: vec![frames_per_node; topo.num_nodes() as usize],
            topo,
            policy,
            fixed_order: Vec::new(),
        }
    }

    /// Set the explicit donor order used by [`DonorPolicy::Fixed`].
    pub fn set_fixed_order(&mut self, order: Vec<NodeId>) {
        self.fixed_order = order;
    }

    /// Free frames recorded for `node`.
    pub fn free_frames(&self, node: NodeId) -> u64 {
        self.free[node.index()]
    }

    /// Total free frames across the cluster.
    pub fn total_free(&self) -> u64 {
        self.free.iter().sum()
    }

    /// Choose a donor able to lend `frames` to `asker` (never `asker`
    /// itself), per the active policy. Returns `None` if no node can.
    pub fn choose_donor(&self, asker: NodeId, frames: u64) -> Option<NodeId> {
        let candidates = || {
            (1..=self.topo.num_nodes())
                .map(NodeId::new)
                .filter(|&n| n != asker && self.free[n.index()] >= frames)
        };
        match self.policy {
            DonorPolicy::Nearest => {
                candidates().min_by_key(|&n| (self.topo.hops(asker, n), n.get()))
            }
            DonorPolicy::MostFree => {
                candidates().max_by_key(|&n| (self.free[n.index()], std::cmp::Reverse(n.get())))
            }
            DonorPolicy::Fixed => self
                .fixed_order
                .iter()
                .copied()
                .find(|&n| n != asker && self.free[n.index()] >= frames),
        }
    }

    /// Record that `donor` lent `frames`.
    ///
    /// # Panics
    /// Panics if the directory believes `donor` lacks the frames — callers
    /// must go through [`Directory::choose_donor`] or verify first.
    pub fn debit(&mut self, donor: NodeId, frames: u64) {
        let f = &mut self.free[donor.index()];
        assert!(*f >= frames, "directory underflow for {donor}");
        *f -= frames;
    }

    /// Record that `donor` got `frames` back.
    pub fn credit(&mut self, donor: NodeId, frames: u64) {
        self.free[donor.index()] += frames;
    }

    /// Overwrite `node`'s free-frame count. Failure handling uses this to
    /// zero a crashed donor (its pool is gone, grants and all) and to
    /// re-seed a restarted one.
    pub fn set_free(&mut self, node: NodeId, frames: u64) {
        self.free[node.index()] = frames;
    }

    /// Serializable view: total free frames and the per-node free counts
    /// (array index `i` is node `i + 1`).
    pub fn snapshot(&self) -> cohfree_sim::Json {
        use cohfree_sim::Json;
        Json::obj([
            ("total_free_frames", Json::from(self.total_free())),
            ("free_frames_per_node", Json::from(self.free.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn dir(policy: DonorPolicy) -> Directory {
        Directory::new(Topology::prototype(), 100, policy)
    }

    #[test]
    fn nearest_prefers_neighbors() {
        let d = dir(DonorPolicy::Nearest);
        // From corner node 1, neighbors are 2 and 5 (both 1 hop); lower id wins.
        assert_eq!(d.choose_donor(n(1), 10), Some(n(2)));
    }

    #[test]
    fn nearest_skips_exhausted_neighbors() {
        let mut d = dir(DonorPolicy::Nearest);
        d.debit(n(2), 100);
        assert_eq!(d.choose_donor(n(1), 10), Some(n(5)));
        d.debit(n(5), 95);
        // 5 has only 5 left; need 10 -> next ring: 3, 6, 9 (2 hops).
        assert_eq!(d.choose_donor(n(1), 10), Some(n(3)));
    }

    #[test]
    fn most_free_prefers_largest() {
        let mut d = dir(DonorPolicy::MostFree);
        d.debit(n(2), 50);
        d.credit(n(9), 40); // node 9 now has 140
        assert_eq!(d.choose_donor(n(1), 10), Some(n(9)));
    }

    #[test]
    fn fixed_order_followed() {
        let mut d = dir(DonorPolicy::Fixed);
        d.set_fixed_order(vec![n(7), n(3)]);
        assert_eq!(d.choose_donor(n(1), 10), Some(n(7)));
        d.debit(n(7), 100);
        assert_eq!(d.choose_donor(n(1), 10), Some(n(3)));
        d.debit(n(3), 100);
        assert_eq!(d.choose_donor(n(1), 10), None);
    }

    #[test]
    fn asker_never_chosen() {
        let mut d = dir(DonorPolicy::MostFree);
        for i in 2..=16 {
            d.debit(n(i), 100);
        }
        // Only the asker has frames left.
        assert_eq!(d.choose_donor(n(1), 1), None);
    }

    #[test]
    fn accounting_round_trips() {
        let mut d = dir(DonorPolicy::Nearest);
        assert_eq!(d.total_free(), 1600);
        d.debit(n(4), 25);
        assert_eq!(d.free_frames(n(4)), 75);
        d.credit(n(4), 25);
        assert_eq!(d.total_free(), 1600);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn over_debit_panics() {
        dir(DonorPolicy::Nearest).debit(n(2), 101);
    }
}
