//! The remote-memory reservation protocol (Section III-B, Figure 4).
//!
//! Reservation is software: kernels exchange messages over the same fabric
//! the RMCs use. The flow for "node 1 borrows 4 GiB from node 3" is:
//!
//! 1. requester kernel sends `ResvReq { frames }` to the donor,
//! 2. donor kernel reserves a **contiguous physical zone**, pins it (never
//!    swapped, never given to local processes — both enforced by
//!    [`crate::frames::FrameAllocator`]), and replies `ResvAck` whose
//!    address field is the zone base **with the 14 prefix bits set to the
//!    donor's node id**,
//! 3. requester writes virtual→prefixed-physical translations into its page
//!    table; from then on access is pure hardware.
//!
//! Release reverses the grant. The protocol is deliberately not
//! time-critical; the paper's point is that it happens *once per zone*, off
//! the access path.

use crate::frames::{FrameAllocator, FrameError};
use cohfree_fabric::{Message, MsgKind, NodeId};
use cohfree_rmc::addr::encode;
use std::collections::{HashMap, HashSet};

/// A granted reservation as seen by the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Donor node.
    pub home: NodeId,
    /// Prefixed physical base address usable directly in page tables.
    pub prefixed_base: u64,
    /// Frames granted.
    pub frames: u64,
}

/// One reservation request awaiting its ack, with retry bookkeeping: a
/// `ResvReq` or `ResvAck` lost on a lossy fabric would otherwise strand the
/// tag forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingResv {
    /// Donor the request went to.
    pub donor: NodeId,
    /// Frames requested.
    pub frames: u64,
    /// Times the request has been (re)sent.
    pub attempts: u32,
}

/// Requester-side protocol state for one node's kernel.
#[derive(Debug)]
pub struct ResvRequester {
    node: NodeId,
    next_tag: u64,
    pending: HashMap<u64, PendingResv>,
    /// Tags already acked or cancelled — lets a retransmission-induced
    /// duplicate ack (or a straggler after cancellation) be recognized as
    /// stale instead of "unsolicited".
    settled: HashSet<u64>,
    granted: Vec<Reservation>,
}

impl ResvRequester {
    /// Protocol endpoint for `node`.
    pub fn new(node: NodeId) -> ResvRequester {
        ResvRequester {
            node,
            next_tag: (node.get() as u64) << 48 | 1 << 40, // disjoint from RMC tags
            pending: HashMap::new(),
            settled: HashSet::new(),
            granted: Vec::new(),
        }
    }

    /// Build the request message for `frames` frames from `donor`.
    pub fn request(&mut self, donor: NodeId, frames: u64) -> Message {
        assert_ne!(donor, self.node, "cannot reserve remote memory from self");
        assert!(frames > 0, "zero-frame reservation");
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(
            tag,
            PendingResv {
                donor,
                frames,
                attempts: 1,
            },
        );
        Message::new(self.node, donor, MsgKind::ResvReq { frames }, tag)
    }

    /// Rebuild the request message for a still-pending tag after a loss
    /// timeout. The same tag is reused so the donor can deduplicate.
    /// Returns `None` if the tag is no longer pending (acked or cancelled
    /// in the meantime — the stale timer should be ignored).
    pub fn retry(&mut self, tag: u64) -> Option<Message> {
        let p = self.pending.get_mut(&tag)?;
        p.attempts += 1;
        Some(Message::new(
            self.node,
            p.donor,
            MsgKind::ResvReq { frames: p.frames },
            tag,
        ))
    }

    /// Give up on a pending request (donor declared dead). A straggler ack
    /// arriving later is treated as stale. Returns the abandoned request,
    /// or `None` if the tag was not pending.
    pub fn cancel(&mut self, tag: u64) -> Option<PendingResv> {
        let p = self.pending.remove(&tag)?;
        self.settled.insert(tag);
        Some(p)
    }

    /// Times the pending request `tag` has been sent (0 if not pending).
    pub fn attempts(&self, tag: u64) -> u32 {
        self.pending.get(&tag).map_or(0, |p| p.attempts)
    }

    /// Handle the donor's acknowledgement; returns the usable reservation,
    /// or `None` for a stale duplicate (the retransmission race: our retry
    /// and the donor's first ack crossed on the wire).
    ///
    /// # Panics
    /// Panics on an ack that matches no request this endpoint ever sent, or
    /// whose address prefix does not name the donor (a broken donor would
    /// corrupt the no-translation-table scheme).
    pub fn on_ack(&mut self, msg: &Message) -> Option<Reservation> {
        assert_eq!(msg.kind, MsgKind::ResvAck, "expected ResvAck");
        let Some(p) = self.pending.remove(&msg.tag) else {
            assert!(
                self.settled.contains(&msg.tag),
                "unsolicited ResvAck tag {:#x}",
                msg.tag
            );
            return None;
        };
        self.settled.insert(msg.tag);
        let frames = p.frames;
        let (prefix, _) = cohfree_rmc::addr::split(msg.addr);
        assert_eq!(
            prefix,
            msg.src.get(),
            "donor {} acked with prefix {} — reservation address must carry \
             the donor's node id",
            msg.src,
            prefix
        );
        let r = Reservation {
            home: msg.src,
            prefixed_base: msg.addr,
            frames,
        };
        self.granted.push(r);
        Some(r)
    }

    /// Build the release message for a previously granted reservation.
    ///
    /// # Panics
    /// Panics if the reservation is not currently held.
    pub fn release(&mut self, resv: Reservation) -> Message {
        let i = self
            .granted
            .iter()
            .position(|r| *r == resv)
            .expect("releasing a reservation that is not held");
        self.granted.remove(i);
        let tag = self.next_tag;
        self.next_tag += 1;
        Message::with_addr(
            self.node,
            resv.home,
            MsgKind::ResvRelease,
            tag,
            resv.prefixed_base,
        )
    }

    /// Reservations currently held.
    pub fn held(&self) -> &[Reservation] {
        &self.granted
    }

    /// Requests awaiting an ack.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Donor-side protocol handler for one node's kernel.
#[derive(Debug)]
pub struct ResvDonor {
    node: NodeId,
    /// Acks already sent, by request tag: a retransmitted `ResvReq` (the
    /// original ack was lost or slow) must re-send the same grant, not
    /// carve a second zone.
    granted: HashMap<u64, Message>,
}

impl ResvDonor {
    /// Protocol endpoint for `node`.
    pub fn new(node: NodeId) -> ResvDonor {
        ResvDonor {
            node,
            granted: HashMap::new(),
        }
    }

    /// Handle an incoming `ResvReq`: carve a zone out of the local pool and
    /// build the ack whose address carries this node's prefix. A duplicate
    /// request (loss-recovery retransmission) replays the original ack
    /// without reserving again.
    pub fn on_request(
        &mut self,
        msg: &Message,
        frames_alloc: &mut FrameAllocator,
    ) -> Result<Message, FrameError> {
        let frames = match msg.kind {
            MsgKind::ResvReq { frames } => frames,
            other => panic!("donor got non-request {other:?}"),
        };
        assert_eq!(msg.dst, self.node, "misrouted reservation request");
        if let Some(ack) = self.granted.get(&msg.tag) {
            return Ok(*ack);
        }
        let local_base = frames_alloc.reserve(frames, msg.src)?;
        let mut ack = msg.reply(MsgKind::ResvAck);
        // "One modification is done to that physical address before sending
        // it back: the 14 most significant bits are changed to reflect the
        // identifier of node 3."
        ack.addr = encode(self.node, local_base);
        self.granted.insert(msg.tag, ack);
        Ok(ack)
    }

    /// Handle a `ResvRelease`: return the zone to the local pool.
    pub fn on_release(
        &self,
        msg: &Message,
        frames_alloc: &mut FrameAllocator,
    ) -> Result<u64, FrameError> {
        assert_eq!(msg.kind, MsgKind::ResvRelease, "expected ResvRelease");
        let local_base = cohfree_rmc::addr::strip_prefix(msg.addr);
        frames_alloc.release(local_base).map(|g| g.frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::PAGE_FRAME_BYTES;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn donor_alloc() -> FrameAllocator {
        FrameAllocator::new(1 << 20, 1 << 20) // 256-frame pool at 1 MiB
    }

    #[test]
    fn full_grant_release_cycle() {
        let mut req = ResvRequester::new(n(1));
        let mut donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();

        let m = req.request(n(3), 16);
        assert_eq!(m.kind, MsgKind::ResvReq { frames: 16 });
        assert_eq!(req.pending(), 1);

        let ack = donor.on_request(&m, &mut alloc).unwrap();
        assert_eq!(ack.dst, n(1));
        // Address carries donor's prefix over the zone base.
        assert_eq!(ack.addr >> 34, 3);
        assert_eq!(alloc.granted_frames(), 16);

        let resv = req.on_ack(&ack).expect("fresh ack");
        assert_eq!(resv.home, n(3));
        assert_eq!(resv.frames, 16);
        assert_eq!(req.held().len(), 1);
        assert_eq!(req.pending(), 0);

        let rel = req.release(resv);
        let freed = donor.on_release(&rel, &mut alloc).unwrap();
        assert_eq!(freed, 16);
        assert_eq!(alloc.granted_frames(), 0);
        assert!(req.held().is_empty());
    }

    #[test]
    fn paper_figure4_addresses() {
        // Donor pool is placed so the first zone lands at a recognizable
        // base; the requester sees it with node 3's prefix.
        let mut req = ResvRequester::new(n(1));
        let mut donor = ResvDonor::new(n(3));
        let mut alloc = FrameAllocator::new(0x4100_0000, 4 << 30);
        let m = req.request(n(3), (4u64 << 30) / PAGE_FRAME_BYTES);
        let ack = donor.on_request(&m, &mut alloc).unwrap();
        let resv = req.on_ack(&ack).expect("fresh ack");
        assert_eq!(resv.prefixed_base, (3u64 << 34) | 0x4100_0000);
        // The requester's CPU later emits prefixed addresses; the donor RMC
        // strips back to the local zone.
        assert_eq!(
            cohfree_rmc::addr::strip_prefix(resv.prefixed_base + 0xB0),
            0x4100_00B0
        );
    }

    #[test]
    fn donor_exhaustion_propagates() {
        let mut req = ResvRequester::new(n(1));
        let mut donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();
        let m = req.request(n(3), 10_000);
        assert!(donor.on_request(&m, &mut alloc).is_err());
        assert_eq!(alloc.granted_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "unsolicited")]
    fn unsolicited_ack_panics() {
        let mut req = ResvRequester::new(n(1));
        let bogus = Message::with_addr(n(3), n(1), MsgKind::ResvAck, 0xBAD, encode(n(3), 0));
        req.on_ack(&bogus);
    }

    #[test]
    #[should_panic(expected = "donor's node id")]
    fn ack_with_wrong_prefix_panics() {
        let mut req = ResvRequester::new(n(1));
        let mut donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();
        let m = req.request(n(3), 4);
        let mut ack = donor.on_request(&m, &mut alloc).unwrap();
        ack.addr = encode(n(7), 0x1000); // corrupted prefix
        req.on_ack(&ack);
    }

    #[test]
    #[should_panic(expected = "from self")]
    fn self_reservation_rejected() {
        ResvRequester::new(n(1)).request(n(1), 4);
    }

    #[test]
    fn lost_request_is_retried_with_the_same_tag() {
        // Regression: a ResvReq lost on the fabric used to strand the
        // pending tag forever — there was no way to rebuild the message.
        let mut req = ResvRequester::new(n(1));
        let mut donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();
        let m = req.request(n(3), 8);
        // The fabric ate `m`. The kernel's timer fires and retries.
        let m2 = req.retry(m.tag).expect("tag still pending");
        assert_eq!(m2.tag, m.tag);
        assert_eq!(m2.kind, m.kind);
        assert_eq!(req.attempts(m.tag), 2);
        let ack = donor.on_request(&m2, &mut alloc).unwrap();
        let resv = req.on_ack(&ack).expect("fresh ack");
        assert_eq!(resv.frames, 8);
        assert_eq!(req.pending(), 0);
        // A stale timer firing after the ack must not rebuild anything.
        assert!(req.retry(m.tag).is_none());
    }

    #[test]
    fn lost_ack_is_replayed_without_double_reservation() {
        // The donor granted but the ack was lost: the retransmitted request
        // must replay the same zone, not carve a second one.
        let mut req = ResvRequester::new(n(1));
        let mut donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();
        let m = req.request(n(3), 8);
        let ack1 = donor.on_request(&m, &mut alloc).unwrap(); // lost in flight
        let m2 = req.retry(m.tag).unwrap();
        let ack2 = donor.on_request(&m2, &mut alloc).unwrap();
        assert_eq!(ack1, ack2, "duplicate request must replay the same grant");
        assert_eq!(alloc.granted_frames(), 8, "no double reservation");
        // Both acks eventually arrive; the second is recognized as stale.
        assert!(req.on_ack(&ack1).is_some());
        assert!(req.on_ack(&ack2).is_none());
        assert_eq!(req.held().len(), 1);
    }

    #[test]
    fn cancel_abandons_pending_and_ignores_straggler_ack() {
        let mut req = ResvRequester::new(n(1));
        let mut donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();
        let m = req.request(n(3), 8);
        let ack = donor.on_request(&m, &mut alloc).unwrap();
        // Failure detection gives up on the donor before the ack arrives.
        let abandoned = req.cancel(m.tag).expect("was pending");
        assert_eq!(abandoned.donor, n(3));
        assert_eq!(abandoned.frames, 8);
        assert_eq!(req.pending(), 0);
        assert!(req.cancel(m.tag).is_none(), "double cancel is a no-op");
        assert!(req.retry(m.tag).is_none(), "cancelled tag cannot retry");
        // The straggler ack is stale, not unsolicited.
        assert!(req.on_ack(&ack).is_none());
        assert!(req.held().is_empty());
    }

    #[test]
    fn reservation_survives_a_lossy_fabric_via_retry() {
        // End-to-end at the os level: drive the request/ack exchange over a
        // real lossy Fabric, retrying on every loss, until the grant lands.
        use cohfree_fabric::{Fabric, FabricConfig, Step, Topology};
        use cohfree_sim::{SimDuration, SimTime};

        let mut fabric = Fabric::new(
            Topology::prototype(),
            FabricConfig {
                loss_rate: 0.4,
                ..FabricConfig::default()
            },
        );
        // Walk a message to delivery; None if the fabric dropped it.
        let deliver = |f: &mut Fabric, start: SimTime, msg: &Message| -> Option<SimTime> {
            let mut at = msg.src;
            let mut now = start;
            loop {
                match f.step(now, at, msg) {
                    Step::Deliver { at: t } => return Some(t),
                    Step::Forward { next, arrive } => {
                        at = next;
                        now = arrive;
                    }
                    Step::Dropped => return None,
                }
            }
        };

        let mut req = ResvRequester::new(n(1));
        let mut donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();
        let mut now = SimTime::ZERO;
        let first = req.request(n(3), 16);
        let tag = first.tag;
        let mut outbound = first;
        let resv = loop {
            assert!(req.attempts(tag) < 64, "retry loop failed to converge");
            if let Some(t_req) = deliver(&mut fabric, now, &outbound) {
                let ack = donor.on_request(&outbound, &mut alloc).unwrap();
                if let Some(t_ack) = deliver(&mut fabric, t_req, &ack) {
                    if let Some(r) = req.on_ack(&ack) {
                        let _ = t_ack;
                        break r;
                    }
                }
            }
            now += SimDuration::us(30); // loss timer
            outbound = req.retry(tag).expect("still pending");
        };
        assert_eq!(resv.home, n(3));
        assert_eq!(resv.frames, 16);
        assert_eq!(alloc.granted_frames(), 16, "retries never double-reserve");
        assert_eq!(req.pending(), 0);
    }

    #[test]
    fn two_borrowers_get_disjoint_zones() {
        let mut donor = ResvDonor::new(n(4));
        let mut alloc = donor_alloc();
        let mut r3 = ResvRequester::new(n(3));
        let mut r5 = ResvRequester::new(n(5));
        let a3 = donor.on_request(&r3.request(n(4), 8), &mut alloc).unwrap();
        let a5 = donor.on_request(&r5.request(n(4), 8), &mut alloc).unwrap();
        let z3 = r3.on_ack(&a3).unwrap();
        let z5 = r5.on_ack(&a5).unwrap();
        let end3 = z3.prefixed_base + z3.frames * PAGE_FRAME_BYTES;
        assert!(
            z5.prefixed_base >= end3
                || z3.prefixed_base >= z5.prefixed_base + z5.frames * PAGE_FRAME_BYTES
        );
    }
}
