//! The remote-memory reservation protocol (Section III-B, Figure 4).
//!
//! Reservation is software: kernels exchange messages over the same fabric
//! the RMCs use. The flow for "node 1 borrows 4 GiB from node 3" is:
//!
//! 1. requester kernel sends `ResvReq { frames }` to the donor,
//! 2. donor kernel reserves a **contiguous physical zone**, pins it (never
//!    swapped, never given to local processes — both enforced by
//!    [`crate::frames::FrameAllocator`]), and replies `ResvAck` whose
//!    address field is the zone base **with the 14 prefix bits set to the
//!    donor's node id**,
//! 3. requester writes virtual→prefixed-physical translations into its page
//!    table; from then on access is pure hardware.
//!
//! Release reverses the grant. The protocol is deliberately not
//! time-critical; the paper's point is that it happens *once per zone*, off
//! the access path.

use crate::frames::{FrameAllocator, FrameError};
use cohfree_fabric::{Message, MsgKind, NodeId};
use cohfree_rmc::addr::encode;
use std::collections::HashMap;

/// A granted reservation as seen by the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Donor node.
    pub home: NodeId,
    /// Prefixed physical base address usable directly in page tables.
    pub prefixed_base: u64,
    /// Frames granted.
    pub frames: u64,
}

/// Requester-side protocol state for one node's kernel.
#[derive(Debug)]
pub struct ResvRequester {
    node: NodeId,
    next_tag: u64,
    pending: HashMap<u64, u64>, // tag -> frames requested
    granted: Vec<Reservation>,
}

impl ResvRequester {
    /// Protocol endpoint for `node`.
    pub fn new(node: NodeId) -> ResvRequester {
        ResvRequester {
            node,
            next_tag: (node.get() as u64) << 48 | 1 << 40, // disjoint from RMC tags
            pending: HashMap::new(),
            granted: Vec::new(),
        }
    }

    /// Build the request message for `frames` frames from `donor`.
    pub fn request(&mut self, donor: NodeId, frames: u64) -> Message {
        assert_ne!(donor, self.node, "cannot reserve remote memory from self");
        assert!(frames > 0, "zero-frame reservation");
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, frames);
        Message::new(self.node, donor, MsgKind::ResvReq { frames }, tag)
    }

    /// Handle the donor's acknowledgement; returns the usable reservation.
    ///
    /// # Panics
    /// Panics on an ack that matches no pending request, or whose address
    /// prefix does not name the donor (a broken donor would corrupt the
    /// no-translation-table scheme).
    pub fn on_ack(&mut self, msg: &Message) -> Reservation {
        assert_eq!(msg.kind, MsgKind::ResvAck, "expected ResvAck");
        let frames = self
            .pending
            .remove(&msg.tag)
            .unwrap_or_else(|| panic!("unsolicited ResvAck tag {:#x}", msg.tag));
        let (prefix, _) = cohfree_rmc::addr::split(msg.addr);
        assert_eq!(
            prefix,
            msg.src.get(),
            "donor {} acked with prefix {} — reservation address must carry \
             the donor's node id",
            msg.src,
            prefix
        );
        let r = Reservation {
            home: msg.src,
            prefixed_base: msg.addr,
            frames,
        };
        self.granted.push(r);
        r
    }

    /// Build the release message for a previously granted reservation.
    ///
    /// # Panics
    /// Panics if the reservation is not currently held.
    pub fn release(&mut self, resv: Reservation) -> Message {
        let i = self
            .granted
            .iter()
            .position(|r| *r == resv)
            .expect("releasing a reservation that is not held");
        self.granted.remove(i);
        let tag = self.next_tag;
        self.next_tag += 1;
        Message::with_addr(
            self.node,
            resv.home,
            MsgKind::ResvRelease,
            tag,
            resv.prefixed_base,
        )
    }

    /// Reservations currently held.
    pub fn held(&self) -> &[Reservation] {
        &self.granted
    }

    /// Requests awaiting an ack.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Donor-side protocol handler for one node's kernel.
#[derive(Debug)]
pub struct ResvDonor {
    node: NodeId,
}

impl ResvDonor {
    /// Protocol endpoint for `node`.
    pub fn new(node: NodeId) -> ResvDonor {
        ResvDonor { node }
    }

    /// Handle an incoming `ResvReq`: carve a zone out of the local pool and
    /// build the ack whose address carries this node's prefix.
    pub fn on_request(
        &self,
        msg: &Message,
        frames_alloc: &mut FrameAllocator,
    ) -> Result<Message, FrameError> {
        let frames = match msg.kind {
            MsgKind::ResvReq { frames } => frames,
            other => panic!("donor got non-request {other:?}"),
        };
        assert_eq!(msg.dst, self.node, "misrouted reservation request");
        let local_base = frames_alloc.reserve(frames, msg.src)?;
        let mut ack = msg.reply(MsgKind::ResvAck);
        // "One modification is done to that physical address before sending
        // it back: the 14 most significant bits are changed to reflect the
        // identifier of node 3."
        ack.addr = encode(self.node, local_base);
        Ok(ack)
    }

    /// Handle a `ResvRelease`: return the zone to the local pool.
    pub fn on_release(
        &self,
        msg: &Message,
        frames_alloc: &mut FrameAllocator,
    ) -> Result<u64, FrameError> {
        assert_eq!(msg.kind, MsgKind::ResvRelease, "expected ResvRelease");
        let local_base = cohfree_rmc::addr::strip_prefix(msg.addr);
        frames_alloc.release(local_base).map(|g| g.frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::PAGE_FRAME_BYTES;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn donor_alloc() -> FrameAllocator {
        FrameAllocator::new(1 << 20, 1 << 20) // 256-frame pool at 1 MiB
    }

    #[test]
    fn full_grant_release_cycle() {
        let mut req = ResvRequester::new(n(1));
        let donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();

        let m = req.request(n(3), 16);
        assert_eq!(m.kind, MsgKind::ResvReq { frames: 16 });
        assert_eq!(req.pending(), 1);

        let ack = donor.on_request(&m, &mut alloc).unwrap();
        assert_eq!(ack.dst, n(1));
        // Address carries donor's prefix over the zone base.
        assert_eq!(ack.addr >> 34, 3);
        assert_eq!(alloc.granted_frames(), 16);

        let resv = req.on_ack(&ack);
        assert_eq!(resv.home, n(3));
        assert_eq!(resv.frames, 16);
        assert_eq!(req.held().len(), 1);
        assert_eq!(req.pending(), 0);

        let rel = req.release(resv);
        let freed = donor.on_release(&rel, &mut alloc).unwrap();
        assert_eq!(freed, 16);
        assert_eq!(alloc.granted_frames(), 0);
        assert!(req.held().is_empty());
    }

    #[test]
    fn paper_figure4_addresses() {
        // Donor pool is placed so the first zone lands at a recognizable
        // base; the requester sees it with node 3's prefix.
        let mut req = ResvRequester::new(n(1));
        let donor = ResvDonor::new(n(3));
        let mut alloc = FrameAllocator::new(0x4100_0000, 4 << 30);
        let m = req.request(n(3), (4u64 << 30) / PAGE_FRAME_BYTES);
        let ack = donor.on_request(&m, &mut alloc).unwrap();
        let resv = req.on_ack(&ack);
        assert_eq!(resv.prefixed_base, (3u64 << 34) | 0x4100_0000);
        // The requester's CPU later emits prefixed addresses; the donor RMC
        // strips back to the local zone.
        assert_eq!(
            cohfree_rmc::addr::strip_prefix(resv.prefixed_base + 0xB0),
            0x4100_00B0
        );
    }

    #[test]
    fn donor_exhaustion_propagates() {
        let mut req = ResvRequester::new(n(1));
        let donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();
        let m = req.request(n(3), 10_000);
        assert!(donor.on_request(&m, &mut alloc).is_err());
        assert_eq!(alloc.granted_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "unsolicited")]
    fn unsolicited_ack_panics() {
        let mut req = ResvRequester::new(n(1));
        let bogus = Message::with_addr(n(3), n(1), MsgKind::ResvAck, 0xBAD, encode(n(3), 0));
        req.on_ack(&bogus);
    }

    #[test]
    #[should_panic(expected = "donor's node id")]
    fn ack_with_wrong_prefix_panics() {
        let mut req = ResvRequester::new(n(1));
        let donor = ResvDonor::new(n(3));
        let mut alloc = donor_alloc();
        let m = req.request(n(3), 4);
        let mut ack = donor.on_request(&m, &mut alloc).unwrap();
        ack.addr = encode(n(7), 0x1000); // corrupted prefix
        req.on_ack(&ack);
    }

    #[test]
    #[should_panic(expected = "from self")]
    fn self_reservation_rejected() {
        ResvRequester::new(n(1)).request(n(1), 4);
    }

    #[test]
    fn two_borrowers_get_disjoint_zones() {
        let donor = ResvDonor::new(n(4));
        let mut alloc = donor_alloc();
        let mut r3 = ResvRequester::new(n(3));
        let mut r5 = ResvRequester::new(n(5));
        let a3 = donor.on_request(&r3.request(n(4), 8), &mut alloc).unwrap();
        let a5 = donor.on_request(&r5.request(n(4), 8), &mut alloc).unwrap();
        let z3 = r3.on_ack(&a3);
        let z5 = r5.on_ack(&a5);
        let end3 = z3.prefixed_base + z3.frames * PAGE_FRAME_BYTES;
        assert!(
            z5.prefixed_base >= end3
                || z3.prefixed_base >= z5.prefixed_base + z5.frames * PAGE_FRAME_BYTES
        );
    }
}
