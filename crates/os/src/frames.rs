//! Physical frame accounting for one node.
//!
//! Each node's 16 GiB is split at boot: a *private* region the local OS uses
//! freely, and a *pool* region set aside for the cluster-wide shared memory
//! pool (8 GiB + 8 GiB in the prototype, totalling the 128 GiB pool). Pool
//! frames are reserved in **contiguous zones** — the paper reserves whole
//! physical areas up front so later load/store traffic needs no per-page
//! software — and every grant is recorded in a lender ledger so:
//!
//! * a frame is never granted twice,
//! * granted frames are pinned (never swapped, never handed to local
//!   processes),
//! * release returns exactly the granted zone.

use cohfree_fabric::NodeId;
use std::collections::BTreeMap;

/// Frame size (x86-64 base pages).
pub const PAGE_FRAME_BYTES: u64 = 4096;

/// Why a reservation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough contiguous free frames in the pool.
    NoContiguousZone {
        /// Frames that were requested.
        requested_frames: u64,
    },
    /// Release of a zone that was never granted (or wrong base/size).
    UnknownGrant {
        /// Base address the caller tried to release.
        base: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NoContiguousZone { requested_frames } => {
                write!(
                    f,
                    "no contiguous zone of {requested_frames} frames available"
                )
            }
            FrameError::UnknownGrant { base } => {
                write!(f, "release of unknown grant at {base:#x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A zone granted to a borrower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Local physical base address of the zone.
    pub base: u64,
    /// Frames in the zone.
    pub frames: u64,
    /// Node the zone was lent to (may be this node for local pool use).
    pub borrower: NodeId,
}

/// Frame allocator for one node's physical memory.
#[derive(Debug)]
pub struct FrameAllocator {
    /// First byte of the pool region.
    pool_base: u64,
    /// Bytes in the pool region.
    pool_bytes: u64,
    /// Free zones in the pool: base -> frames (coalesced, disjoint).
    free: BTreeMap<u64, u64>,
    /// Outstanding grants: base -> grant.
    grants: BTreeMap<u64, Grant>,
    /// Private-region bump cursor (local OS allocations are not the focus;
    /// a bump allocator suffices and never interacts with the pool).
    private_cursor: u64,
    private_end: u64,
}

impl FrameAllocator {
    /// Build the allocator for a node with `private_bytes` reserved for the
    /// local OS and `pool_bytes` contributed to the shared pool; the pool
    /// begins right after the private region.
    ///
    /// # Panics
    /// Panics unless both sizes are positive multiples of the frame size.
    pub fn new(private_bytes: u64, pool_bytes: u64) -> FrameAllocator {
        assert!(
            private_bytes.is_multiple_of(PAGE_FRAME_BYTES)
                && pool_bytes.is_multiple_of(PAGE_FRAME_BYTES),
            "region sizes must be frame-aligned"
        );
        assert!(pool_bytes > 0, "pool must be non-empty");
        let mut free = BTreeMap::new();
        free.insert(private_bytes, pool_bytes / PAGE_FRAME_BYTES);
        FrameAllocator {
            pool_base: private_bytes,
            pool_bytes,
            free,
            grants: BTreeMap::new(),
            private_cursor: 0,
            private_end: private_bytes,
        }
    }

    /// First byte of the pool region.
    pub fn pool_base(&self) -> u64 {
        self.pool_base
    }

    /// Total pool frames.
    pub fn pool_frames(&self) -> u64 {
        self.pool_bytes / PAGE_FRAME_BYTES
    }

    /// Currently free pool frames.
    pub fn free_frames(&self) -> u64 {
        self.free.values().sum()
    }

    /// Frames currently granted out.
    pub fn granted_frames(&self) -> u64 {
        self.grants.values().map(|g| g.frames).sum()
    }

    /// Reserve a contiguous zone of `frames` pool frames for `borrower`
    /// (first-fit). Returns the zone's local physical base address.
    pub fn reserve(&mut self, frames: u64, borrower: NodeId) -> Result<u64, FrameError> {
        assert!(frames > 0, "zero-frame reservation");
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= frames)
            .map(|(&base, &len)| (base, len));
        let (base, len) = slot.ok_or(FrameError::NoContiguousZone {
            requested_frames: frames,
        })?;
        self.free.remove(&base);
        if len > frames {
            self.free
                .insert(base + frames * PAGE_FRAME_BYTES, len - frames);
        }
        self.grants.insert(
            base,
            Grant {
                base,
                frames,
                borrower,
            },
        );
        Ok(base)
    }

    /// Release a previously granted zone by its base address. The zone is
    /// coalesced back into the free map.
    pub fn release(&mut self, base: u64) -> Result<Grant, FrameError> {
        let grant = self
            .grants
            .remove(&base)
            .ok_or(FrameError::UnknownGrant { base })?;
        self.insert_free(base, grant.frames);
        Ok(grant)
    }

    fn insert_free(&mut self, base: u64, frames: u64) {
        let mut base = base;
        let mut frames = frames;
        // Coalesce with predecessor.
        if let Some((&pbase, &plen)) = self.free.range(..base).next_back() {
            if pbase + plen * PAGE_FRAME_BYTES == base {
                self.free.remove(&pbase);
                base = pbase;
                frames += plen;
            }
        }
        // Coalesce with successor.
        let end = base + frames * PAGE_FRAME_BYTES;
        if let Some(&slen) = self.free.get(&end) {
            self.free.remove(&end);
            frames += slen;
        }
        self.free.insert(base, frames);
    }

    /// The grant covering `addr`, if any — used to assert that remote
    /// accesses only touch properly reserved zones.
    pub fn grant_covering(&self, addr: u64) -> Option<&Grant> {
        self.grants
            .range(..=addr)
            .next_back()
            .map(|(_, g)| g)
            .filter(|g| addr < g.base + g.frames * PAGE_FRAME_BYTES)
    }

    /// All outstanding grants (sorted by base).
    pub fn grants(&self) -> impl Iterator<Item = &Grant> {
        self.grants.values()
    }

    /// Allocate one frame from the *private* region for the local OS /
    /// local processes. Returns `None` when the private region is exhausted
    /// (which is when a real system would start swapping).
    pub fn alloc_private(&mut self) -> Option<u64> {
        if self.private_cursor + PAGE_FRAME_BYTES <= self.private_end {
            let f = self.private_cursor;
            self.private_cursor += PAGE_FRAME_BYTES;
            Some(f)
        } else {
            None
        }
    }

    /// Bytes of private memory still unallocated.
    pub fn private_remaining(&self) -> u64 {
        self.private_end - self.private_cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn alloc() -> FrameAllocator {
        // 1 MiB private + 1 MiB pool = 256 + 256 frames.
        FrameAllocator::new(1 << 20, 1 << 20)
    }

    #[test]
    fn pool_starts_after_private() {
        let a = alloc();
        assert_eq!(a.pool_base(), 1 << 20);
        assert_eq!(a.pool_frames(), 256);
        assert_eq!(a.free_frames(), 256);
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut a = alloc();
        let base = a.reserve(16, n(2)).unwrap();
        assert_eq!(base, a.pool_base());
        assert_eq!(a.free_frames(), 240);
        assert_eq!(a.granted_frames(), 16);
        let g = a.release(base).unwrap();
        assert_eq!(g.frames, 16);
        assert_eq!(g.borrower, n(2));
        assert_eq!(a.free_frames(), 256);
        assert_eq!(a.granted_frames(), 0);
    }

    #[test]
    fn grants_are_disjoint() {
        let mut a = alloc();
        let b1 = a.reserve(10, n(2)).unwrap();
        let b2 = a.reserve(10, n(3)).unwrap();
        assert_eq!(b2, b1 + 10 * PAGE_FRAME_BYTES);
        assert!(a.grant_covering(b1).is_some());
        assert_eq!(
            a.grant_covering(b1 + 9 * PAGE_FRAME_BYTES)
                .unwrap()
                .borrower,
            n(2)
        );
        assert_eq!(a.grant_covering(b2).unwrap().borrower, n(3));
    }

    #[test]
    fn exhaustion_reports_no_zone() {
        let mut a = alloc();
        a.reserve(200, n(2)).unwrap();
        assert_eq!(
            a.reserve(100, n(3)),
            Err(FrameError::NoContiguousZone {
                requested_frames: 100
            })
        );
        // But a smaller zone still fits.
        assert!(a.reserve(56, n(3)).is_ok());
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn release_coalesces_fragments() {
        let mut a = alloc();
        let b1 = a.reserve(10, n(2)).unwrap();
        let b2 = a.reserve(10, n(2)).unwrap();
        let b3 = a.reserve(10, n(2)).unwrap();
        // Free middle, then sides; afterwards a full-size zone must fit.
        a.release(b2).unwrap();
        a.release(b1).unwrap();
        a.release(b3).unwrap();
        assert_eq!(a.free_frames(), 256);
        let big = a.reserve(256, n(4)).unwrap();
        assert_eq!(big, a.pool_base());
    }

    #[test]
    fn unknown_release_rejected() {
        let mut a = alloc();
        assert_eq!(
            a.release(0x9999),
            Err(FrameError::UnknownGrant { base: 0x9999 })
        );
        let b = a.reserve(4, n(2)).unwrap();
        // Releasing an interior address is also unknown: grants are by base.
        assert!(a.release(b + PAGE_FRAME_BYTES).is_err());
        assert!(a.release(b).is_ok());
        assert!(a.release(b).is_err(), "double release rejected");
    }

    #[test]
    fn private_allocation_never_touches_pool() {
        let mut a = alloc();
        let mut last = None;
        while let Some(f) = a.alloc_private() {
            assert!(f < a.pool_base(), "private frame {f:#x} inside pool");
            last = Some(f);
        }
        assert_eq!(last, Some((1 << 20) - PAGE_FRAME_BYTES));
        assert_eq!(a.private_remaining(), 0);
        assert_eq!(a.free_frames(), 256, "pool untouched");
    }

    #[test]
    fn first_fit_reuses_early_holes() {
        let mut a = alloc();
        let b1 = a.reserve(8, n(2)).unwrap();
        let _b2 = a.reserve(8, n(2)).unwrap();
        a.release(b1).unwrap();
        let b3 = a.reserve(4, n(3)).unwrap();
        assert_eq!(b3, b1, "first-fit should reuse the first hole");
    }

    #[test]
    #[should_panic(expected = "frame-aligned")]
    fn unaligned_sizes_rejected() {
        FrameAllocator::new(100, 1 << 20);
    }
}
