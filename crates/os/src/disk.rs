//! Rotational-disk timing model (the motivation baseline).
//!
//! The paper's introduction: disk swapping makes thrashing "increase
//! execution time to prohibitive levels". We model a 2010-era SATA disk:
//! positioning (seek + rotational) cost for non-sequential requests, a
//! streaming transfer rate, and FIFO queueing at the device.

use cohfree_sim::queueing::FifoServer;
use cohfree_sim::stats::Counter;
use cohfree_sim::{SimDuration, SimTime};

/// Disk timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Average positioning time (seek + half-rotation) for a random request.
    pub positioning: SimDuration,
    /// Sustained transfer rate in bytes per microsecond (100 MB/s ⇒ 100).
    pub bytes_per_us: f64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            positioning: SimDuration::us(8_000), // 8 ms
            bytes_per_us: 100.0,
        }
    }
}

/// One disk device.
#[derive(Debug)]
pub struct Disk {
    cfg: DiskConfig,
    device: FifoServer,
    /// Byte offset right after the last transferred request (sequential
    /// follow-ons skip positioning).
    head_pos: Option<u64>,
    requests: Counter,
    sequential: Counter,
}

impl Disk {
    /// A new idle disk.
    pub fn new(cfg: DiskConfig) -> Disk {
        Disk {
            cfg,
            device: FifoServer::new(),
            head_pos: None,
            requests: Counter::new(),
            sequential: Counter::new(),
        }
    }

    /// Issue a transfer of `bytes` at disk offset `offset` at time `now`;
    /// returns the completion instant.
    pub fn access(&mut self, now: SimTime, offset: u64, bytes: u32) -> SimTime {
        let sequential = self.head_pos == Some(offset);
        let positioning = if sequential {
            self.sequential.inc();
            SimDuration::ZERO
        } else {
            self.cfg.positioning
        };
        let transfer = SimDuration::ns_f64(bytes as f64 / self.cfg.bytes_per_us * 1e3);
        self.head_pos = Some(offset + bytes as u64);
        self.requests.inc();
        self.device.accept(now, positioning + transfer)
    }

    /// Requests served.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Requests that were sequential with their predecessor.
    pub fn sequential_hits(&self) -> u64 {
        self.sequential.get()
    }

    /// Unloaded random-access service time for `bytes`.
    pub fn random_service(&self, bytes: u32) -> SimDuration {
        self.cfg.positioning + SimDuration::ns_f64(bytes as f64 / self.cfg.bytes_per_us * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_access_pays_positioning() {
        let mut d = Disk::new(DiskConfig::default());
        let t = d.access(SimTime::ZERO, 0, 4096);
        // 8ms + 4096B / 100MB/s ≈ 8ms + 41us
        let expect = SimDuration::us(8_000) + SimDuration::ns_f64(40_960.0);
        assert_eq!(t.since(SimTime::ZERO), expect);
    }

    #[test]
    fn sequential_access_skips_positioning() {
        let mut d = Disk::new(DiskConfig::default());
        let t1 = d.access(SimTime::ZERO, 0, 4096);
        let t2 = d.access(t1, 4096, 4096);
        assert_eq!(t2.since(t1), SimDuration::ns_f64(40_960.0));
        assert_eq!(d.sequential_hits(), 1);
    }

    #[test]
    fn non_sequential_after_sequential_seeks_again() {
        let mut d = Disk::new(DiskConfig::default());
        let t1 = d.access(SimTime::ZERO, 0, 4096);
        let t2 = d.access(t1, 1 << 30, 4096);
        assert!(t2.since(t1) > SimDuration::us(8_000));
        assert_eq!(d.sequential_hits(), 0);
        assert_eq!(d.requests(), 2);
    }

    #[test]
    fn requests_queue_at_the_device() {
        let mut d = Disk::new(DiskConfig::default());
        let t1 = d.access(SimTime::ZERO, 0, 4096);
        let t2 = d.access(SimTime::ZERO, 1 << 30, 4096);
        assert!(t2 > t1, "second request must wait for the device");
    }

    #[test]
    fn disk_is_orders_of_magnitude_slower_than_memory() {
        let d = Disk::new(DiskConfig::default());
        // One random page ≈ 8ms vs ~1.x us remote memory: factor > 1000.
        assert!(d.random_service(4096) > SimDuration::us(1_000));
    }
}
