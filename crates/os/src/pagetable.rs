//! Per-process virtual memory: page table and TLB.
//!
//! Section III-B of the paper leans on standard x86-64 virtual memory: the
//! OS writes a virtual→physical translation into the page table — where the
//! *physical* address may carry a remote-node prefix — and from then on the
//! hardware TLB/walker path makes loads and stores reach remote memory with
//! no software involved. We model:
//!
//! * a page table mapping virtual page numbers to 48-bit physical addresses
//!   (possibly prefixed) with per-page state,
//! * a fully-associative LRU [`Tlb`] of configurable size,
//! * translation outcomes distinguishing TLB hits, walks, and faults, so the
//!   owning backend can charge the right costs.

use cohfree_sim::FastMap;

/// Page size (matches the frame size).
pub const PAGE_BYTES: u64 = 4096;

/// Per-page state flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFlags {
    /// Mapped to a resident physical frame (local, or remote via prefix).
    Present,
    /// Known to the process but currently swapped out to the given swap
    /// slot (page-cache backends fault it in on access).
    Swapped {
        /// Backing-store slot holding the page contents.
        slot: u64,
    },
}

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Physical address of the page frame (page-aligned; may be prefixed).
    pub phys: u64,
    /// Page state.
    pub flags: PageFlags,
}

/// Outcome of a translation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// TLB hit: physical address of the access.
    TlbHit {
        /// Translated physical address.
        phys: u64,
    },
    /// TLB miss but a valid PTE was found by the walker: charge a walk.
    Walked {
        /// Translated physical address.
        phys: u64,
    },
    /// Page is swapped out: major fault; the handler must bring it in and
    /// re-map before retrying.
    MajorFault {
        /// Backing-store slot to fetch the page from.
        slot: u64,
    },
    /// No mapping at all: the access is to unallocated memory.
    Unmapped,
}

/// TLB geometry.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Entries (fully associative, LRU).
    pub entries: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig { entries: 64 }
    }
}

/// Fully-associative LRU TLB.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    /// vpn -> (phys page base, lru stamp)
    map: FastMap<u64, (u64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// An empty TLB.
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        Tlb {
            cfg,
            map: FastMap::default(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a virtual page number; LRU-refresh on hit.
    pub fn lookup(&mut self, vpn: u64) -> Option<u64> {
        self.clock += 1;
        match self.map.get_mut(&vpn) {
            Some((phys, stamp)) => {
                *stamp = self.clock;
                self.hits += 1;
                Some(*phys)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install a translation (evicting the LRU entry if full).
    pub fn insert(&mut self, vpn: u64, phys_page: u64) {
        self.clock += 1;
        if self.map.len() >= self.cfg.entries && !self.map.contains_key(&vpn) {
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, (_, s))| *s) {
                self.map.remove(&victim);
            }
        }
        self.map.insert(vpn, (phys_page, self.clock));
    }

    /// Drop a translation (on unmap / swap-out).
    pub fn invalidate(&mut self, vpn: u64) {
        self.map.remove(&vpn);
    }

    /// Drop everything (context switch / global shootdown).
    pub fn flush(&mut self) {
        self.map.clear();
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A per-process page table plus its TLB.
#[derive(Debug)]
pub struct PageTable {
    ptes: FastMap<u64, Pte>,
    tlb: Tlb,
    walks: u64,
    major_faults: u64,
}

impl PageTable {
    /// An empty address space.
    pub fn new(tlb: TlbConfig) -> PageTable {
        PageTable {
            ptes: FastMap::default(),
            tlb: Tlb::new(tlb),
            walks: 0,
            major_faults: 0,
        }
    }

    /// Virtual page number of `va`.
    #[inline]
    pub fn vpn(va: u64) -> u64 {
        va / PAGE_BYTES
    }

    /// Map virtual page `vpn` to the page-aligned physical address `phys`
    /// (present). Overwrites any previous mapping and invalidates the TLB
    /// entry.
    pub fn map(&mut self, vpn: u64, phys: u64) {
        debug_assert!(phys.is_multiple_of(PAGE_BYTES), "unaligned frame address");
        self.ptes.insert(
            vpn,
            Pte {
                phys,
                flags: PageFlags::Present,
            },
        );
        self.tlb.invalidate(vpn);
    }

    /// Mark `vpn` swapped out to `slot`.
    pub fn mark_swapped(&mut self, vpn: u64, slot: u64) {
        self.ptes.insert(
            vpn,
            Pte {
                phys: 0,
                flags: PageFlags::Swapped { slot },
            },
        );
        self.tlb.invalidate(vpn);
    }

    /// Remove the mapping entirely.
    pub fn unmap(&mut self, vpn: u64) {
        self.ptes.remove(&vpn);
        self.tlb.invalidate(vpn);
    }

    /// Translate a virtual address.
    pub fn translate(&mut self, va: u64) -> Translation {
        let vpn = Self::vpn(va);
        let off = va % PAGE_BYTES;
        if let Some(page) = self.tlb.lookup(vpn) {
            return Translation::TlbHit { phys: page + off };
        }
        match self.ptes.get(&vpn) {
            Some(Pte {
                phys,
                flags: PageFlags::Present,
            }) => {
                self.walks += 1;
                self.tlb.insert(vpn, *phys);
                Translation::Walked { phys: phys + off }
            }
            Some(Pte {
                flags: PageFlags::Swapped { slot },
                ..
            }) => {
                self.major_faults += 1;
                Translation::MajorFault { slot: *slot }
            }
            None => Translation::Unmapped,
        }
    }

    /// Current PTE for `vpn`, if any.
    pub fn pte(&self, vpn: u64) -> Option<Pte> {
        self.ptes.get(&vpn).copied()
    }

    /// Page walks performed (TLB misses with a valid mapping).
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Major faults raised (swapped pages touched).
    pub fn major_faults(&self) -> u64 {
        self.major_faults
    }

    /// The TLB (for stats / explicit invalidation).
    pub fn tlb(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.ptes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_translation() {
        let mut pt = PageTable::new(TlbConfig::default());
        assert_eq!(pt.translate(0x1000), Translation::Unmapped);
    }

    #[test]
    fn walk_then_tlb_hit() {
        let mut pt = PageTable::new(TlbConfig::default());
        pt.map(1, 0x8000);
        assert_eq!(pt.translate(0x1123), Translation::Walked { phys: 0x8123 });
        assert_eq!(pt.translate(0x1456), Translation::TlbHit { phys: 0x8456 });
        assert_eq!(pt.walks(), 1);
        assert_eq!(pt.tlb().hits(), 1);
    }

    #[test]
    fn prefixed_physical_addresses_flow_through() {
        // The essence of the paper: the OS writes a *remote* physical
        // address into the page table and translation just works.
        let mut pt = PageTable::new(TlbConfig::default());
        let remote = (3u64 << 34) | 0x4100_0000;
        pt.map(10, remote);
        assert_eq!(
            pt.translate(10 * PAGE_BYTES + 0xB0),
            Translation::Walked {
                phys: remote + 0xB0
            }
        );
    }

    #[test]
    fn swapped_page_faults() {
        let mut pt = PageTable::new(TlbConfig::default());
        pt.mark_swapped(5, 77);
        assert_eq!(
            pt.translate(5 * PAGE_BYTES),
            Translation::MajorFault { slot: 77 }
        );
        assert_eq!(pt.major_faults(), 1);
        // Fault handler maps it in; next access walks.
        pt.map(5, 0x2000);
        assert_eq!(
            pt.translate(5 * PAGE_BYTES),
            Translation::Walked { phys: 0x2000 }
        );
    }

    #[test]
    fn remap_invalidates_tlb() {
        let mut pt = PageTable::new(TlbConfig::default());
        pt.map(1, 0x1000);
        pt.translate(0x1000); // loads TLB
        pt.map(1, 0x9000);
        assert_eq!(pt.translate(0x1000), Translation::Walked { phys: 0x9000 });
    }

    #[test]
    fn unmap_removes() {
        let mut pt = PageTable::new(TlbConfig::default());
        pt.map(1, 0x1000);
        pt.translate(0x1000);
        pt.unmap(1);
        assert_eq!(pt.translate(0x1000), Translation::Unmapped);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn tlb_lru_eviction() {
        let mut pt = PageTable::new(TlbConfig { entries: 2 });
        pt.map(1, 0x1000);
        pt.map(2, 0x2000);
        pt.map(3, 0x3000);
        pt.translate(PAGE_BYTES); // vpn 1 -> TLB
        pt.translate(2 * PAGE_BYTES); // vpn 2 -> TLB
        pt.translate(PAGE_BYTES); // refresh vpn 1
        pt.translate(3 * PAGE_BYTES); // evicts vpn 2
        assert!(matches!(
            pt.translate(PAGE_BYTES),
            Translation::TlbHit { .. }
        ));
        assert!(matches!(
            pt.translate(2 * PAGE_BYTES),
            Translation::Walked { .. }
        ));
    }

    #[test]
    fn tlb_flush() {
        let mut pt = PageTable::new(TlbConfig::default());
        pt.map(1, 0x1000);
        pt.translate(PAGE_BYTES);
        pt.tlb().flush();
        assert!(pt.tlb().is_empty());
        assert!(matches!(
            pt.translate(PAGE_BYTES),
            Translation::Walked { .. }
        ));
    }

    #[test]
    fn mark_swapped_after_present_invalidates() {
        let mut pt = PageTable::new(TlbConfig::default());
        pt.map(4, 0x4000);
        pt.translate(4 * PAGE_BYTES);
        pt.mark_swapped(4, 9);
        assert_eq!(
            pt.translate(4 * PAGE_BYTES),
            Translation::MajorFault { slot: 9 }
        );
    }
}
