//! Hot-plug ballooning policy.
//!
//! Section III lists "modifying the OS kernel so that memory can be
//! hot-plugged and hot-removed as required" among the system's components.
//! This module supplies the *when*: a watermark policy that watches a
//! node's memory pressure and decides when to borrow another zone from the
//! cluster (hot-plug) and when to give zones back (hot-remove).
//!
//! The policy is deliberately hysteretic — grow below the low watermark,
//! shrink only above the high watermark, one zone at a time — so stable
//! demand never causes reservation churn (each reservation is a software
//! round trip; thrashing them would reintroduce exactly the overhead the
//! architecture avoids).

/// Watermark configuration.
#[derive(Debug, Clone, Copy)]
pub struct BalloonConfig {
    /// Grow when free memory falls below this fraction of current capacity.
    pub low_watermark: f64,
    /// Shrink when free memory exceeds this fraction of current capacity.
    pub high_watermark: f64,
    /// Zone granularity in frames (one grow/shrink step).
    pub zone_frames: u64,
}

impl Default for BalloonConfig {
    fn default() -> Self {
        BalloonConfig {
            low_watermark: 0.15,
            high_watermark: 0.60,
            zone_frames: 16_384, // 64 MiB
        }
    }
}

/// What the kernel should do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalloonAction {
    /// Reserve one more zone of [`BalloonConfig::zone_frames`].
    Grow,
    /// Release one previously borrowed zone.
    Shrink,
    /// Do nothing.
    Hold,
}

/// The per-node ballooning policy state.
#[derive(Debug, Clone, Copy)]
pub struct Balloon {
    cfg: BalloonConfig,
    /// Frames of the node's own memory available to this workload.
    local_frames: u64,
    /// Zones currently borrowed.
    zones: u64,
}

impl Balloon {
    /// Policy for a node contributing `local_frames` of its own memory.
    ///
    /// # Panics
    /// Panics unless `0 ≤ low < high ≤ 1` and the zone size is non-zero.
    pub fn new(cfg: BalloonConfig, local_frames: u64) -> Balloon {
        assert!(
            cfg.low_watermark >= 0.0
                && cfg.low_watermark < cfg.high_watermark
                && cfg.high_watermark <= 1.0,
            "watermarks must satisfy 0 <= low < high <= 1"
        );
        assert!(cfg.zone_frames > 0, "zone granularity must be non-zero");
        Balloon {
            cfg,
            local_frames,
            zones: 0,
        }
    }

    /// Total frames currently available (local + borrowed).
    pub fn capacity(&self) -> u64 {
        self.local_frames + self.zones * self.cfg.zone_frames
    }

    /// Zones currently borrowed.
    pub fn zones(&self) -> u64 {
        self.zones
    }

    /// Decide given the frames the workload currently occupies.
    ///
    /// The decision is *pure*; callers apply it (reserve/release through
    /// the cluster directory) and then record it with [`Balloon::applied`].
    pub fn decide(&self, used_frames: u64) -> BalloonAction {
        let capacity = self.capacity();
        let free = capacity.saturating_sub(used_frames) as f64;
        let frac = free / capacity as f64;
        if frac < self.cfg.low_watermark || used_frames >= capacity {
            return BalloonAction::Grow;
        }
        if self.zones > 0 && frac > self.cfg.high_watermark {
            // Only shrink if the zone's removal keeps us above the low
            // watermark — otherwise we would grow right back (churn).
            let after = self.capacity() - self.cfg.zone_frames;
            let after_free = after.saturating_sub(used_frames) as f64;
            if after > 0 && after_free / after as f64 > self.cfg.low_watermark {
                return BalloonAction::Shrink;
            }
        }
        BalloonAction::Hold
    }

    /// Record that the decided action was carried out.
    ///
    /// # Panics
    /// Panics on `Shrink` with no borrowed zones.
    pub fn applied(&mut self, action: BalloonAction) {
        match action {
            BalloonAction::Grow => self.zones += 1,
            BalloonAction::Shrink => {
                assert!(self.zones > 0, "shrink with no borrowed zones");
                self.zones -= 1;
            }
            BalloonAction::Hold => {}
        }
    }

    /// Drive the policy to a fixed point for the given demand: apply Grow/
    /// Shrink until it holds. Returns the number of grows and shrinks.
    pub fn settle(&mut self, used_frames: u64) -> (u64, u64) {
        let (mut grows, mut shrinks) = (0, 0);
        loop {
            match self.decide(used_frames) {
                BalloonAction::Grow => {
                    self.applied(BalloonAction::Grow);
                    grows += 1;
                }
                BalloonAction::Shrink => {
                    self.applied(BalloonAction::Shrink);
                    shrinks += 1;
                }
                BalloonAction::Hold => return (grows, shrinks),
            }
            assert!(grows + shrinks < 100_000, "balloon policy diverged");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balloon() -> Balloon {
        // 1000 local frames, 500-frame zones, 15%/60% watermarks.
        Balloon::new(
            BalloonConfig {
                low_watermark: 0.15,
                high_watermark: 0.6,
                zone_frames: 500,
            },
            1_000,
        )
    }

    #[test]
    fn grows_under_pressure() {
        let mut b = balloon();
        assert_eq!(b.decide(900), BalloonAction::Grow); // 10% free < 15%
        b.applied(BalloonAction::Grow);
        assert_eq!(b.capacity(), 1_500);
        assert_eq!(b.decide(900), BalloonAction::Hold); // 40% free
    }

    #[test]
    fn holds_in_the_comfort_band() {
        let b = balloon();
        for used in [300, 500, 700, 840] {
            assert_eq!(b.decide(used), BalloonAction::Hold, "used {used}");
        }
    }

    #[test]
    fn shrinks_when_idle_but_never_below_local() {
        let mut b = balloon();
        b.applied(BalloonAction::Grow);
        b.applied(BalloonAction::Grow); // capacity 2000
        assert_eq!(b.decide(100), BalloonAction::Shrink); // 95% free
        b.applied(BalloonAction::Shrink);
        assert_eq!(b.decide(100), BalloonAction::Shrink);
        b.applied(BalloonAction::Shrink);
        // No zones left: never asks to shrink local memory away.
        assert_eq!(b.zones(), 0);
        assert_eq!(b.decide(100), BalloonAction::Hold);
    }

    #[test]
    fn no_churn_for_stable_demand() {
        // At every demand level, settling then re-deciding must Hold:
        // hysteresis means a fixed demand never grows and shrinks forever.
        for used in (0..3_000).step_by(37) {
            let mut b = balloon();
            b.settle(used);
            assert_eq!(b.decide(used), BalloonAction::Hold, "churn at used={used}");
        }
    }

    #[test]
    fn settle_reaches_demand_plus_headroom() {
        let mut b = balloon();
        let (grows, shrinks) = b.settle(2_400);
        assert_eq!(shrinks, 0);
        assert!(grows >= 4, "needs at least 4 zones, got {grows}");
        assert!(b.capacity() as f64 * (1.0 - 0.15) >= 2_400.0);
        // Demand drops: zones come back.
        let (_, shrinks) = b.settle(200);
        assert!(shrinks >= 3, "idle must release, got {shrinks}");
    }

    #[test]
    fn demand_spike_and_decay_cycle() {
        let mut b = balloon();
        let mut total_grows = 0;
        let mut total_shrinks = 0;
        // Demand wave: up to 4000, back to 100, twice.
        for &used in &[500, 2_000, 4_000, 2_000, 100, 500, 4_000, 100] {
            let (g, s) = b.settle(used);
            total_grows += g;
            total_shrinks += s;
        }
        assert!(total_grows >= 2, "waves must grow");
        assert!(total_shrinks >= 2, "waves must shrink");
        // Ends idle: minimal footprint.
        assert!(b.zones() <= 1);
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn bad_watermarks_rejected() {
        Balloon::new(
            BalloonConfig {
                low_watermark: 0.7,
                high_watermark: 0.6,
                zone_frames: 1,
            },
            100,
        );
    }
}
