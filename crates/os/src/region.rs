//! Memory regions (Figure 1 of the paper).
//!
//! A *memory region* is the single coherency domain owned by one node: the
//! node's own memory plus zero or more zones borrowed from other nodes.
//! There are always exactly as many regions as nodes; what changes
//! dynamically is each region's size. Processes of the owning node can use
//! the whole region and nothing outside it.
//!
//! [`Region`] tracks the segments making up one region, in the prefixed
//! physical address space the owning node's processes see.

use crate::frames::PAGE_FRAME_BYTES;
use cohfree_fabric::NodeId;

/// One contiguous zone inside a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Node whose DRAM backs this zone.
    pub home: NodeId,
    /// Physical base address as seen by the owner (prefixed if `home` is
    /// not the owner; plain local address otherwise).
    pub base: u64,
    /// Frames in the zone.
    pub frames: u64,
}

impl Segment {
    /// Bytes covered.
    pub fn bytes(&self) -> u64 {
        self.frames * PAGE_FRAME_BYTES
    }

    /// True if `addr` falls inside this segment.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.bytes()
    }
}

/// The memory region of one node.
#[derive(Debug)]
pub struct Region {
    owner: NodeId,
    segments: Vec<Segment>,
}

impl Region {
    /// The default region of `owner`: just its own memory (`local_frames`
    /// at local physical base 0 — the paper's "region 1 confined to node A").
    pub fn new(owner: NodeId, local_frames: u64) -> Region {
        Region {
            owner,
            segments: vec![Segment {
                home: owner,
                base: 0,
                frames: local_frames,
            }],
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Extend the region with a zone borrowed from `home` (prefixed base
    /// address `base`).
    ///
    /// # Panics
    /// Panics if the new segment overlaps an existing one — regions are
    /// disjoint unions of zones.
    pub fn extend(&mut self, seg: Segment) {
        assert!(
            !self
                .segments
                .iter()
                .any(|s| seg.base < s.base + s.bytes() && s.base < seg.base + seg.bytes()),
            "segment overlap while extending region of {}",
            self.owner
        );
        self.segments.push(seg);
    }

    /// Shrink the region by dropping the segment at `base`; returns it so
    /// the caller can release the grant at the home node.
    pub fn shrink(&mut self, base: u64) -> Option<Segment> {
        let i = self.segments.iter().position(|s| s.base == base)?;
        // The node's own memory (the first segment) is not removable: a
        // region always contains its owner's cores and local memory.
        if i == 0 {
            return None;
        }
        Some(self.segments.remove(i))
    }

    /// Total bytes in the region.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(Segment::bytes).sum()
    }

    /// Bytes borrowed from other nodes.
    pub fn borrowed_bytes(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.home != self.owner)
            .map(Segment::bytes)
            .sum()
    }

    /// The segment containing `addr`, if any.
    pub fn segment_of(&self, addr: u64) -> Option<&Segment> {
        self.segments.iter().find(|s| s.contains(addr))
    }

    /// All segments (the first is always the owner's local memory).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Distinct homes lending to this region (excluding the owner).
    pub fn lenders(&self) -> Vec<NodeId> {
        let mut homes: Vec<NodeId> = self
            .segments
            .iter()
            .filter(|s| s.home != self.owner)
            .map(|s| s.home)
            .collect();
        homes.sort_unstable();
        homes.dedup();
        homes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohfree_rmc::addr::encode;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn default_region_is_local_only() {
        let r = Region::new(n(3), 1024);
        assert_eq!(r.owner(), n(3));
        assert_eq!(r.total_bytes(), 1024 * PAGE_FRAME_BYTES);
        assert_eq!(r.borrowed_bytes(), 0);
        assert!(r.lenders().is_empty());
    }

    #[test]
    fn fig1_scenario() {
        // Region 3 (node C) extended to neighbors B and D.
        let mut r = Region::new(n(3), 1024);
        r.extend(Segment {
            home: n(2),
            base: encode(n(2), 0x100000),
            frames: 512,
        });
        r.extend(Segment {
            home: n(4),
            base: encode(n(4), 0x100000),
            frames: 256,
        });
        assert_eq!(r.total_bytes(), (1024 + 512 + 256) * PAGE_FRAME_BYTES);
        assert_eq!(r.borrowed_bytes(), (512 + 256) * PAGE_FRAME_BYTES);
        assert_eq!(r.lenders(), vec![n(2), n(4)]);
    }

    #[test]
    fn segment_lookup() {
        let mut r = Region::new(n(1), 16);
        let base = encode(n(2), 0);
        r.extend(Segment {
            home: n(2),
            base,
            frames: 4,
        });
        assert_eq!(r.segment_of(0).unwrap().home, n(1));
        assert_eq!(r.segment_of(base + 100).unwrap().home, n(2));
        assert!(r.segment_of(base + 4 * PAGE_FRAME_BYTES).is_none());
    }

    #[test]
    fn shrink_returns_segment_for_release() {
        let mut r = Region::new(n(1), 16);
        let base = encode(n(2), 0x4000);
        r.extend(Segment {
            home: n(2),
            base,
            frames: 8,
        });
        let seg = r.shrink(base).unwrap();
        assert_eq!(seg.home, n(2));
        assert_eq!(seg.frames, 8);
        assert_eq!(r.borrowed_bytes(), 0);
        assert!(r.shrink(base).is_none(), "already removed");
    }

    #[test]
    fn local_segment_cannot_be_shrunk() {
        let mut r = Region::new(n(1), 16);
        assert!(r.shrink(0).is_none());
        assert_eq!(r.total_bytes(), 16 * PAGE_FRAME_BYTES);
    }

    #[test]
    #[should_panic(expected = "segment overlap")]
    fn overlapping_extension_rejected() {
        let mut r = Region::new(n(1), 16);
        let base = encode(n(2), 0);
        r.extend(Segment {
            home: n(2),
            base,
            frames: 8,
        });
        r.extend(Segment {
            home: n(2),
            base: base + PAGE_FRAME_BYTES,
            frames: 2,
        });
    }

    #[test]
    fn multiple_regions_can_coexist_on_one_home() {
        // Regions 3 and 5 both borrow from node D in Fig. 1 — distinct
        // zones, tracked independently by each borrower's Region.
        let mut r3 = Region::new(n(3), 16);
        let mut r5 = Region::new(n(5), 16);
        r3.extend(Segment {
            home: n(4),
            base: encode(n(4), 0),
            frames: 4,
        });
        r5.extend(Segment {
            home: n(4),
            base: encode(n(4), 4 * PAGE_FRAME_BYTES),
            frames: 4,
        });
        assert_eq!(r3.lenders(), vec![n(4)]);
        assert_eq!(r5.lenders(), vec![n(4)]);
    }
}
