//! Simulated time.
//!
//! Time is measured in integer **picoseconds** from simulation start. A
//! `u64` of picoseconds covers ~213 simulated days, far beyond any experiment
//! in this repository, while still resolving sub-nanosecond link-serialization
//! steps without rounding drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Picoseconds since simulation start.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds since simulation start (truncating).
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional nanoseconds since simulation start.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional microseconds since simulation start.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds since simulation start.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "SimTime::since: earlier > self");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating offset into the future (clamps at [`SimTime::MAX`]).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `n` picoseconds.
    #[inline]
    pub const fn ps(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// A span of `n` nanoseconds.
    #[inline]
    pub const fn ns(n: u64) -> SimDuration {
        SimDuration(n * 1_000)
    }

    /// A span of `n` microseconds.
    #[inline]
    pub const fn us(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000)
    }

    /// A span of `n` milliseconds.
    #[inline]
    pub const fn ms(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000_000)
    }

    /// A span of `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000_000_000)
    }

    /// A span from fractional nanoseconds, rounded to the nearest picosecond.
    #[inline]
    pub fn ns_f64(n: f64) -> SimDuration {
        debug_assert!(n >= 0.0, "negative duration");
        SimDuration((n * 1e3).round() as u64)
    }

    /// Picoseconds in this span.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds in this span (truncating).
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional nanoseconds in this span.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional microseconds in this span.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds in this span.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional seconds in this span.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True for the zero-length span.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating scaling (clamps at the largest representable span).
    #[inline]
    pub fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == u64::MAX {
        write!(f, "inf")
    } else if ps >= 1_000_000_000_000 {
        write!(f, "{:.3}s", ps as f64 / 1e12)
    } else if ps >= 1_000_000_000 {
        write!(f, "{:.3}ms", ps as f64 / 1e9)
    } else if ps >= 1_000_000 {
        write!(f, "{:.3}us", ps as f64 / 1e6)
    } else if ps >= 1_000 {
        write!(f, "{:.3}ns", ps as f64 / 1e3)
    } else {
        write!(f, "{ps}ps")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::ps(7).as_ps(), 7);
        assert_eq!(SimDuration::ns(7).as_ps(), 7_000);
        assert_eq!(SimDuration::us(7).as_ps(), 7_000_000);
        assert_eq!(SimDuration::ms(7).as_ps(), 7_000_000_000);
        assert_eq!(SimDuration::secs(7).as_ps(), 7_000_000_000_000);
    }

    #[test]
    fn ns_f64_rounds_to_nearest_ps() {
        assert_eq!(SimDuration::ns_f64(0.0004).as_ps(), 0);
        assert_eq!(SimDuration::ns_f64(0.0006).as_ps(), 1);
        assert_eq!(SimDuration::ns_f64(1.5).as_ps(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::ns(100);
        assert_eq!(t.as_ns(), 100);
        let t2 = t + SimDuration::ns(50);
        assert_eq!((t2 - t).as_ns(), 50);
        assert_eq!(t2.since(t), SimDuration::ns(50));
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::ns(10) * 3;
        assert_eq!(d.as_ns(), 30);
        assert_eq!((d / 2).as_ns(), 15);
        assert_eq!((d - SimDuration::ns(5)).as_ns(), 25);
        assert_eq!(d.saturating_sub(SimDuration::us(1)), SimDuration::ZERO);
        let total: SimDuration = (0..4).map(|_| SimDuration::ns(2)).sum();
        assert_eq!(total.as_ns(), 8);
    }

    #[test]
    fn saturating_ops_clamp_instead_of_wrapping() {
        assert_eq!(
            SimDuration::ps(u64::MAX).saturating_mul(2),
            SimDuration::ps(u64::MAX)
        );
        assert_eq!(SimDuration::ns(3).saturating_mul(4), SimDuration::ns(12));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::ns(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_add(SimDuration::ns(5)),
            SimTime::ZERO + SimDuration::ns(5)
        );
    }

    #[test]
    fn conversions_to_float() {
        let d = SimDuration::us(2) + SimDuration::ns(500);
        assert!((d.as_us_f64() - 2.5).abs() < 1e-12);
        assert!((d.as_ns_f64() - 2500.0).abs() < 1e-9);
        let t = SimTime::ZERO + SimDuration::ms(1);
        assert!((t.as_ms_f64() - 1.0).abs() < 1e-12);
        assert!((t.as_secs_f64() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::ps(5)), "5ps");
        assert_eq!(format!("{}", SimDuration::ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimDuration::us(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::secs(5)), "5.000s");
        assert_eq!(format!("{}", SimTime::MAX), "inf");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::ZERO + SimDuration::ps(1));
        assert!(SimDuration::ns(1) < SimDuration::us(1));
    }
}
