//! Measurement primitives.
//!
//! Every model component exposes its behaviour through these types:
//!
//! * [`Counter`] — monotonically increasing event counts,
//! * [`OnlineSummary`] — numerically stable streaming mean/variance/min/max
//!   (Welford's algorithm),
//! * [`LatencyHistogram`] — log₂-bucketed latency distribution with
//!   approximate quantiles, cheap enough to keep per component,
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant signal
//!   (queue depth, occupancy).

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean / variance / extrema via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct OnlineSummary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineSummary {
    /// An empty summary.
    pub fn new() -> Self {
        OnlineSummary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Log-linear latency histogram over nanosecond values.
///
/// Each power-of-two octave is split into [`HIST_SUB_BUCKETS`] equal-width
/// sub-buckets (HDR-histogram style): values below `HIST_SUB_BUCKETS` get
/// exact unit buckets, and a value in octave `[2^o, 2^(o+1))` lands in one
/// of 4 sub-ranges of width `2^(o-2)`. That bounds the relative bucket
/// width at 25%, so interpolated quantiles carry ≤ ~12% relative error —
/// tight enough for per-phase latency attribution, versus the ≤ 2× error
/// of plain log₂ buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: f64,
    max_ns: f64,
}

/// Sub-buckets per power-of-two octave (must be a power of two).
pub const HIST_SUB_BUCKETS: usize = 4;
const HIST_SUB_BITS: u32 = HIST_SUB_BUCKETS.trailing_zeros();
// Octaves 2..=63 at 4 sub-buckets each, plus the 4 exact unit buckets:
// covers the full u64 nanosecond range, so the top bucket's upper bound
// (2^64) can never undershoot a recorded sample. (An earlier revision
// stopped at octave 39 and funneled everything above ~2^40 ns into one
// clamped bucket whose reported bound lay *below* the samples in it.)
const HIST_BUCKETS: usize = HIST_SUB_BUCKETS + 62 * HIST_SUB_BUCKETS;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0.0,
            max_ns: 0.0,
        }
    }

    /// Per-bucket sample counts in the log-linear layout described by
    /// [`LatencyHistogram::bucket_bounds`] (index `i` covers
    /// `bucket_bounds(i)`). Exposed for cumulative (`le`) rendering in
    /// [`crate::metrics`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < HIST_SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let octave = 63 - ns.leading_zeros(); // >= HIST_SUB_BITS here
        let sub = ((ns >> (octave - HIST_SUB_BITS)) as usize) & (HIST_SUB_BUCKETS - 1);
        let idx = (octave - HIST_SUB_BITS + 1) as usize * HIST_SUB_BUCKETS + sub;
        debug_assert!(idx < HIST_BUCKETS, "octave table covers all of u64");
        idx
    }

    /// `[lo, hi)` nanosecond range covered by bucket `i`.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        if i < HIST_SUB_BUCKETS {
            return (i as f64, (i + 1) as f64);
        }
        let octave = (i / HIST_SUB_BUCKETS) as u32 + HIST_SUB_BITS - 1;
        let sub = (i % HIST_SUB_BUCKETS) as u128;
        // u128 arithmetic: the top bucket's upper bound is 2^64, one past
        // the largest representable sample.
        let width = 1u128 << (octave - HIST_SUB_BITS);
        let lo = (1u128 << octave) + sub * width;
        (lo as f64, (lo + width) as f64)
    }

    /// Record one latency. Deliberately lean — a bucket increment and a
    /// running sum/max — because trace-enabled runs call this on every
    /// finished transaction phase (see `cohfree_sim::span`).
    #[inline]
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_ns();
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        let x = d.as_ns_f64();
        self.sum_ns += x;
        if x > self.max_ns {
            self.max_ns = x;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// Sum of all recorded latencies in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.sum_ns
    }

    /// Largest recorded latency in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> f64 {
        self.max_ns
    }

    /// Approximate quantile (`q` in `[0, 1]`) in nanoseconds.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if acc + c >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = (target - acc) as f64 / c as f64;
                return lo + frac * (hi - lo);
            }
            acc += c;
        }
        self.max_ns()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the accumulator
/// weights each value by how long it was held.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    peak: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// A signal starting at 0 at time 0.
    pub fn new() -> Self {
        TimeWeighted {
            value: 0.0,
            last_change: SimTime::ZERO,
            weighted_sum: 0.0,
            peak: 0.0,
        }
    }

    /// Record that the signal takes `value` from `now` onwards.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change, "TimeWeighted: time regression");
        let held = now.saturating_since(self.last_change);
        self.weighted_sum += self.value * held.as_ns_f64();
        self.value = value;
        self.last_change = now;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adjust the signal by `delta` at `now` (convenience for queue depths).
    pub fn adjust(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Peak value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[0, horizon]`.
    ///
    /// The accumulator integrates up to the latest `set()`; if `horizon` is
    /// earlier than that, the window is clamped to `last_change` — the
    /// integral cannot be partially undone, and dividing the full sum by a
    /// shorter horizon would overstate the mean.
    pub fn mean(&self, horizon: SimTime) -> f64 {
        let end = horizon.max(self.last_change);
        if end == SimTime::ZERO {
            return 0.0;
        }
        let tail = horizon.saturating_since(self.last_change);
        let total = self.weighted_sum + self.value * tail.as_ns_f64();
        total / end.as_ns_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn summary_matches_closed_form() {
        let mut s = OnlineSummary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = OnlineSummary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_buckets() {
        // Exact unit buckets below HIST_SUB_BUCKETS.
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 3);
        // Octave [4, 8): four sub-buckets of width 1.
        assert_eq!(LatencyHistogram::bucket_of(4), 4);
        assert_eq!(LatencyHistogram::bucket_of(5), 5);
        assert_eq!(LatencyHistogram::bucket_of(7), 7);
        // Octave [8, 16): four sub-buckets of width 2.
        assert_eq!(LatencyHistogram::bucket_of(8), 8);
        assert_eq!(LatencyHistogram::bucket_of(9), 8);
        assert_eq!(LatencyHistogram::bucket_of(10), 9);
        // 1023 is in [896, 1024), the last sub-bucket of octave 9.
        assert_eq!(
            LatencyHistogram::bucket_of(1023),
            LatencyHistogram::bucket_of(896)
        );
        assert_ne!(
            LatencyHistogram::bucket_of(1023),
            LatencyHistogram::bucket_of(1024)
        );
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Buckets are monotone and contiguous over a wide range.
        let mut prev = 0usize;
        for ns in 0..100_000u64 {
            let b = LatencyHistogram::bucket_of(ns);
            assert!(b == prev || b == prev + 1, "ns {ns}: {prev} -> {b}");
            prev = b;
        }
    }

    #[test]
    fn histogram_bucket_bounds_invert_bucket_of() {
        for i in 0..HIST_BUCKETS - 1 {
            let (lo, hi) = LatencyHistogram::bucket_bounds(i);
            assert_eq!(LatencyHistogram::bucket_of(lo as u64), i);
            assert_eq!(LatencyHistogram::bucket_of(hi as u64 - 1), i);
            assert_eq!(LatencyHistogram::bucket_of(hi as u64), i + 1);
        }
        // Top bucket: [2^63 + 3·2^61, 2^64) — the upper bound exceeds
        // u64::MAX, so every representable sample fits strictly inside.
        let (lo, hi) = LatencyHistogram::bucket_bounds(HIST_BUCKETS - 1);
        assert_eq!(lo, (0xE000_0000_0000_0000u64) as f64);
        assert_eq!(hi, 2f64.powi(64));
        assert_eq!(LatencyHistogram::bucket_of(lo as u64), HIST_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_octave_edges_round_trip_exhaustively() {
        // Every sub-bucket edge of every u64 octave: the index derived from
        // the sample must map back to bounds that bracket it, and samples one
        // below an edge must land in the previous bucket. This sweeps the
        // full `bucket_of` ↔ `bucket_bounds` pair across all 62 octaves.
        for octave in HIST_SUB_BITS..64 {
            let width = 1u64 << (octave - HIST_SUB_BITS);
            for sub in 0..HIST_SUB_BUCKETS as u64 {
                let lo = (1u64 << octave) + sub * width;
                let idx = (octave - HIST_SUB_BITS + 1) as usize * HIST_SUB_BUCKETS + sub as usize;
                assert_eq!(LatencyHistogram::bucket_of(lo), idx, "edge {lo}");
                assert_eq!(LatencyHistogram::bucket_of(lo - 1), idx - 1, "below {lo}");
                let last = lo + (width - 1);
                assert_eq!(LatencyHistogram::bucket_of(last), idx, "top of {lo}");
                let (blo, bhi) = LatencyHistogram::bucket_bounds(idx);
                assert_eq!(blo, lo as f64, "bounds lo at {lo}");
                // The reported bucket range brackets every sample in it
                // (checked in integer space: beyond 2^53 a sample cast to
                // f64 may round up to the bound itself).
                assert_eq!(bhi as u128, lo as u128 + width as u128, "hi at {lo}");
            }
        }
    }

    #[test]
    fn histogram_quantile_bounds_never_undershoot_huge_samples() {
        // Regression: samples above 2^40 ns used to clamp into a bucket
        // whose reported upper bound (2^40) lay below the sample, so
        // quantiles could report a value smaller than every observation.
        let mut h = LatencyHistogram::new();
        let big = 1u64 << 50;
        h.record(SimDuration::ns(big));
        assert!(h.quantile_ns(1.0) >= big as f64, "{}", h.quantile_ns(1.0));
        assert!(h.quantile_ns(0.5) >= big as f64);
        let mut extreme = LatencyHistogram::new();
        extreme.record(SimDuration::ps(u64::MAX));
        let q = extreme.quantile_ns(1.0);
        assert!(q >= extreme.max_ns() || q >= (u64::MAX / 1000) as f64);
    }

    #[test]
    fn histogram_quantiles_bracket_truth() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(SimDuration::ns(ns));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.5);
        // True median is 500; 4-per-octave sub-buckets keep interpolation
        // within ~12% of truth (the old log₂ buckets only promised 2×).
        assert!((460.0..=540.0).contains(&p50), "p50 {p50}");
        let p90 = h.quantile_ns(0.9);
        assert!((820.0..=980.0).contains(&p90), "p90 {p90}");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= 896.0, "p100 {p100}");
        assert!((h.mean_ns() - 500.5).abs() < 1e-9);
        assert_eq!(h.max_ns(), 1000.0);
    }

    #[test]
    fn histogram_merge_combines_moments() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in [10u64, 20, 30] {
            a.record(SimDuration::ns(ns));
        }
        for ns in [100u64, 200] {
            b.record(SimDuration::ns(ns));
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert!((a.mean_ns() - 72.0).abs() < 1e-9, "{}", a.mean_ns());
        assert_eq!(a.max_ns(), 200.0);
        // Merging an empty histogram is a no-op.
        let before = a.mean_ns();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.mean_ns(), before);
    }

    #[test]
    fn time_weighted_mean_and_peak() {
        let mut w = TimeWeighted::new();
        let t = |ns| SimTime::ZERO + SimDuration::ns(ns);
        w.set(t(0), 2.0);
        w.set(t(10), 4.0); // 2.0 held for 10ns
        w.set(t(20), 0.0); // 4.0 held for 10ns
                           // Over [0, 40]: (2*10 + 4*10 + 0*20) / 40 = 1.5
        assert!((w.mean(t(40)) - 1.5).abs() < 1e-12);
        assert_eq!(w.peak(), 4.0);
        assert_eq!(w.current(), 0.0);
    }

    #[test]
    fn time_weighted_mean_clamps_early_horizon() {
        let mut w = TimeWeighted::new();
        let t = |ns| SimTime::ZERO + SimDuration::ns(ns);
        w.set(t(0), 10.0);
        w.set(t(100), 0.0); // 10.0 held for 100ns, integral = 1000
                            // A horizon inside the already-integrated window must not divide the
                            // full integral by the shorter span (which would report 20.0 here);
                            // the window clamps to last_change.
        assert!((w.mean(t(50)) - 10.0).abs() < 1e-12, "{}", w.mean(t(50)));
        // At and past last_change the mean dilutes as normal.
        assert!((w.mean(t(100)) - 10.0).abs() < 1e-12);
        assert!((w.mean(t(200)) - 5.0).abs() < 1e-12);
        // Degenerate: nothing integrated at all.
        assert_eq!(TimeWeighted::new().mean(SimTime::ZERO), 0.0);
    }

    #[test]
    fn time_weighted_change_at_horizon_contributes_zero() {
        let mut w = TimeWeighted::new();
        let t = |ns| SimTime::ZERO + SimDuration::ns(ns);
        w.set(t(0), 4.0);
        // A state change landing exactly on the horizon is held for zero
        // time: the new value must not leak a stale tail into the mean.
        w.set(t(100), 1_000.0);
        assert!((w.mean(t(100)) - 4.0).abs() < 1e-12, "{}", w.mean(t(100)));
        // Same-instant overwrite: the replaced value was held for zero time
        // and must carry zero weight.
        let mut v = TimeWeighted::new();
        v.set(t(10), 3.0);
        v.set(t(10), 9.0);
        assert!((v.mean(t(20)) - 4.5).abs() < 1e-12, "{}", v.mean(t(20)));
        assert_eq!(v.peak(), 9.0);
    }

    #[test]
    fn time_weighted_mean_never_divides_by_zero_span() {
        let mut w = TimeWeighted::new();
        // Value set at t=0, horizon at t=0: zero span, must yield a finite 0.
        w.set(SimTime::ZERO, 7.0);
        let m = w.mean(SimTime::ZERO);
        assert!(m.is_finite());
        assert_eq!(m, 0.0);
        // Untouched accumulator at a zero horizon.
        assert_eq!(TimeWeighted::new().mean(SimTime::ZERO), 0.0);
    }

    #[test]
    fn time_weighted_adjust() {
        let mut w = TimeWeighted::new();
        let t = |ns| SimTime::ZERO + SimDuration::ns(ns);
        w.adjust(t(0), 1.0);
        w.adjust(t(5), 1.0);
        w.adjust(t(10), -2.0);
        assert_eq!(w.current(), 0.0);
        // (1*5 + 2*5) / 20 = 0.75
        assert!((w.mean(t(20)) - 0.75).abs() < 1e-12);
    }
}
