//! Measurement primitives.
//!
//! Every model component exposes its behaviour through these types:
//!
//! * [`Counter`] — monotonically increasing event counts,
//! * [`OnlineSummary`] — numerically stable streaming mean/variance/min/max
//!   (Welford's algorithm),
//! * [`LatencyHistogram`] — log₂-bucketed latency distribution with
//!   approximate quantiles, cheap enough to keep per component,
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant signal
//!   (queue depth, occupancy).

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean / variance / extrema via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct OnlineSummary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineSummary {
    /// An empty summary.
    pub fn new() -> Self {
        OnlineSummary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Log₂-bucketed latency histogram over nanosecond values.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns, with bucket 0 covering `[0, 2)` ns.
/// Quantile queries interpolate linearly inside a bucket, giving ≤ 2×
/// relative error — ample for latency-distribution shape comparisons.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    summary: OnlineSummary,
}

const HIST_BUCKETS: usize = 40; // up to ~2^39 ns ≈ 9 minutes

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; HIST_BUCKETS],
            summary: OnlineSummary::new(),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < 2 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one latency.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_ns();
        self.buckets[Self::bucket_of(ns)] += 1;
        self.summary.record(d.as_ns_f64());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.summary.mean()
    }

    /// Largest recorded latency in nanoseconds.
    pub fn max_ns(&self) -> f64 {
        self.summary.max().unwrap_or(0.0)
    }

    /// Approximate quantile (`q` in `[0, 1]`) in nanoseconds.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if acc + c >= target {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (1u64 << (i + 1)) as f64;
                let frac = (target - acc) as f64 / c as f64;
                return lo + frac * (hi - lo);
            }
            acc += c;
        }
        self.max_ns()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        // Rebuild summary moments via weighted combination.
        let n1 = self.summary.count() as f64;
        let n2 = other.summary.count() as f64;
        if n2 == 0.0 {
            return;
        }
        if n1 == 0.0 {
            self.summary = other.summary.clone();
            return;
        }
        let mean = (self.summary.mean() * n1 + other.summary.mean() * n2) / (n1 + n2);
        let delta = other.summary.mean() - self.summary.mean();
        let m2 = self.summary.m2 + other.summary.m2 + delta * delta * n1 * n2 / (n1 + n2);
        self.summary = OnlineSummary {
            n: (n1 + n2) as u64,
            mean,
            m2,
            min: self.summary.min.min(other.summary.min),
            max: self.summary.max.max(other.summary.max),
        };
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the accumulator
/// weights each value by how long it was held.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    peak: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// A signal starting at 0 at time 0.
    pub fn new() -> Self {
        TimeWeighted {
            value: 0.0,
            last_change: SimTime::ZERO,
            weighted_sum: 0.0,
            peak: 0.0,
        }
    }

    /// Record that the signal takes `value` from `now` onwards.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change, "TimeWeighted: time regression");
        let held = now.saturating_since(self.last_change);
        self.weighted_sum += self.value * held.as_ns_f64();
        self.value = value;
        self.last_change = now;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adjust the signal by `delta` at `now` (convenience for queue depths).
    pub fn adjust(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Peak value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[0, horizon]`.
    ///
    /// The accumulator integrates up to the latest `set()`; if `horizon` is
    /// earlier than that, the window is clamped to `last_change` — the
    /// integral cannot be partially undone, and dividing the full sum by a
    /// shorter horizon would overstate the mean.
    pub fn mean(&self, horizon: SimTime) -> f64 {
        let end = horizon.max(self.last_change);
        if end == SimTime::ZERO {
            return 0.0;
        }
        let tail = horizon.saturating_since(self.last_change);
        let total = self.weighted_sum + self.value * tail.as_ns_f64();
        total / end.as_ns_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn summary_matches_closed_form() {
        let mut s = OnlineSummary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = OnlineSummary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bracket_truth() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(SimDuration::ns(ns));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.5);
        // True median is 500; log-bucket interpolation keeps us within 2x.
        assert!((250.0..=1000.0).contains(&p50), "p50 {p50}");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 >= 512.0, "p100 {p100}");
        assert!((h.mean_ns() - 500.5).abs() < 1e-9);
        assert_eq!(h.max_ns(), 1000.0);
    }

    #[test]
    fn histogram_merge_combines_moments() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in [10u64, 20, 30] {
            a.record(SimDuration::ns(ns));
        }
        for ns in [100u64, 200] {
            b.record(SimDuration::ns(ns));
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert!((a.mean_ns() - 72.0).abs() < 1e-9, "{}", a.mean_ns());
        assert_eq!(a.max_ns(), 200.0);
        // Merging an empty histogram is a no-op.
        let before = a.mean_ns();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.mean_ns(), before);
    }

    #[test]
    fn time_weighted_mean_and_peak() {
        let mut w = TimeWeighted::new();
        let t = |ns| SimTime::ZERO + SimDuration::ns(ns);
        w.set(t(0), 2.0);
        w.set(t(10), 4.0); // 2.0 held for 10ns
        w.set(t(20), 0.0); // 4.0 held for 10ns
                           // Over [0, 40]: (2*10 + 4*10 + 0*20) / 40 = 1.5
        assert!((w.mean(t(40)) - 1.5).abs() < 1e-12);
        assert_eq!(w.peak(), 4.0);
        assert_eq!(w.current(), 0.0);
    }

    #[test]
    fn time_weighted_mean_clamps_early_horizon() {
        let mut w = TimeWeighted::new();
        let t = |ns| SimTime::ZERO + SimDuration::ns(ns);
        w.set(t(0), 10.0);
        w.set(t(100), 0.0); // 10.0 held for 100ns, integral = 1000
                            // A horizon inside the already-integrated window must not divide the
                            // full integral by the shorter span (which would report 20.0 here);
                            // the window clamps to last_change.
        assert!((w.mean(t(50)) - 10.0).abs() < 1e-12, "{}", w.mean(t(50)));
        // At and past last_change the mean dilutes as normal.
        assert!((w.mean(t(100)) - 10.0).abs() < 1e-12);
        assert!((w.mean(t(200)) - 5.0).abs() < 1e-12);
        // Degenerate: nothing integrated at all.
        assert_eq!(TimeWeighted::new().mean(SimTime::ZERO), 0.0);
    }

    #[test]
    fn time_weighted_adjust() {
        let mut w = TimeWeighted::new();
        let t = |ns| SimTime::ZERO + SimDuration::ns(ns);
        w.adjust(t(0), 1.0);
        w.adjust(t(5), 1.0);
        w.adjust(t(10), -2.0);
        assert_eq!(w.current(), 0.0);
        // (1*5 + 2*5) / 20 = 0.75
        assert!((w.mean(t(20)) - 0.75).abs() < 1e-12);
    }
}
