//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The standard library's `RandomState`/SipHash is DoS-resistant but costs
//! tens of nanoseconds per lookup — measurable on the simulator's hot paths
//! (page tables, sparse stores, in-flight maps), which hash small integer
//! keys millions of times per run and face no untrusted input. This is the
//! Firefox/rustc "Fx" multiply-rotate hash: one rotate, one xor and one
//! multiply per 8-byte chunk.
//!
//! Determinism note: unlike `RandomState`, `FxHasher` is seed-free, so map
//! iteration order is stable across processes. Simulator results must never
//! depend on map iteration order regardless (the default hasher is randomly
//! seeded per process, so any such dependence would already break the
//! reproducibility guarantee); the determinism end-to-end test enforces
//! this.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` using [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` using [`FxHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash multiply-rotate hasher. Not DoS-resistant; use only for
/// keys the simulation itself generates.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_hashing_is_stable() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for k in 0..1_000u64 {
            m.insert(k * 64, k as u32);
        }
        assert_eq!(m.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(m.get(&(k * 64)), Some(&(k as u32)));
        }
        // Seed-free: two hashers agree on every key.
        let h = |k: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(k);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_slices_and_ints_hash_without_collapsing() {
        let mut s: FastSet<(u32, u32)> = FastSet::default();
        for a in 0..64u32 {
            for b in 0..64u32 {
                s.insert((a, b));
            }
        }
        assert_eq!(s.len(), 64 * 64);
        let mut h1 = FxHasher::default();
        h1.write(b"hello world");
        let mut h2 = FxHasher::default();
        h2.write(b"hello worle");
        assert_ne!(h1.finish(), h2.finish());
    }
}
