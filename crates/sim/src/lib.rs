#![warn(missing_docs)]

//! # cohfree-sim — deterministic discrete-event simulation engine
//!
//! Foundation crate for the cohfree cluster simulator. It deliberately knows
//! nothing about networks, memories or operating systems; it provides:
//!
//! * [`SimTime`] / [`SimDuration`] — picosecond-resolution simulated time,
//! * [`EventQueue`] — a total-ordered pending-event set with deterministic
//!   tie-breaking (FIFO among same-timestamp events),
//! * [`queueing`] — small analytic building blocks ([`queueing::FifoServer`])
//!   for modelling contended serial resources (memory controllers, RMC
//!   front-ends, links),
//! * [`stats`] — counters, histograms and online summaries used by every
//!   model component,
//! * [`rng`] — a self-contained xoshiro256** PRNG so that every simulation is
//!   reproducible from a single `u64` seed with no external dependencies,
//! * [`faultlog`] — a timestamped record of fault injections, failure
//!   detections and recovery actions, serialized into cluster snapshots,
//! * [`metrics`] — a zero-cost-when-off registry profiling the simulator
//!   *engines themselves* (scheduler rounds, merge causes, worker
//!   wall-clock), exportable as Prometheus text,
//! * [`span`] — per-transaction span tracing: a bounded [`TraceSink`]
//!   attributing each traced access's end-to-end latency to phases
//!   (stall, wire, queueing, service, ...), exportable as a Chrome
//!   trace-event document.
//!
//! ## Modelling style
//!
//! Higher-level crates implement hardware/OS components as *pure state
//! machines* that consume an input event and return a list of actions
//! (send packet on link, deliver response after d ns, ...). A thin "world"
//! in `cohfree-core` converts actions into [`EventQueue`] entries. This keeps
//! every component unit-testable without an event loop and keeps the engine
//! free of dynamic dispatch.

pub mod engine;
pub mod faultlog;
pub mod fxhash;
pub mod metrics;
pub mod queueing;
pub mod rng;
pub mod snapshot;
pub mod span;
pub mod stats;
pub mod time;

pub use engine::EventQueue;
pub use faultlog::{FaultLog, FaultLogEntry};
pub use fxhash::{FastMap, FastSet};
pub use queueing::FifoServer;
pub use rng::Rng;
pub use snapshot::Json;
pub use span::{Phase, SpanRecord, TraceMode, TraceSink};
pub use time::{SimDuration, SimTime};
