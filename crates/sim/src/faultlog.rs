//! Timestamped fault/recovery event log.
//!
//! Failure handling is spread across layers — the fabric marks links down,
//! the RMC client declares nodes suspect, the OS evacuates regions — so the
//! observability story needs one ordered record of what happened when. The
//! `World` in `cohfree-core` appends to a [`FaultLog`] from every layer's
//! handler; the log serializes into the cluster snapshot (`"faults"` key)
//! and from there into `COHFREE_JSON` reports.

use crate::snapshot::Json;
use crate::time::SimTime;

/// One recorded fault or recovery action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultLogEntry {
    /// Simulated instant the event happened.
    pub at: SimTime,
    /// Machine-matchable category (e.g. `node_crash`, `suspect`,
    /// `evacuation`, `link_down`).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Ordered record of fault injections, detections and recovery actions.
///
/// Bounded like [`crate::span::TraceSink`]: at most `capacity` entries are
/// retained and overflow is counted in [`FaultLog::dropped`]. The log keeps
/// the *earliest* entries — in a fault cascade the root causes come first
/// and the tail is usually repetition.
#[derive(Debug)]
pub struct FaultLog {
    entries: Vec<FaultLogEntry>,
    capacity: usize,
    dropped: u64,
}

/// Default retention bound: ample for any experiment in the suite while
/// capping a pathological fault storm at a few MB.
pub const DEFAULT_FAULTLOG_CAPACITY: usize = 65_536;

impl Default for FaultLog {
    fn default() -> Self {
        FaultLog::with_capacity(DEFAULT_FAULTLOG_CAPACITY)
    }
}

impl FaultLog {
    /// An empty log with the default retention bound.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// An empty log retaining at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> FaultLog {
        FaultLog {
            entries: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append an event. Callers append in simulated-time order (the event
    /// loop guarantees it), so the log never needs sorting. Once the
    /// retention bound is reached further events are counted, not stored.
    pub fn record(&mut self, at: SimTime, kind: &str, detail: impl Into<String>) {
        if self.entries.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.entries.push(FaultLogEntry {
            at,
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    /// Events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All entries, in time order.
    pub fn entries(&self) -> &[FaultLogEntry] {
        &self.entries
    }

    /// Entries recorded so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries of the given `kind`.
    pub fn count(&self, kind: &str) -> usize {
        self.entries.iter().filter(|e| e.kind == kind).count()
    }

    /// Serializable view: an array of `{t_ns, kind, detail}` objects.
    pub fn snapshot(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|e| {
                    Json::obj([
                        ("t_ns", Json::from(e.at.as_ns())),
                        ("kind", Json::from(e.kind.clone())),
                        ("detail", Json::from(e.detail.clone())),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn records_in_order_and_counts_by_kind() {
        let mut log = FaultLog::new();
        assert!(log.is_empty());
        let t0 = SimTime::ZERO + SimDuration::us(1);
        let t1 = SimTime::ZERO + SimDuration::us(2);
        log.record(t0, "node_crash", "node 2 crashed");
        log.record(t1, "suspect", "node 1 declares 2 suspect");
        log.record(t1, "evacuation", "zone re-homed 2 -> 5");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count("suspect"), 1);
        assert_eq!(log.count("evacuation"), 1);
        assert_eq!(log.count("nothing"), 0);
        assert_eq!(log.entries()[0].kind, "node_crash");
    }

    #[test]
    fn bounded_log_counts_overflow() {
        let mut log = FaultLog::with_capacity(2);
        let t0 = SimTime::ZERO + SimDuration::us(1);
        log.record(t0, "a", "1");
        log.record(t0, "b", "2");
        log.record(t0, "c", "3");
        log.record(t0, "d", "4");
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 2);
        // The earliest entries are the ones retained.
        assert_eq!(log.entries()[0].kind, "a");
        assert_eq!(log.entries()[1].kind, "b");
    }

    #[test]
    fn snapshot_serializes_every_entry() {
        let mut log = FaultLog::new();
        log.record(SimTime::ZERO + SimDuration::ns(5), "link_down", "1<->2");
        let doc = Json::parse(&log.snapshot().to_string()).expect("valid JSON");
        let arr = doc.as_array().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("t_ns").unwrap().as_u64(), Some(5));
        assert_eq!(arr[0].get("kind").unwrap().as_str(), Some("link_down"));
    }
}
