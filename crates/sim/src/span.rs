//! Per-transaction span tracing with phase-level latency attribution.
//!
//! The aggregate statistics in [`crate::stats`] answer "how loaded is this
//! component?"; they cannot answer "where did *this* access's 1.2 µs go?".
//! This module provides the missing layer: a [`TraceSink`] collects
//! [`SpanRecord`]s — one per phase a transaction passes through — keyed by a
//! causal transaction id, and can render the result as a Chrome
//! trace-event document loadable in Perfetto.
//!
//! Naming note: this module is deliberately called `span`, not `trace` —
//! `cohfree-core` already has a `trace` module that means something else
//! entirely (workload *operation* record/replay).
//!
//! ## Phase taxonomy
//!
//! A remote memory transaction decomposes into the phases of [`Phase`]:
//! serialization stall (the paper's one-outstanding-request quirk: the
//! requester holds the access until an RMC request slot frees), client RMC
//! queue + issue pass, per-hop wire time and fabric-link queueing, server
//! RMC queue, memory service, the reply passes, and loss-recovery
//! retry/backoff. OS-level reservation and evacuation protocol rounds are
//! traced as standalone single-span transactions.
//!
//! ## Exact tiling
//!
//! In Full mode, instrumentation sites append raw spans while a transaction
//! is in flight; [`TraceSink::finish`] *normalizes* them into a gapless,
//! non-overlapping tiling of `[t_begin, t_end]`: spans are sorted, overlaps
//! are clipped (overlap can only arise from duplicate in-flight attempts
//! under loss recovery), and uncovered residue — time spent waiting for a
//! loss-recovery timeout, or in flight on an attempt that was later
//! superseded — is attributed to [`Phase::Retry`]. The invariant that the
//! per-phase spans of a transaction sum *exactly* to its end-to-end latency
//! therefore holds by construction, and in the common lossless case every
//! span is the unmodified measurement.
//!
//! Aggregate mode takes a cheaper route suited to always-on use: each
//! measurement folds into running per-phase totals at push time (no buffer,
//! no sort), and the retry residue is computed as envelope minus covered
//! time at finish, saturating at zero. Lossless runs produce identical
//! aggregates in both modes; under loss recovery only Full mode clips
//! duplicate-attempt overlap exactly.
//!
//! The per-phase [`LatencyHistogram`]s hold **per-transaction phase
//! totals**: a 3-hop read contributes one `Wire` sample covering all six
//! hop traversals, so a phase's `count()` is the number of transactions
//! that touched it and `total_ns()` is aggregate time in the phase.

use crate::snapshot::Json;
use crate::stats::{Counter, LatencyHistogram};
use crate::time::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for the tx-id-keyed pending map. Transaction ids
/// are sequential counters hit several times per transaction on the
/// simulation hot path; SipHash is measurable overhead there and provides
/// nothing (the keys are not attacker-controlled).
#[derive(Default)]
pub struct TxIdHasher(u64);

impl Hasher for TxIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        // Fibonacci multiplicative scramble: sequential ids spread over the
        // whole table.
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type TxIdMap<V> = HashMap<u64, V, BuildHasherDefault<TxIdHasher>>;

/// One phase of a traced transaction's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Top-level envelope: the whole transaction, first offer to completion.
    Tx = 0,
    /// Serialization stall: the requester holds a ready access while all
    /// RMC request slots are busy (NACK/re-offer loop).
    Stall = 1,
    /// Queue wait for the client RMC's single front-end engine.
    ClientQueue = 2,
    /// Client RMC front-end pass building and injecting the request.
    Issue = 3,
    /// Wire time on one hop: router traversal, serialization, flight.
    Wire = 4,
    /// FIFO wait behind other messages on a fabric link serializer.
    FabricQueue = 5,
    /// Queue wait for the server RMC's front-end engine.
    ServerQueue = 6,
    /// Server-side service: front-end pass plus the local memory access.
    Service = 7,
    /// Response-side front-end passes (server inject, client match/retire).
    Reply = 8,
    /// Loss-recovery backoff: waiting out a timeout, retransmit passes, and
    /// time on in-flight attempts that a retransmission superseded.
    Retry = 9,
    /// OS reservation protocol round (zone lease negotiation).
    Resv = 10,
    /// OS evacuation protocol: re-homing a zone after a failure.
    Evac = 11,
    /// Recovery-manager admission control: an access deferred (or failed)
    /// because its target is load-shed.
    Shed = 12,
    /// Recovery-manager live migration: proactively re-homing a zone off a
    /// suspected or overloaded donor that is still up.
    Migrate = 13,
}

/// Number of distinct [`Phase`] values (array-index space).
pub const PHASE_COUNT: usize = 14;

impl Phase {
    /// All phases, in index order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Tx,
        Phase::Stall,
        Phase::ClientQueue,
        Phase::Issue,
        Phase::Wire,
        Phase::FabricQueue,
        Phase::ServerQueue,
        Phase::Service,
        Phase::Reply,
        Phase::Retry,
        Phase::Resv,
        Phase::Evac,
        Phase::Shed,
        Phase::Migrate,
    ];

    /// Stable machine-readable name (snapshot keys, Chrome event names).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Tx => "tx",
            Phase::Stall => "stall",
            Phase::ClientQueue => "client_queue",
            Phase::Issue => "issue",
            Phase::Wire => "wire",
            Phase::FabricQueue => "fabric_queue",
            Phase::ServerQueue => "server_queue",
            Phase::Service => "service",
            Phase::Reply => "reply",
            Phase::Retry => "retry",
            Phase::Resv => "resv",
            Phase::Evac => "evac",
            Phase::Shed => "shed",
            Phase::Migrate => "migrate",
        }
    }

    /// Component category the phase executes on (Chrome `cat` field).
    pub fn category(self) -> &'static str {
        match self {
            Phase::Tx => "tx",
            Phase::Stall | Phase::ClientQueue | Phase::Issue | Phase::Reply | Phase::Retry => {
                "client_rmc"
            }
            Phase::Wire | Phase::FabricQueue => "fabric",
            Phase::ServerQueue | Phase::Service => "server_rmc",
            Phase::Resv | Phase::Evac | Phase::Shed | Phase::Migrate => "os",
        }
    }
}

/// Tracing level selected by `TraceConfig` in `cohfree-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing work at all (the default).
    #[default]
    Off,
    /// Per-phase latency histograms only; individual spans are folded into
    /// the aggregates at transaction completion and discarded.
    Aggregate,
    /// Aggregates plus the complete span stream in the bounded ring.
    Full,
}

impl TraceMode {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Aggregate => "aggregate",
            TraceMode::Full => "full",
        }
    }
}

/// One completed span: a phase interval of one traced transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Causal transaction id (the RMC transaction tag, or a synthetic id
    /// for standalone protocol spans).
    pub tx_id: u64,
    /// Which phase of the transaction this interval covers.
    pub phase: Phase,
    /// Node the phase executed on (1-based; the issuing node for
    /// client-side phases, the home node for server-side ones).
    pub node: u16,
    /// Node that began the transaction and owns its export lane. Lanes are
    /// allocated per origin node, so `(origin, lane)` — not `(node, lane)`
    /// — is the overlap-free track coordinate: server-side spans of
    /// transactions from different clients may coincide in time.
    pub origin: u16,
    /// Inclusive start of the interval.
    pub t_start: SimTime,
    /// Exclusive end of the interval; `>= t_start` (equal only for the
    /// zero-length envelope of a transaction that failed fast).
    pub t_end: SimTime,
    /// Small key/value annotations (hop index, attempt number, export
    /// track id, ...).
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.t_end.saturating_since(self.t_start)
    }

    /// Value of an attribute, if present.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// A raw (pre-normalization) phase measurement buffered on a pending
/// transaction.
#[derive(Debug, Clone, Copy)]
struct RawSpan {
    phase: Phase,
    node: u16,
    t0: SimTime,
    t1: SimTime,
    attr: Option<(&'static str, u64)>,
}

/// Bookkeeping for a transaction that has begun but not yet finished.
#[derive(Debug)]
struct PendingTx {
    node: u16,
    lane: u32,
    t_begin: SimTime,
    body: PendingBody,
}

/// Mode-dependent in-flight state.
///
/// Full mode buffers every raw span so [`TraceSink::finish`] can normalize
/// them into an exact tiling. Aggregate mode folds each measurement into
/// running per-phase totals immediately — no buffer, no sort, no per-span
/// ring records — which is what keeps always-on tracing cheap. The price
/// is that Aggregate cannot clip the overlapping duplicate-attempt spans
/// loss recovery can produce: its `Retry` residue saturates at zero and
/// phase totals may slightly over-count under loss, where Full mode stays
/// exact.
#[derive(Debug)]
enum PendingBody {
    /// Raw spans awaiting exact-tiling normalization.
    Full(Vec<RawSpan>),
    /// Running totals: per-phase time plus total covered time.
    Agg {
        totals: [SimDuration; PHASE_COUNT],
        covered: SimDuration,
    },
}

/// Per-node export-lane state: which transaction currently owns the lane
/// and the latest span end ever placed on it (lanes are only reused for
/// transactions starting after that instant, keeping every exported track
/// overlap-free).
#[derive(Debug, Clone, Copy, Default)]
struct Lane {
    owner: Option<u64>,
    last_end: SimTime,
}

/// Bounded collector of transaction spans.
///
/// The ring holds at most `capacity` [`SpanRecord`]s; once full, the oldest
/// records are evicted and counted in [`TraceSink::dropped`]. Per-phase
/// [`LatencyHistogram`]s are maintained regardless of ring occupancy (they
/// are the always-cheap Aggregate view).
#[derive(Debug)]
pub struct TraceSink {
    mode: TraceMode,
    capacity: usize,
    spans: VecDeque<SpanRecord>,
    dropped: Counter,
    phases: [LatencyHistogram; PHASE_COUNT],
    pending: TxIdMap<PendingTx>,
    /// One-entry cache in front of `pending`: the memory-access hot path
    /// touches the same transaction ~10 times back-to-back (begin, one push
    /// per phase, finish), and a tag compare is cheaper than even a good
    /// hash-map probe. Overflow (a second concurrent open transaction)
    /// falls through to the map.
    hot: Option<(u64, PendingTx)>,
    lanes: HashMap<u16, Vec<Lane>>,
    completed: Counter,
    failed: Counter,
    next_proto_id: u64,
    /// Recycled raw-span buffers (avoids an allocation per transaction).
    spare: Vec<Vec<RawSpan>>,
}

/// Recycled span-buffer pool bound (buffers beyond this are freed).
const SPARE_BUFFERS: usize = 64;

/// Default span-ring capacity: enough for every span of ~20k transactions.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Export-lane namespace per origin node in Chrome-trace `tid`s
/// (`tid = origin * stride + lane`). A node needs one lane per transaction
/// it has simultaneously in flight, so 256 is far beyond any workload here.
pub const TID_LANE_STRIDE: u64 = 256;

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new(TraceMode::Off, DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceSink {
    /// A sink in the given mode with the given ring capacity (spans).
    pub fn new(mode: TraceMode, capacity: usize) -> TraceSink {
        TraceSink {
            mode,
            capacity: capacity.max(1),
            spans: VecDeque::new(),
            dropped: Counter::new(),
            phases: std::array::from_fn(|_| LatencyHistogram::new()),
            pending: TxIdMap::default(),
            hot: None,
            lanes: HashMap::new(),
            completed: Counter::new(),
            failed: Counter::new(),
            next_proto_id: 1,
            spare: Vec::new(),
        }
    }

    /// Selected tracing mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// True when any tracing work should be done.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// True when `tx_id` has begun and not yet finished.
    #[inline]
    pub fn is_traced(&self, tx_id: u64) -> bool {
        self.enabled() && (self.hot_matches(tx_id) || self.pending.contains_key(&tx_id))
    }

    #[inline]
    fn hot_matches(&self, tx_id: u64) -> bool {
        matches!(&self.hot, Some((id, _)) if *id == tx_id)
    }

    /// The open transaction `tx_id`, wherever it lives.
    #[inline]
    fn open_mut(&mut self, tx_id: u64) -> Option<&mut PendingTx> {
        if self.hot_matches(tx_id) {
            return self.hot.as_mut().map(|(_, p)| p);
        }
        self.pending.get_mut(&tx_id)
    }

    /// Remove and return the open transaction `tx_id`.
    fn take_open(&mut self, tx_id: u64) -> Option<PendingTx> {
        if self.hot_matches(tx_id) {
            return self.hot.take().map(|(_, p)| p);
        }
        self.pending.remove(&tx_id)
    }

    /// Open a transaction. `t_begin` may lie before the call's event time
    /// (the serialization stall is discovered retroactively at slot
    /// acceptance). No-op when tracing is off or the id is already open.
    pub fn begin(&mut self, tx_id: u64, node: u16, t_begin: SimTime) {
        if !self.enabled() || self.is_traced(tx_id) {
            return;
        }
        // Export lanes only matter for the Full-mode span stream; the
        // Aggregate hot path skips the allocator entirely.
        let (lane, body) = if self.mode == TraceMode::Full {
            (
                self.alloc_lane(node, tx_id, t_begin),
                PendingBody::Full(self.spare.pop().unwrap_or_else(|| Vec::with_capacity(16))),
            )
        } else {
            (
                0,
                PendingBody::Agg {
                    totals: [SimDuration::ZERO; PHASE_COUNT],
                    covered: SimDuration::ZERO,
                },
            )
        };
        let p = PendingTx {
            node,
            lane,
            t_begin,
            body,
        };
        if self.hot.is_none() {
            self.hot = Some((tx_id, p));
        } else {
            self.pending.insert(tx_id, p);
        }
    }

    /// Append a phase measurement to an open transaction. Ignored when the
    /// id is not open (untraced transaction, probe traffic) or the interval
    /// is empty.
    #[inline]
    pub fn push(&mut self, tx_id: u64, phase: Phase, node: u16, t0: SimTime, t1: SimTime) {
        self.push_attr(tx_id, phase, node, t0, t1, None);
    }

    /// [`TraceSink::push`] with one attribute attached.
    pub fn push_attr(
        &mut self,
        tx_id: u64,
        phase: Phase,
        node: u16,
        t0: SimTime,
        t1: SimTime,
        attr: Option<(&'static str, u64)>,
    ) {
        if t1 <= t0 {
            return;
        }
        if let Some(p) = self.open_mut(tx_id) {
            match &mut p.body {
                PendingBody::Full(spans) => spans.push(RawSpan {
                    phase,
                    node,
                    t0,
                    t1,
                    attr,
                }),
                PendingBody::Agg { totals, covered } => {
                    let d = t1.saturating_since(t0);
                    totals[phase as usize] += d;
                    *covered += d;
                }
            }
        }
    }

    /// Close a transaction at `t_end`, normalize its spans into an exact
    /// tiling of `[t_begin, t_end]`, fold the phase durations into the
    /// aggregate histograms and (in Full mode) the span ring.
    pub fn finish(&mut self, tx_id: u64, t_end: SimTime, failed: bool) {
        let Some(pending) = self.take_open(tx_id) else {
            return;
        };
        if failed {
            self.failed.inc();
        } else {
            self.completed.inc();
        }
        let node = pending.node;
        let lane = pending.lane;
        let t_begin = pending.t_begin;
        let t_end = t_end.max(t_begin);
        let full = self.mode == TraceMode::Full;
        if full {
            self.release_lane(node, lane, tx_id, t_end);
        }

        if t_end > t_begin {
            self.phases[Phase::Tx as usize].record(t_end.saturating_since(t_begin));
        }
        if full {
            let mut attrs = vec![("track", lane as u64)];
            if failed {
                attrs.push(("failed", 1));
            }
            self.ring_push(SpanRecord {
                tx_id,
                phase: Phase::Tx,
                node,
                origin: node,
                t_start: t_begin,
                t_end,
                attrs,
            });
        }

        // Each phase's total over the transaction becomes ONE histogram
        // sample — the histograms answer "how much wire time does a
        // transaction spend", not "how long is one hop".
        match pending.body {
            PendingBody::Full(mut spans) => {
                // Normalize: sort (only needed under loss-recovery
                // reordering), clip overlaps, attribute uncovered residue
                // to loss recovery. The emitted pieces tile
                // [t_begin, t_end] exactly.
                if !spans.is_sorted_by_key(|s| (s.t0, s.t1)) {
                    spans.sort_unstable_by_key(|s| (s.t0, s.t1));
                }
                let mut totals = [SimDuration::ZERO; PHASE_COUNT];
                let mut cursor = t_begin;
                for &s in &spans {
                    let s0 = s.t0.max(cursor);
                    let s1 = s.t1.min(t_end);
                    if s1 <= s0 {
                        continue;
                    }
                    if s0 > cursor {
                        totals[Phase::Retry as usize] += s0.saturating_since(cursor);
                        self.emit_piece(
                            tx_id,
                            Phase::Retry,
                            node,
                            node,
                            cursor,
                            s0,
                            None,
                            lane,
                            full,
                        );
                    }
                    totals[s.phase as usize] += s1.saturating_since(s0);
                    self.emit_piece(tx_id, s.phase, s.node, node, s0, s1, s.attr, lane, full);
                    cursor = s1;
                }
                if cursor < t_end {
                    totals[Phase::Retry as usize] += t_end.saturating_since(cursor);
                    self.emit_piece(
                        tx_id,
                        Phase::Retry,
                        node,
                        node,
                        cursor,
                        t_end,
                        None,
                        lane,
                        full,
                    );
                }
                self.record_totals(&totals);
                self.recycle(spans);
            }
            PendingBody::Agg {
                mut totals,
                covered,
            } => {
                // No buffered spans to tile: uncovered residue is the
                // envelope minus covered time, saturating at zero when
                // duplicate loss-recovery attempts overlap.
                totals[Phase::Retry as usize] +=
                    t_end.saturating_since(t_begin).saturating_sub(covered);
                self.record_totals(&totals);
            }
        }
    }

    /// Record each nonzero per-transaction phase total as one histogram
    /// sample.
    fn record_totals(&mut self, totals: &[SimDuration; PHASE_COUNT]) {
        for (i, &d) in totals.iter().enumerate() {
            if d > SimDuration::ZERO {
                self.phases[i].record(d);
            }
        }
    }

    /// Append one normalized tiling piece to the Full-mode span ring (a
    /// no-op in Aggregate mode, where only the phase totals survive).
    #[allow(clippy::too_many_arguments)]
    fn emit_piece(
        &mut self,
        tx_id: u64,
        phase: Phase,
        node: u16,
        origin: u16,
        t0: SimTime,
        t1: SimTime,
        attr: Option<(&'static str, u64)>,
        lane: u32,
        full: bool,
    ) {
        if full {
            let mut attrs = vec![("track", lane as u64)];
            if let Some(kv) = attr {
                attrs.push(kv);
            }
            self.ring_push(SpanRecord {
                tx_id,
                phase,
                node,
                origin,
                t_start: t0,
                t_end: t1,
                attrs,
            });
        }
    }

    /// Return a drained raw-span buffer to the pool.
    fn recycle(&mut self, mut spans: Vec<RawSpan>) {
        if self.spare.len() < SPARE_BUFFERS {
            spans.clear();
            self.spare.push(spans);
        }
    }

    /// Record a transaction that failed before it could even be submitted
    /// (its home node is already declared failed): a zero-length failed
    /// envelope, so failure accounting and envelope counts stay aligned.
    pub fn fail_fast(&mut self, node: u16, t: SimTime) {
        if !self.enabled() {
            return;
        }
        let tx_id = u64::MAX - self.next_proto_id;
        self.next_proto_id += 1;
        self.begin(tx_id, node, t);
        self.finish(tx_id, t, true);
    }

    /// Discard an open transaction without recording anything (its issuing
    /// node crashed; failure accounting happens in bulk elsewhere).
    pub fn abandon(&mut self, tx_id: u64) {
        if let Some(p) = self.take_open(tx_id) {
            if self.mode == TraceMode::Full {
                self.release_lane(p.node, p.lane, tx_id, p.t_begin);
            }
            if let PendingBody::Full(spans) = p.body {
                self.recycle(spans);
            }
        }
    }

    /// Record a standalone single-span protocol transaction (reservation
    /// round, evacuation). These do not produce a [`Phase::Tx`] envelope, so
    /// they never count as memory transactions.
    pub fn standalone(&mut self, phase: Phase, node: u16, t0: SimTime, t1: SimTime) {
        if !self.enabled() || t1 <= t0 {
            return;
        }
        let tx_id = u64::MAX - self.next_proto_id;
        self.next_proto_id += 1;
        self.phases[phase as usize].record(t1.saturating_since(t0));
        if self.mode == TraceMode::Full {
            let lane = self.alloc_lane(node, tx_id, t0);
            self.release_lane(node, lane, tx_id, t1);
            self.ring_push(SpanRecord {
                tx_id,
                phase,
                node,
                origin: node,
                t_start: t0,
                t_end: t1,
                attrs: vec![("track", lane as u64)],
            });
        }
    }

    fn ring_push(&mut self, span: SpanRecord) {
        if self.spans.len() >= self.capacity {
            self.spans.pop_front();
            self.dropped.inc();
        }
        self.spans.push_back(span);
    }

    /// Lowest lane on `node` that is unoccupied and whose previous content
    /// ended at or before `t_begin` (so exported tracks never overlap).
    fn alloc_lane(&mut self, node: u16, tx_id: u64, t_begin: SimTime) -> u32 {
        let lanes = self.lanes.entry(node).or_default();
        for (i, lane) in lanes.iter_mut().enumerate() {
            if lane.owner.is_none() && lane.last_end <= t_begin {
                lane.owner = Some(tx_id);
                return i as u32;
            }
        }
        lanes.push(Lane {
            owner: Some(tx_id),
            last_end: SimTime::ZERO,
        });
        (lanes.len() - 1) as u32
    }

    fn release_lane(&mut self, node: u16, lane: u32, tx_id: u64, t_end: SimTime) {
        if let Some(lanes) = self.lanes.get_mut(&node) {
            if let Some(l) = lanes.get_mut(lane as usize) {
                if l.owner == Some(tx_id) {
                    l.owner = None;
                    l.last_end = l.last_end.max(t_end);
                }
            }
        }
    }

    /// Completed (successfully finished) traced transactions.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Traced transactions that finished as failures.
    pub fn failed(&self) -> u64 {
        self.failed.get()
    }

    /// Spans evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Spans currently held in the ring.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The retained span stream, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Aggregate latency histogram for one phase. Each sample is one
    /// transaction's *total* time in that phase (a 3-hop read contributes
    /// one `Wire` sample covering all six hop traversals), so `count()` is
    /// the number of transactions that touched the phase.
    pub fn phase_hist(&self, phase: Phase) -> &LatencyHistogram {
        &self.phases[phase as usize]
    }

    /// Total nanoseconds attributed to `phase` across all finished
    /// transactions.
    pub fn phase_total_ns(&self, phase: Phase) -> f64 {
        self.phase_hist(phase).total_ns()
    }

    /// Serializable aggregate view: mode, ring occupancy/drops, transaction
    /// counts and the per-phase histograms (phases with samples only).
    pub fn snapshot(&self) -> Json {
        let mut phases = Vec::new();
        for p in Phase::ALL {
            let h = self.phase_hist(p);
            if h.count() > 0 {
                phases.push((p.name(), h.snapshot()));
            }
        }
        Json::obj([
            ("mode", Json::from(self.mode.name())),
            ("spans", Json::from(self.spans.len() as u64)),
            ("dropped", Json::from(self.dropped.get())),
            ("completed", Json::from(self.completed.get())),
            ("failed", Json::from(self.failed.get())),
            (
                "phases",
                Json::Obj(
                    phases
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                ),
            ),
        ])
    }

    /// Chrome trace-event list for the retained spans.
    ///
    /// Events are complete (`"ph": "X"`) with `pid = pid_base + node` and
    /// `tid = origin * TID_LANE_STRIDE + lane` — lanes are overlap-free per
    /// *origin* node, so namespacing the tid by origin keeps every track
    /// overlap-free even where server-side spans of transactions from
    /// different clients share a pid. Process-name metadata labels each pid
    /// as `"{proc_prefix}node N"`. Timestamps are microseconds per the
    /// trace format; sub-ns precision is preserved as fractions.
    pub fn chrome_events(&self, pid_base: u64, proc_prefix: &str) -> Vec<Json> {
        let mut events = Vec::with_capacity(self.spans.len() + 16);
        let mut pids: Vec<u16> = Vec::new();
        for span in &self.spans {
            if !pids.contains(&span.node) {
                pids.push(span.node);
            }
            let ts_us = span.t_start.as_ns() as f64 / 1000.0;
            let dur_us = span.duration().as_ns_f64() / 1000.0;
            let tid = span.origin as u64 * TID_LANE_STRIDE + span.attr("track").unwrap_or(0);
            let mut args: Vec<(String, Json)> = vec![("tx".to_string(), Json::from(span.tx_id))];
            for &(k, v) in &span.attrs {
                if k != "track" {
                    args.push((k.to_string(), Json::from(v)));
                }
            }
            events.push(Json::obj([
                ("name", Json::from(span.phase.name())),
                ("cat", Json::from(span.phase.category())),
                ("ph", Json::from("X")),
                ("ts", Json::from(ts_us)),
                ("dur", Json::from(dur_us)),
                ("pid", Json::from(pid_base + span.node as u64)),
                ("tid", Json::from(tid)),
                ("args", Json::Obj(args)),
            ]));
        }
        for node in pids {
            events.push(Json::obj([
                ("name", Json::from("process_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(pid_base + node as u64)),
                ("tid", Json::from(0u64)),
                (
                    "args",
                    Json::obj([("name", Json::from(format!("{proc_prefix}node {node}")))]),
                ),
            ]));
        }
        events
    }

    /// A complete Chrome trace-event JSON document for the retained spans.
    pub fn chrome_trace(&self) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.chrome_events(0, ""))),
            ("displayTimeUnit", Json::from("ns")),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::ns(ns)
    }

    #[test]
    fn off_mode_does_no_work() {
        let mut sink = TraceSink::new(TraceMode::Off, 64);
        sink.begin(1, 1, t(0));
        sink.push(1, Phase::Issue, 1, t(0), t(10));
        sink.finish(1, t(10), false);
        assert!(!sink.is_traced(1));
        assert_eq!(sink.completed(), 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn clean_transaction_tiles_exactly() {
        let mut sink = TraceSink::new(TraceMode::Full, 1024);
        sink.begin(7, 3, t(0));
        sink.push(7, Phase::ClientQueue, 3, t(0), t(5));
        sink.push(7, Phase::Issue, 3, t(5), t(10));
        sink.push(7, Phase::Wire, 3, t(10), t(40));
        sink.push(7, Phase::ServerQueue, 5, t(40), t(50));
        sink.push(7, Phase::Service, 5, t(50), t(80));
        sink.push(7, Phase::Wire, 3, t(80), t(110));
        sink.push(7, Phase::Reply, 3, t(110), t(120));
        sink.finish(7, t(120), false);

        assert_eq!(sink.completed(), 1);
        let spans: Vec<_> = sink.spans().collect();
        // 1 Tx envelope + 7 phase spans, no Retry filler.
        assert_eq!(spans.len(), 8);
        assert!(spans.iter().all(|s| s.phase != Phase::Retry));
        let sum: u64 = spans
            .iter()
            .filter(|s| s.phase != Phase::Tx)
            .map(|s| s.duration().as_ns())
            .sum();
        assert_eq!(sum, 120);
        assert_eq!(sink.phase_hist(Phase::Tx).count(), 1);
        // Histograms hold per-transaction phase totals: the two wire
        // crossings fold into one 60 ns sample.
        assert_eq!(sink.phase_hist(Phase::Wire).count(), 1);
        assert_eq!(sink.phase_hist(Phase::Wire).total_ns(), 60.0);
    }

    #[test]
    fn gaps_and_overlaps_normalize_to_exact_tiling() {
        let mut sink = TraceSink::new(TraceMode::Full, 1024);
        sink.begin(9, 2, t(0));
        sink.push(9, Phase::Issue, 2, t(0), t(10));
        // Gap [10, 30): a lost attempt's timeout wait.
        sink.push(9, Phase::Wire, 2, t(30), t(60));
        // Overlapping duplicate-attempt span gets clipped.
        sink.push(9, Phase::Wire, 2, t(50), t(70));
        sink.finish(9, t(100), false);

        let phase_sum: u64 = sink
            .spans()
            .filter(|s| s.phase != Phase::Tx)
            .map(|s| s.duration().as_ns())
            .sum();
        assert_eq!(phase_sum, 100, "tiling must cover begin..end exactly");
        // Residue went to Retry: [10,30) and [70,100).
        let retry: u64 = sink
            .spans()
            .filter(|s| s.phase == Phase::Retry)
            .map(|s| s.duration().as_ns())
            .sum();
        assert_eq!(retry, 50);
        // No two spans on one (node, track) overlap.
        let mut by_track: HashMap<(u16, u64), Vec<(u64, u64)>> = HashMap::new();
        for s in sink.spans().filter(|s| s.phase != Phase::Tx) {
            by_track
                .entry((s.node, s.attr("track").unwrap()))
                .or_default()
                .push((s.t_start.as_ns(), s.t_end.as_ns()));
        }
        for spans in by_track.values_mut() {
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
            }
        }
    }

    #[test]
    fn concurrent_transactions_get_distinct_lanes() {
        let mut sink = TraceSink::new(TraceMode::Full, 1024);
        sink.begin(1, 1, t(0));
        sink.begin(2, 1, t(5));
        sink.push(1, Phase::Issue, 1, t(0), t(20));
        sink.push(2, Phase::Issue, 1, t(5), t(25));
        sink.finish(1, t(20), false);
        sink.finish(2, t(25), false);
        let tx_spans: Vec<_> = sink.spans().filter(|s| s.phase == Phase::Tx).collect();
        assert_eq!(tx_spans.len(), 2);
        assert_ne!(tx_spans[0].attr("track"), tx_spans[1].attr("track"));
        // A later transaction can reuse lane 0 once it is past the old end.
        sink.begin(3, 1, t(30));
        sink.finish(3, t(40), false);
        let last = sink
            .spans()
            .filter(|s| s.phase == Phase::Tx)
            .last()
            .unwrap();
        assert_eq!(last.attr("track"), Some(0));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut sink = TraceSink::new(TraceMode::Full, 4);
        for i in 0..4u64 {
            sink.begin(i, 1, t(i * 100));
            sink.push(i, Phase::Issue, 1, t(i * 100), t(i * 100 + 10));
            sink.finish(i, t(i * 100 + 10), false);
        }
        // 4 txs × 2 spans = 8 produced; capacity 4 keeps the newest 4.
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 4);
        assert_eq!(sink.completed(), 4, "aggregates unaffected by eviction");
        assert_eq!(sink.phase_hist(Phase::Issue).count(), 4);
    }

    #[test]
    fn failed_transactions_counted_separately() {
        let mut sink = TraceSink::new(TraceMode::Aggregate, 64);
        sink.begin(1, 1, t(0));
        sink.push(1, Phase::Issue, 1, t(0), t(10));
        sink.finish(1, t(50), true);
        assert_eq!(sink.failed(), 1);
        assert_eq!(sink.completed(), 0);
        // Aggregate mode retains no spans.
        assert!(sink.is_empty());
        // Abort residue [10,50) shows up as Retry.
        assert_eq!(sink.phase_hist(Phase::Retry).count(), 1);
    }

    #[test]
    fn standalone_protocol_spans_have_no_tx_envelope() {
        let mut sink = TraceSink::new(TraceMode::Full, 64);
        sink.standalone(Phase::Resv, 4, t(0), t(200));
        sink.standalone(Phase::Evac, 4, t(300), t(700));
        assert_eq!(sink.phase_hist(Phase::Resv).count(), 1);
        assert_eq!(sink.phase_hist(Phase::Evac).count(), 1);
        assert_eq!(sink.phase_hist(Phase::Tx).count(), 0);
        assert_eq!(sink.spans().filter(|s| s.phase == Phase::Tx).count(), 0);
    }

    #[test]
    fn chrome_trace_parses_and_is_well_formed() {
        let mut sink = TraceSink::new(TraceMode::Full, 1024);
        sink.begin(1, 2, t(0));
        sink.push(1, Phase::Issue, 2, t(0), t(10));
        sink.push(1, Phase::Wire, 2, t(10), t(40));
        sink.finish(1, t(40), false);
        let doc = sink.chrome_trace();
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 3); // tx + issue + wire
        for e in &xs {
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(e.get("dur").and_then(|v| v.as_f64()).unwrap() > 0.0);
            assert_eq!(e.get("pid").and_then(|v| v.as_u64()), Some(2));
        }
        // Metadata names the process.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
    }
}
