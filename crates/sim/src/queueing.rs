//! Analytic queueing primitives.
//!
//! Many contended resources in the model — DRAM controllers, the RMC
//! front-end, fabric links — are well described as single servers with FIFO
//! discipline and deterministic per-item service times. [`FifoServer`]
//! computes departure times in O(1) without materializing queue entries,
//! while tracking utilization statistics. [`BoundedFifoServer`] adds a finite
//! queue with explicit rejection, which the RMC model uses to produce
//! NACK/retry behaviour under overload.

use crate::time::{SimDuration, SimTime};

/// A single-server FIFO queue with deterministic service times.
///
/// `accept(now, service)` returns the instant the item's service *completes*,
/// assuming the item arrives at `now`, waits for all previously accepted items
/// and is then served for `service`. The server is work-conserving.
///
/// ```
/// use cohfree_sim::{FifoServer, SimDuration, SimTime};
/// let mut s = FifoServer::new();
/// let t0 = SimTime::ZERO;
/// // Empty server: departure = arrival + service.
/// assert_eq!(s.accept(t0, SimDuration::ns(10)), t0 + SimDuration::ns(10));
/// // Second arrival at the same instant queues behind the first.
/// assert_eq!(s.accept(t0, SimDuration::ns(10)), t0 + SimDuration::ns(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    /// Instant the server finishes its last accepted item.
    busy_until: SimTime,
    /// Total service time accepted (for utilization accounting).
    busy_time: SimDuration,
    /// Items accepted.
    accepted: u64,
    /// Cumulative queueing delay experienced by accepted items.
    total_wait: SimDuration,
    /// Maximum instantaneous backlog observed, expressed as time-to-drain.
    max_backlog: SimDuration,
}

impl FifoServer {
    /// A new idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept an item arriving at `now` requiring `service`; returns its
    /// departure (service-completion) instant.
    pub fn accept(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        let wait = start.since(now.min(start));
        let depart = start + service;
        self.busy_until = depart;
        self.busy_time += service;
        self.accepted += 1;
        self.total_wait += wait;
        let backlog = depart.since(now);
        if backlog > self.max_backlog {
            self.max_backlog = backlog;
        }
        depart
    }

    /// Time-to-drain of the current backlog as seen at `now` (zero if idle).
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// True if the server would start a new item immediately at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Instant the server drains completely.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Items accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Mean queueing delay (excluding service) over accepted items.
    pub fn mean_wait(&self) -> SimDuration {
        SimDuration(
            self.total_wait
                .as_ps()
                .checked_div(self.accepted)
                .unwrap_or(0),
        )
    }

    /// Largest time-to-drain backlog observed at any acceptance.
    pub fn max_backlog(&self) -> SimDuration {
        self.max_backlog
    }

    /// Fraction of `[0, horizon]` the server spent serving (can exceed 1.0 if
    /// the backlog extends past the horizon — i.e. offered load > capacity).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.busy_time.as_ps() as f64 / horizon.as_ps() as f64
        }
    }

    /// Reset to idle, clearing statistics.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Outcome of offering an item to a [`BoundedFifoServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Item accepted; service completes at the contained instant.
    Accepted(SimTime),
    /// Queue full; retry no earlier than the contained instant (when a slot
    /// is guaranteed to have freed).
    Rejected {
        /// Earliest instant a slot is guaranteed free.
        retry_at: SimTime,
    },
}

/// A FIFO server with a bounded queue.
///
/// Models a hardware unit with `depth` request slots (including the one in
/// service). An item offered while all slots are full is rejected — the
/// caller must retry, which is how HyperTransport-style NACK/retry
/// arbitration is modelled. Rejections are counted: heavy rejection traffic
/// is itself a throughput drag the RMC model charges for.
#[derive(Debug, Clone)]
pub struct BoundedFifoServer {
    inner: FifoServer,
    /// Departure times of items currently occupying slots.
    slots: std::collections::VecDeque<SimTime>,
    depth: usize,
    rejected: u64,
}

impl BoundedFifoServer {
    /// A server with `depth` total slots (must be ≥ 1).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "BoundedFifoServer requires depth >= 1");
        BoundedFifoServer {
            inner: FifoServer::new(),
            slots: std::collections::VecDeque::with_capacity(depth),
            depth,
            rejected: 0,
        }
    }

    /// Offer an item arriving at `now` with the given `service` demand.
    pub fn offer(&mut self, now: SimTime, service: SimDuration) -> Offer {
        // Free slots whose items have departed by `now`.
        while let Some(&front) = self.slots.front() {
            if front <= now {
                self.slots.pop_front();
            } else {
                break;
            }
        }
        if self.slots.len() >= self.depth {
            self.rejected += 1;
            // The earliest slot frees when the oldest resident departs.
            let retry_at = *self.slots.front().expect("full queue has a front");
            return Offer::Rejected { retry_at };
        }
        let depart = self.inner.accept(now, service);
        self.slots.push_back(depart);
        Offer::Accepted(depart)
    }

    /// Occupied slots as seen at `now`.
    pub fn occupancy(&self, now: SimTime) -> usize {
        self.slots.iter().filter(|&&d| d > now).count()
    }

    /// Total rejections so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Access to the underlying server's statistics.
    pub fn stats(&self) -> &FifoServer {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::ns(ns)
    }

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = FifoServer::new();
        assert!(s.is_idle(t(0)));
        let d = s.accept(t(5), SimDuration::ns(10));
        assert_eq!(d, t(15));
        assert_eq!(s.mean_wait(), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_arrivals_queue() {
        let mut s = FifoServer::new();
        let d1 = s.accept(t(0), SimDuration::ns(10));
        let d2 = s.accept(t(0), SimDuration::ns(10));
        let d3 = s.accept(t(0), SimDuration::ns(10));
        assert_eq!((d1, d2, d3), (t(10), t(20), t(30)));
        // Waits: 0, 10, 20 -> mean 10.
        assert_eq!(s.mean_wait(), SimDuration::ns(10));
        assert_eq!(s.max_backlog(), SimDuration::ns(30));
    }

    #[test]
    fn idle_gap_resets_wait() {
        let mut s = FifoServer::new();
        s.accept(t(0), SimDuration::ns(10));
        let d = s.accept(t(100), SimDuration::ns(10));
        assert_eq!(d, t(110));
        assert_eq!(s.backlog(t(100)), SimDuration::ns(10));
        assert!(s.is_idle(t(200)));
    }

    #[test]
    fn utilization_accounts_service_only() {
        let mut s = FifoServer::new();
        s.accept(t(0), SimDuration::ns(10));
        s.accept(t(50), SimDuration::ns(10));
        let u = s.utilization(t(100));
        assert!((u - 0.2).abs() < 1e-12, "{u}");
    }

    #[test]
    fn reset_clears_state() {
        let mut s = FifoServer::new();
        s.accept(t(0), SimDuration::ns(10));
        s.reset();
        assert_eq!(s.accepted(), 0);
        assert!(s.is_idle(t(0)));
    }

    #[test]
    fn bounded_rejects_when_full() {
        let mut s = BoundedFifoServer::new(2);
        let a = s.offer(t(0), SimDuration::ns(10));
        let b = s.offer(t(0), SimDuration::ns(10));
        assert_eq!(a, Offer::Accepted(t(10)));
        assert_eq!(b, Offer::Accepted(t(20)));
        // Both slots held; third offer at t=0 is rejected, retry when the
        // first departs (t=10).
        match s.offer(t(0), SimDuration::ns(10)) {
            Offer::Rejected { retry_at } => assert_eq!(retry_at, t(10)),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(s.rejected(), 1);
        assert_eq!(s.occupancy(t(0)), 2);
    }

    #[test]
    fn bounded_frees_slots_over_time() {
        let mut s = BoundedFifoServer::new(1);
        assert_eq!(s.offer(t(0), SimDuration::ns(10)), Offer::Accepted(t(10)));
        // At t=10 the slot has freed.
        assert_eq!(s.offer(t(10), SimDuration::ns(10)), Offer::Accepted(t(20)));
        assert_eq!(s.rejected(), 0);
        assert_eq!(s.occupancy(t(15)), 1);
        assert_eq!(s.occupancy(t(25)), 0);
    }

    #[test]
    #[should_panic(expected = "depth >= 1")]
    fn bounded_zero_depth_panics() {
        let _ = BoundedFifoServer::new(0);
    }
}
