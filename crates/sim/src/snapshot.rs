//! Serializable metric snapshots and a minimal JSON document model.
//!
//! The simulator's report pipeline needs machine-readable output without
//! pulling in an external serialization framework (the build is fully
//! offline). [`Json`] is a small order-preserving document value with a
//! writer and a parser — enough to emit benchmark reports and read them back
//! in tests. The snapshot methods on the [`stats`](crate::stats) and
//! [`queueing`](crate::queueing) primitives produce `Json` views of their
//! current state; higher-level crates compose these into per-component and
//! cluster-wide snapshots.

use crate::queueing::{BoundedFifoServer, FifoServer};
use crate::stats::{Counter, LatencyHistogram, OnlineSummary, TimeWeighted};
use crate::time::SimTime;
use std::fmt;

/// A JSON document value.
///
/// Objects preserve insertion order so emitted reports are stable and
/// diffable. Numbers are stored as `f64`; integral values within the safe
/// range are written without a fractional part.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as an integer, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= MAX_SAFE_INT => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize, appending to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

/// Compact serialization — `doc.to_string()` yields the JSON text.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Largest integer exactly representable in an `f64`.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_991.0; // 2^53 - 1

fn write_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= MAX_SAFE_INT {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", v as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired here; the writer never
                            // emits them, so map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a `&str` and
                    // every other advance is over ASCII, so `pos` is always
                    // on a char boundary — slice the original text instead
                    // of re-validating the whole tail per character (which
                    // made parsing quadratic in document size).
                    let c = self.text[self.pos..].chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

impl Counter {
    /// Serializable view: just the count.
    pub fn snapshot(&self) -> Json {
        Json::from(self.get())
    }
}

impl OnlineSummary {
    /// Serializable view: count and distribution moments.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count())),
            ("mean", Json::from(self.mean())),
            ("stddev", Json::from(self.stddev())),
            ("min", Json::from(self.min().unwrap_or(0.0))),
            ("max", Json::from(self.max().unwrap_or(0.0))),
        ])
    }
}

impl LatencyHistogram {
    /// Serializable view: count, mean and key quantiles in nanoseconds.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count())),
            ("mean_ns", Json::from(self.mean_ns())),
            ("p50_ns", Json::from(self.quantile_ns(0.50))),
            ("p90_ns", Json::from(self.quantile_ns(0.90))),
            ("p99_ns", Json::from(self.quantile_ns(0.99))),
            ("max_ns", Json::from(self.max_ns())),
        ])
    }
}

impl TimeWeighted {
    /// Serializable view: current/peak level and the time-weighted mean over
    /// `[0, horizon]`.
    pub fn snapshot(&self, horizon: SimTime) -> Json {
        Json::obj([
            ("current", Json::from(self.current())),
            ("peak", Json::from(self.peak())),
            ("mean", Json::from(self.mean(horizon))),
        ])
    }
}

impl FifoServer {
    /// Serializable view: throughput and queueing statistics, with
    /// utilization computed against `horizon`.
    pub fn snapshot(&self, horizon: SimTime) -> Json {
        Json::obj([
            ("accepted", Json::from(self.accepted())),
            ("utilization", Json::from(self.utilization(horizon))),
            ("mean_wait_ns", Json::from(self.mean_wait().as_ns_f64())),
            ("max_backlog_ns", Json::from(self.max_backlog().as_ns_f64())),
        ])
    }
}

impl BoundedFifoServer {
    /// Serializable view: the inner server's statistics plus rejections.
    pub fn snapshot(&self, horizon: SimTime) -> Json {
        let mut fields = match self.stats().snapshot(horizon) {
            Json::Obj(fields) => fields,
            _ => unreachable!("FifoServer snapshot is an object"),
        };
        fields.push(("rejected".to_string(), Json::from(self.rejected())));
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn writes_compact_documents() {
        let doc = Json::obj([
            ("name", Json::from("fig6")),
            ("rows", Json::from(vec![1u64, 2, 3])),
            ("ok", Json::from(true)),
            ("ratio", Json::from(0.5)),
            ("none", Json::Null),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fig6","rows":[1,2,3],"ok":true,"ratio":0.5,"none":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(doc.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_round_trip_exactly() {
        let doc = Json::from(9_007_199_254_740_991u64);
        assert_eq!(doc.to_string(), "9007199254740991");
        assert_eq!(
            Json::parse("9007199254740991").unwrap().as_u64(),
            Some(9_007_199_254_740_991)
        );
    }

    #[test]
    fn parses_nested_documents() {
        let text = r#" { "a" : [ 1 , 2.5 , { "b" : null } ] , "c" : false } "#;
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.get("c"), Some(&Json::Bool(false)));
        let arr = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_its_own_output() {
        let doc = Json::obj([
            ("empty_obj", Json::obj::<String>([])),
            ("empty_arr", Json::Arr(vec![])),
            ("neg", Json::from(-3.25f64)),
            ("big", Json::from(1e300f64)),
            ("unicode", Json::from("héllo ⚙")),
        ]);
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn stat_snapshots_have_expected_shape() {
        let mut c = Counter::new();
        c.add(7);
        assert_eq!(c.snapshot().as_u64(), Some(7));

        let mut s = OnlineSummary::new();
        s.record(1.0);
        s.record(3.0);
        let snap = s.snapshot();
        assert_eq!(snap.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(snap.get("mean").unwrap().as_f64(), Some(2.0));

        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ns(100));
        let snap = h.snapshot();
        assert_eq!(snap.get("count").unwrap().as_u64(), Some(1));
        assert!(snap.get("p99_ns").unwrap().as_f64().unwrap() > 0.0);

        let t = |ns| SimTime::ZERO + SimDuration::ns(ns);
        let mut w = TimeWeighted::new();
        w.set(t(0), 4.0);
        w.set(t(10), 0.0);
        let snap = w.snapshot(t(20));
        assert_eq!(snap.get("peak").unwrap().as_f64(), Some(4.0));
        assert_eq!(snap.get("mean").unwrap().as_f64(), Some(2.0));

        let mut srv = FifoServer::new();
        srv.accept(t(0), SimDuration::ns(10));
        let snap = srv.snapshot(t(100));
        assert_eq!(snap.get("accepted").unwrap().as_u64(), Some(1));
        assert!((snap.get("utilization").unwrap().as_f64().unwrap() - 0.1).abs() < 1e-12);

        let mut b = BoundedFifoServer::new(1);
        let _ = b.offer(t(0), SimDuration::ns(10));
        let _ = b.offer(t(0), SimDuration::ns(10));
        let snap = b.snapshot(t(100));
        assert_eq!(snap.get("rejected").unwrap().as_u64(), Some(1));
    }
}
