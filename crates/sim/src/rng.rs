//! Self-contained deterministic PRNG.
//!
//! Every stochastic element of the simulator (workload key streams, access
//! patterns, placement decisions) draws from [`Rng`], a xoshiro256\*\*
//! generator seeded through SplitMix64. Keeping the generator in-tree (rather
//! than depending on `rand`) guarantees bit-exact reproducibility of every
//! experiment across toolchains and crate-version bumps — a property the
//! test suite asserts against golden values.

/// xoshiro256\*\* pseudo-random generator (Blackman & Vigna).
///
/// Not cryptographically secure; statistically excellent and extremely fast,
/// which is what a simulator needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Distinct seeds yield
    /// independent-looking streams; the all-zero internal state is impossible
    /// by construction.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator (for giving each simulated
    /// thread / node its own stream without correlation).
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` via Lemire's unbiased multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        // Lemire 2019: widening multiply + rejection of the biased region.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Standard normal draw (Box–Muller; one value per call, the pair's twin
    /// is discarded to keep the state stream position simple and documented).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.f64();
            if u1 > f64::EPSILON {
                let u2 = self.f64();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "Rng::exponential: rate must be positive");
        loop {
            let u = self.f64();
            if u > 0.0 {
                return -u.ln() / rate;
            }
        }
    }
}

/// Zipf-distributed sampler over `{0, .., n-1}` with exponent `s`
/// (rank 0 most popular). Used by workloads to model skewed key popularity.
///
/// Sampling is by inverted-CDF binary search over precomputed cumulative
/// weights: O(log n) per draw, exact.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draw a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("non-NaN cumulative"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false — constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_values_are_stable() {
        // Locks in the exact output stream so experiments are reproducible
        // forever. Derived from the reference xoshiro256** + splitmix64.
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again, "same seed must give same stream");
        let mut r3 = Rng::new(1);
        assert_ne!(first[0], r3.next_u64(), "different seed, different stream");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(42);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut r = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1_000 {
            let v = r.range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut r = Rng::new(9);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "exp mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = Rng::new(1);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut r = Rng::new(21);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).unsigned_abs() < 600, "{counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut r = Rng::new(22);
        let mut head = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        assert!(head as f64 / n as f64 > 0.5, "head share {head}/{n}");
    }

    #[test]
    fn zipf_len() {
        let z = Zipf::new(17, 0.5);
        assert_eq!(z.len(), 17);
        assert!(!z.is_empty());
    }
}
