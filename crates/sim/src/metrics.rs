//! Engine self-profiling: a process-global runtime metrics registry.
//!
//! [`crate::stats`] measures the *simulated* cluster; this module measures
//! the *simulator itself* — scheduler rounds, merge causes, worker
//! wall-clock — so engine PRs can see where host time goes. Three
//! properties drive the design:
//!
//! * **Zero-cost when off.** The registry is compiled in unconditionally,
//!   but every probe begins with [`enabled`] — one relaxed load of a static
//!   `AtomicBool` — and hot loops cache that bool once per run, so the
//!   disabled tier costs a predictable branch. The perf harness's
//!   `--metrics-overhead` gate verifies the enabled tier too.
//! * **Out-of-band.** Probes write wall-clock and scheduler counts into
//!   this registry only; nothing here is ever read back by simulation
//!   code, so simulation output stays byte-identical with metrics on or
//!   off (the parallel differential suite proves it at every partition
//!   count).
//! * **Dependency-free.** Plain `std` maps behind one mutex. Low-frequency
//!   call sites lock directly; hot paths accumulate into run-local structs
//!   and flush once per run.
//!
//! Metric names may carry Prometheus-style labels inline
//! (`cohfree_par_merges_total{cause="fault"}`); [`labeled`] builds such
//! names with correct label-value escaping. [`render_prometheus`] emits
//! the whole registry in Prometheus text exposition format — histograms
//! (reusing [`LatencyHistogram`]) become cumulative `_bucket{le="…"}`
//! series plus `_sum`/`_count`, and time series become one sample per
//! point tagged with a `t` label.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::stats::LatencyHistogram;
use crate::time::SimDuration;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LatencyHistogram>,
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl Registry {
    const fn new() -> Registry {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            series: BTreeMap::new(),
        }
    }
}

fn reg() -> MutexGuard<'static, Registry> {
    REGISTRY.lock().expect("metrics registry poisoned")
}

/// Whether the registry is recording. Probes branch on this; hot loops
/// should load it once per run into a local and branch on that.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off. Off is the default; the bench pipeline turns
/// it on when `COHFREE_METRICS` names an export path.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Drop every recorded value (the enabled flag is left as-is). Call
/// between runs that must not see each other's numbers.
pub fn reset() {
    let mut r = reg();
    r.counters.clear();
    r.gauges.clear();
    r.hists.clear();
    r.series.clear();
}

/// Add `v` to the counter `name`. No-op while disabled.
pub fn counter_add(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    *reg().counters.entry(name.to_string()).or_insert(0) += v;
}

/// Set the gauge `name` to `v`. No-op while disabled.
pub fn gauge_set(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    reg().gauges.insert(name.to_string(), v);
}

/// Record one nanosecond observation into the histogram `name`. No-op
/// while disabled.
pub fn hist_record_ns(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    reg()
        .hists
        .entry(name.to_string())
        .or_default()
        .record(SimDuration::ns(ns));
}

/// Merge a run-locally accumulated histogram into the histogram `name`.
/// No-op while disabled.
pub fn hist_merge(name: &str, h: &LatencyHistogram) {
    if !enabled() {
        return;
    }
    reg().hists.entry(name.to_string()).or_default().merge(h);
}

/// Append the point `(t, v)` to the time series `name` (`t` is whatever
/// monotone x-axis the probe uses: events processed, sim-ns, wall-ns).
/// No-op while disabled.
pub fn series_push(name: &str, t: u64, v: f64) {
    if !enabled() {
        return;
    }
    reg()
        .series
        .entry(name.to_string())
        .or_default()
        .push((t, v));
}

/// Point-in-time copy of everything recorded, for experiment tables and
/// tests. Maps are ordered by full metric name.
#[derive(Clone, Default)]
pub struct Snapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Log-linear nanosecond histograms by name.
    pub hists: BTreeMap<String, LatencyHistogram>,
    /// Append-only `(t, v)` series by name.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl Snapshot {
    /// Counter value, 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose full name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

/// Copy the registry out. Works whether or not recording is enabled.
pub fn snapshot() -> Snapshot {
    let r = reg();
    Snapshot {
        counters: r.counters.clone(),
        gauges: r.gauges.clone(),
        hists: r.hists.clone(),
        series: r.series.clone(),
    }
}

/// Escape a label value for the Prometheus text format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Build a labeled metric name, `base{k1="v1",k2="v2"}`, with the values
/// escaped. With no labels the bare base is returned.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::from(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// `base{labels}` split into `(base, labels-with-braces-stripped)`.
fn split_name(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

/// Re-attach `extra` (e.g. `le="128"`) to a possibly-labeled name.
fn with_label(base: &str, labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{base}{{{extra}}}")
    } else {
        format!("{base}{{{labels},{extra}}}")
    }
}

fn type_line(out: &mut String, seen: &mut Option<String>, base: &str, kind: &str) {
    if seen.as_deref() != Some(base) {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        *seen = Some(base.to_string());
    }
}

/// Render `snap` in Prometheus text exposition format. Counters and
/// gauges are one sample each; histograms emit cumulative
/// `_bucket{le="…"}` samples over the occupied log-linear buckets plus
/// `_sum` and `_count`; series emit one gauge sample per point with the
/// probe's x-value as a `t` label.
pub fn render_prometheus_snapshot(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut seen: Option<String> = None;
    for (name, v) in &snap.counters {
        let (base, _) = split_name(name);
        type_line(&mut out, &mut seen, base, "counter");
        let _ = writeln!(out, "{name} {v}");
    }
    seen = None;
    for (name, v) in &snap.gauges {
        let (base, _) = split_name(name);
        type_line(&mut out, &mut seen, base, "gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    seen = None;
    for (name, h) in &snap.hists {
        let (base, labels) = split_name(name);
        type_line(&mut out, &mut seen, base, "histogram");
        let mut cum = 0u64;
        for (i, &c) in h.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let (_, hi) = LatencyHistogram::bucket_bounds(i);
            let _ = writeln!(
                out,
                "{} {cum}",
                with_label(&format!("{base}_bucket"), labels, &format!("le=\"{hi}\""))
            );
        }
        let _ = writeln!(
            out,
            "{} {}",
            with_label(&format!("{base}_bucket"), labels, "le=\"+Inf\""),
            h.count()
        );
        let sum_name = if labels.is_empty() {
            format!("{base}_sum")
        } else {
            format!("{base}_sum{{{labels}}}")
        };
        let count_name = if labels.is_empty() {
            format!("{base}_count")
        } else {
            format!("{base}_count{{{labels}}}")
        };
        let _ = writeln!(out, "{sum_name} {}", h.total_ns());
        let _ = writeln!(out, "{count_name} {}", h.count());
    }
    seen = None;
    for (name, points) in &snap.series {
        let (base, labels) = split_name(name);
        type_line(&mut out, &mut seen, base, "gauge");
        for &(t, v) in points {
            let _ = writeln!(
                out,
                "{} {v}",
                with_label(base, labels, &format!("t=\"{t}\""))
            );
        }
    }
    out
}

/// [`render_prometheus_snapshot`] over the live registry.
pub fn render_prometheus() -> String {
    render_prometheus_snapshot(&snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; these tests serialize on their own
    /// lock so they never see each other's writes.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_clean_registry<R>(f: impl FnOnce() -> R) -> R {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(false);
        counter_add("off_counter", 7);
        gauge_set("off_gauge", 1.5);
        hist_record_ns("off_hist", 42);
        series_push("off_series", 0, 1.0);
        let s = snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.hists.is_empty());
        assert!(s.series.is_empty());
    }

    #[test]
    fn reset_clears_between_runs_but_keeps_the_tier() {
        with_clean_registry(|| {
            counter_add("runs_total", 1);
            hist_record_ns("h", 10);
            series_push("s", 1, 2.0);
            gauge_set("g", 3.0);
            assert_eq!(snapshot().counter("runs_total"), 1);
            reset();
            assert!(enabled(), "reset must not flip the tier");
            let s = snapshot();
            assert_eq!(s.counter("runs_total"), 0);
            assert!(s.hists.is_empty() && s.series.is_empty() && s.gauges.is_empty());
            // A fresh run starts counting from zero, not from stale state.
            counter_add("runs_total", 1);
            assert_eq!(snapshot().counter("runs_total"), 1);
        });
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        assert_eq!(
            labeled("m", &[("path", "a\\b\"c\nd")]),
            "m{path=\"a\\\\b\\\"c\\nd\"}"
        );
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(
            labeled("m", &[("a", "1"), ("b", "2")]),
            "m{a=\"1\",b=\"2\"}"
        );
    }

    #[test]
    fn prometheus_counters_and_gauges_render_with_one_type_line_per_base() {
        with_clean_registry(|| {
            counter_add(&labeled("evs_total", &[("cause", "fault")]), 2);
            counter_add(&labeled("evs_total", &[("cause", "suspect")]), 3);
            gauge_set("depth", 4.0);
            let text = render_prometheus();
            assert_eq!(
                text.matches("# TYPE evs_total counter").count(),
                1,
                "{text}"
            );
            assert!(text.contains("evs_total{cause=\"fault\"} 2"), "{text}");
            assert!(text.contains("evs_total{cause=\"suspect\"} 3"), "{text}");
            assert!(text.contains("# TYPE depth gauge\ndepth 4"), "{text}");
        });
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_end_at_inf() {
        with_clean_registry(|| {
            hist_record_ns("lat", 1);
            hist_record_ns("lat", 1);
            hist_record_ns("lat", 1000);
            let text = render_prometheus();
            assert!(text.contains("# TYPE lat histogram"), "{text}");
            // Bucket [1, 2) holds 2 samples; every later occupied bucket
            // must report the running total, and +Inf the full count.
            assert!(text.contains("lat_bucket{le=\"2\"} 2"), "{text}");
            assert!(text.contains("lat_bucket{le=\"1024\"} 3"), "{text}");
            assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"), "{text}");
            assert!(text.contains("lat_sum 1002"), "{text}");
            assert!(text.contains("lat_count 3"), "{text}");
            // Cumulative counts never decrease down the rendered order.
            let mut last = 0u64;
            for line in text.lines().filter(|l| l.starts_with("lat_bucket{le=\"")) {
                if line.contains("+Inf") {
                    continue;
                }
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "non-cumulative: {line}");
                last = v;
            }
        });
    }

    #[test]
    fn prometheus_labeled_histograms_merge_le_into_existing_labels() {
        with_clean_registry(|| {
            hist_merge(&labeled("adv", &[("shard", "0")]), &{
                let mut h = LatencyHistogram::new();
                h.record(SimDuration::ns(2));
                h
            });
            let text = render_prometheus();
            assert!(
                text.contains("adv_bucket{shard=\"0\",le=\"3\"} 1"),
                "{text}"
            );
            assert!(text.contains("adv_sum{shard=\"0\"} 2"), "{text}");
            assert!(text.contains("adv_count{shard=\"0\"} 1"), "{text}");
        });
    }

    #[test]
    fn prometheus_series_render_one_sample_per_point() {
        with_clean_registry(|| {
            series_push("eps", 65536, 10.5);
            series_push("eps", 131072, 11.0);
            let text = render_prometheus();
            assert!(text.contains("# TYPE eps gauge"), "{text}");
            assert!(text.contains("eps{t=\"65536\"} 10.5"), "{text}");
            assert!(text.contains("eps{t=\"131072\"} 11"), "{text}");
        });
    }
}
