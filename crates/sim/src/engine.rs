//! The pending-event set.
//!
//! [`EventQueue`] is a time-ordered priority queue of application-defined
//! events with a strictly deterministic total order: events fire in
//! increasing timestamp order, and events scheduled for the same instant fire
//! in the order they were scheduled (FIFO). Determinism is essential — every
//! experiment in this repository must be exactly reproducible from its seed.
//!
//! The queue owns the simulation clock: popping an event advances `now` to
//! the event's timestamp. Scheduling in the past is a logic error and panics.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: ordered by `(time, seq)` ascending.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Time-ordered pending-event set with a deterministic total order.
///
/// ```
/// use cohfree_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_in(SimDuration::ns(10), "b");
/// q.schedule_in(SimDuration::ns(5), "a");
/// q.schedule_in(SimDuration::ns(10), "c"); // same instant as "b", after it
///
/// assert_eq!(q.pop(), Some((SimTime::ZERO + SimDuration::ns(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::ZERO + SimDuration::ns(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::ZERO + SimDuration::ns(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — the engine never
    /// travels backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} < now={now}",
            at = at,
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` after `delay` from the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedule `event` at the current instant (fires after all events
    /// already scheduled for this instant).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue clock regression");
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Drain and drop all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Run the event loop to completion: pop every event and feed it to
    /// `handler`, which may schedule further events. Returns the number of
    /// events processed by this call.
    ///
    /// The `step_limit` guards against accidental non-termination (a model
    /// bug that endlessly reschedules); exceeding it panics with the current
    /// simulated time to aid debugging.
    pub fn run<F>(&mut self, step_limit: u64, mut handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut Self),
    {
        let mut steps = 0;
        while let Some((at, ev)) = self.pop() {
            handler(at, ev, self);
            steps += 1;
            assert!(
                steps <= step_limit,
                "event loop exceeded step limit {step_limit} at {at}"
            );
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3u32);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime(42), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_and_is_monotone() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), ());
        q.schedule(SimTime(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(5));
        q.pop();
        assert_eq!(q.now(), SimTime(9));
        assert_eq!(q.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn schedule_now_fires_after_existing_same_instant_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, "first");
        q.schedule_now("second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn run_drives_cascading_events() {
        // A chain: each event below 10 schedules its successor 1ns later.
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u64);
        let mut seen = Vec::new();
        let steps = q.run(1_000, |_, ev, q| {
            seen.push(ev);
            if ev < 10 {
                q.schedule_in(SimDuration::ns(1), ev + 1);
            }
        });
        assert_eq!(steps, 11);
        assert_eq!(seen, (0..=10).collect::<Vec<_>>());
        assert_eq!(q.now().as_ns(), 10);
    }

    #[test]
    #[should_panic(expected = "step limit")]
    fn run_panics_past_step_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.run(10, |_, _, q| q.schedule_in(SimDuration::ns(1), ()));
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(7), 1u8);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
