//! The pending-event set.
//!
//! [`EventQueue`] is a time-ordered priority queue of application-defined
//! events with a strictly deterministic total order: events fire in
//! increasing timestamp order, and events scheduled for the same instant fire
//! in the order they were scheduled (FIFO). Determinism is essential — every
//! experiment in this repository must be exactly reproducible from its seed.
//!
//! The queue owns the simulation clock: popping an event advances `now` to
//! the event's timestamp. Scheduling in the past is a logic error and panics.
//!
//! ## Implementation: hybrid calendar queue
//!
//! Simulated delays cluster tightly around the hardware constants (tens of
//! nanoseconds for links, routers and DRAM), so a comparison-based heap pays
//! `O(log n)` sift costs for what is nearly FIFO traffic. Instead the queue
//! keeps three tiers, ordered by distance from the clock:
//!
//! * **front** — every pending event in the *current* bucket (and any event
//!   scheduled at-or-before it), kept sorted by `(time, seq)` in a
//!   `VecDeque`; `pop` is `O(1)` from the head and a same-instant
//!   `schedule_now` is a sorted insert near the tail.
//! * **ring** — `NUM_BUCKETS` FIFO buckets of [`BUCKET_WIDTH`] picoseconds
//!   each covering the near future; scheduling is an `O(1)` push plus an
//!   occupancy-bitmap update.
//! * **overflow** — a `BinaryHeap` for the far future beyond the ring
//!   horizon (timeouts, sampling probes).
//!
//! When `front` drains, *refill* advances the epoch straight to the earliest
//! non-empty bucket (bitmap scan / overflow peek), moves that bucket's
//! events into `front` and sorts them — restoring the exact `(time, seq)`
//! order a global heap would have produced. The total order is therefore
//! identical to the previous `BinaryHeap` implementation, which survives as
//! a `#[cfg(test)]` oracle driven against the calendar queue by a seeded
//! differential test.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Log2 of the bucket width in picoseconds: 2^16 ps ≈ 65.5 ns, on the order
/// of one router/link/DRAM hop, so near-future traffic lands a few buckets
/// ahead.
const BUCKET_WIDTH_BITS: u32 = 16;
/// Number of ring buckets; the ring horizon is `NUM_BUCKETS * 65.5 ns ≈
/// 16.8 us` ahead of the current bucket. Must be a multiple of 64 for the
/// occupancy bitmap.
const NUM_BUCKETS: usize = 256;
/// Occupancy bitmap words.
const BITMAP_WORDS: usize = NUM_BUCKETS / 64;

/// Overflow-heap entry: ordered by `(time, key)` ascending.
struct Entry<E> {
    at: SimTime,
    key: u128,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key) pops first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// Time-ordered pending-event set with a deterministic total order.
///
/// ```
/// use cohfree_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_in(SimDuration::ns(10), "b");
/// q.schedule_in(SimDuration::ns(5), "a");
/// q.schedule_in(SimDuration::ns(10), "c"); // same instant as "b", after it
///
/// assert_eq!(q.pop(), Some((SimTime::ZERO + SimDuration::ns(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::ZERO + SimDuration::ns(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::ZERO + SimDuration::ns(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// All pending events in bucket `epoch` or earlier, sorted ascending by
    /// `(at, key)`. Non-empty whenever `len > 0` (eager refill), so `pop`
    /// and `peek_time` never search the ring.
    front: VecDeque<(SimTime, u128, E)>,
    /// Near-future FIFO buckets; slot `b % NUM_BUCKETS` holds events whose
    /// bucket `b` lies in `(epoch, epoch + NUM_BUCKETS)`.
    ring: Box<[Vec<(SimTime, u128, E)>; NUM_BUCKETS]>,
    /// One bit per ring slot: set iff the slot is non-empty.
    occupied: [u64; BITMAP_WORDS],
    /// Far-future events beyond the ring horizon.
    overflow: BinaryHeap<Entry<E>>,
    /// Absolute index of the bucket `front` currently covers.
    epoch: u64,
    len: usize,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_of(at: SimTime) -> u64 {
    at.0 >> BUCKET_WIDTH_BITS
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            front: VecDeque::new(),
            ring: Box::new(std::array::from_fn(|_| Vec::new())),
            occupied: [0; BITMAP_WORDS],
            overflow: BinaryHeap::new(),
            epoch: 0,
            len: 0,
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at absolute instant `at`.
    ///
    /// Events scheduled this way are keyed by an internal monotone sequence
    /// counter, so same-instant events fire in FIFO order.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — the engine never
    /// travels backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let key = self.seq as u128;
        self.seq += 1;
        self.schedule_keyed(at, key, event);
    }

    /// Schedule `event` at absolute instant `at` under an explicit ordering
    /// `key`: pending events fire in ascending `(at, key)` order.
    ///
    /// This is the primitive the parallel engine builds on — both the
    /// sequential and the windowed-parallel executors derive the *same*
    /// content-determined key for an event, so their pop orders (and hence
    /// all downstream state) coincide exactly. Keys must be unique per
    /// instant; the plain [`EventQueue::schedule`] path reserves the
    /// low range by spending its `u64` sequence counter as the key.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u128, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} < now={now}",
            at = at,
            now = self.now
        );
        self.len += 1;
        if self.len == 1 {
            // Queue was empty: adopt this event's bucket as the epoch and
            // serve it straight from `front`.
            self.epoch = bucket_of(at);
            self.front.push_back((at, key, event));
            return;
        }
        let b = bucket_of(at);
        if b <= self.epoch {
            // Current (or earlier-than-epoch) bucket: sorted insert keeps
            // `front` the exact prefix of the global order. Sequence-keyed
            // events carry the largest key, so ties land after existing
            // same-instant events (FIFO) and the common "latest time" case
            // inserts at the tail in O(1).
            let idx = self.front.partition_point(|&(t, s, _)| (t, s) < (at, key));
            self.front.insert(idx, (at, key, event));
        } else if b - self.epoch < NUM_BUCKETS as u64 {
            let slot = (b % NUM_BUCKETS as u64) as usize;
            self.ring[slot].push((at, key, event));
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.push(Entry { at, key, event });
        }
    }

    /// Schedule `event` after `delay` from the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedule `event` at the current instant (fires after all events
    /// already scheduled for this instant).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.front.front().map(|&(at, _, _)| at)
    }

    /// `(timestamp, ordering key)` of the next pending event, if any. The
    /// parallel window scheduler uses this to find the global minimum across
    /// per-partition queues without disturbing them.
    #[inline]
    pub fn peek_key(&self) -> Option<(SimTime, u128)> {
        self.front.front().map(|&(at, key, _)| (at, key))
    }

    /// Remove and return every pending event as `(at, key, event)` triples
    /// sorted by `(at, key)`, without advancing the clock or the processed
    /// count. Used to re-partition a world's pending set; re-inserting each
    /// triple via [`EventQueue::schedule_keyed`] reproduces the same order.
    pub fn drain_entries(&mut self) -> Vec<(SimTime, u128, E)> {
        let mut out: Vec<(SimTime, u128, E)> = Vec::with_capacity(self.len);
        out.extend(self.front.drain(..));
        let mut remaining = self.occupied;
        for (w, word) in remaining.iter_mut().enumerate() {
            while *word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                out.append(&mut self.ring[slot]);
                *word &= *word - 1;
            }
        }
        self.occupied = [0; BITMAP_WORDS];
        out.extend(
            std::mem::take(&mut self.overflow)
                .into_iter()
                .map(|e| (e.at, e.key, e.event)),
        );
        self.len = 0;
        out.sort_unstable_by_key(|&(at, key, _)| (at, key));
        out
    }

    /// Advance the clock to `at` without popping (no-op if `at` is in the
    /// past). The window scheduler uses this to keep idle partitions' clocks
    /// in step so cross-partition inserts never look like past scheduling.
    #[inline]
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            debug_assert!(self.peek_time().is_none_or(|t| t >= at));
            self.now = at;
        }
    }

    /// Fold `n` externally processed events into the processed count (used
    /// when re-partitioning moves pending work between queues).
    #[inline]
    pub fn add_processed(&mut self, n: u64) {
        self.processed += n;
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(at, _, event)| (at, event))
    }

    /// [`EventQueue::pop`], but also returning the event's ordering key.
    /// Engines that derive scheduling keys from the currently executing
    /// event (same-instant causality chains) need the key in hand.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u128, E)> {
        let (at, key, event) = self.front.pop_front()?;
        debug_assert!(at >= self.now, "event queue clock regression");
        self.now = at;
        self.processed += 1;
        self.len -= 1;
        if self.front.is_empty() && self.len > 0 {
            self.refill();
        }
        Some((at, key, event))
    }

    /// Drain and drop all pending events without advancing the clock.
    /// The sequence counter keeps counting, so ordering guarantees span
    /// a clear.
    pub fn clear(&mut self) {
        self.front.clear();
        let mut remaining = self.occupied;
        for (w, word) in remaining.iter_mut().enumerate() {
            while *word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                self.ring[slot].clear();
                *word &= *word - 1;
            }
        }
        self.occupied = [0; BITMAP_WORDS];
        self.overflow.clear();
        self.len = 0;
    }

    /// Advance `epoch` to the earliest non-empty bucket and move its events
    /// (ring slot plus any overflow stragglers in the same bucket) into
    /// `front`, sorted by `(at, seq)`. Called only when `front` is empty
    /// and events remain.
    #[cold]
    fn refill(&mut self) {
        debug_assert!(self.front.is_empty() && self.len > 0);
        let e_slot = (self.epoch % NUM_BUCKETS as u64) as usize;
        let ring_bucket = self
            .next_occupied_slot((e_slot + 1) % NUM_BUCKETS)
            .map(|slot| {
                let delta = (slot + NUM_BUCKETS - e_slot) % NUM_BUCKETS;
                debug_assert!(delta > 0);
                self.epoch + delta as u64
            });
        let ovf_bucket = self.overflow.peek().map(|e| bucket_of(e.at));
        self.epoch = match (ring_bucket, ovf_bucket) {
            (Some(r), Some(o)) => r.min(o),
            (Some(r), None) => r,
            (None, Some(o)) => o,
            (None, None) => unreachable!("refill with no pending events"),
        };
        let slot = (self.epoch % NUM_BUCKETS as u64) as usize;
        if self.occupied[slot / 64] & (1 << (slot % 64)) != 0 {
            for item in self.ring[slot].drain(..) {
                debug_assert_eq!(bucket_of(item.0), self.epoch);
                self.front.push_back(item);
            }
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        // Overflow may hold events inside the (advanced) ring window; they
        // are picked up bucket-by-bucket as the epoch reaches them.
        while self
            .overflow
            .peek()
            .is_some_and(|e| bucket_of(e.at) == self.epoch)
        {
            let Entry { at, key, event } = self.overflow.pop().expect("peeked");
            self.front.push_back((at, key, event));
        }
        self.front
            .make_contiguous()
            .sort_unstable_by_key(|e| (e.0, e.1));
        debug_assert!(!self.front.is_empty());
    }

    /// First occupied ring slot in circular order starting at `start`, or
    /// `None` if the ring is empty. Word-at-a-time bitmap scan.
    #[inline]
    fn next_occupied_slot(&self, start: usize) -> Option<usize> {
        let (sw, sb) = (start / 64, start % 64);
        let w = self.occupied[sw] & (u64::MAX << sb);
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        for k in 1..BITMAP_WORDS {
            let wi = (sw + k) % BITMAP_WORDS;
            let w = self.occupied[wi];
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        // Wrapped around to the start word: check the bits below `start`.
        let w = self.occupied[sw] & !(u64::MAX << sb);
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        None
    }

    /// Run the event loop to completion: pop every event and feed it to
    /// `handler`, which may schedule further events. Returns the number of
    /// events processed by this call.
    ///
    /// The `step_limit` guards against accidental non-termination (a model
    /// bug that endlessly reschedules); exceeding it panics with the current
    /// simulated time to aid debugging.
    pub fn run<F>(&mut self, step_limit: u64, mut handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut Self),
    {
        let mut steps = 0;
        while let Some((at, ev)) = self.pop() {
            handler(at, ev, self);
            steps += 1;
            assert!(
                steps <= step_limit,
                "event loop exceeded step limit {step_limit} at {at}"
            );
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Width of one calendar bucket in picoseconds.
    const BUCKET_WIDTH_PS: u64 = 1 << BUCKET_WIDTH_BITS;

    /// The previous `BinaryHeap`-only implementation, kept verbatim as the
    /// ordering oracle for the differential test below.
    struct OracleQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        now: SimTime,
        seq: u64,
        processed: u64,
    }

    impl<E> OracleQueue<E> {
        fn new() -> Self {
            OracleQueue {
                heap: BinaryHeap::new(),
                now: SimTime::ZERO,
                seq: 0,
                processed: 0,
            }
        }
        fn schedule(&mut self, at: SimTime, event: E) {
            assert!(at >= self.now);
            let key = self.seq as u128;
            self.seq += 1;
            self.heap.push(Entry { at, key, event });
        }
        fn pop(&mut self) -> Option<(SimTime, E)> {
            let entry = self.heap.pop()?;
            self.now = entry.at;
            self.processed += 1;
            Some((entry.at, entry.event))
        }
        fn clear(&mut self) {
            self.heap.clear();
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3u32);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime(42), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_and_is_monotone() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), ());
        q.schedule(SimTime(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(5));
        q.pop();
        assert_eq!(q.now(), SimTime(9));
        assert_eq!(q.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn schedule_now_fires_after_existing_same_instant_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, "first");
        q.schedule_now("second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn run_drives_cascading_events() {
        // A chain: each event below 10 schedules its successor 1ns later.
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u64);
        let mut seen = Vec::new();
        let steps = q.run(1_000, |_, ev, q| {
            seen.push(ev);
            if ev < 10 {
                q.schedule_in(SimDuration::ns(1), ev + 1);
            }
        });
        assert_eq!(steps, 11);
        assert_eq!(seen, (0..=10).collect::<Vec<_>>());
        assert_eq!(q.now().as_ns(), 10);
    }

    #[test]
    #[should_panic(expected = "step limit")]
    fn run_panics_past_step_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.run(10, |_, _, q| q.schedule_in(SimDuration::ns(1), ()));
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(7), 1u8);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn events_cross_the_ring_horizon_in_order() {
        // One event per bucket-sized stride far past the ring horizon, plus
        // near-future fillers, interleaved: order must still be global.
        let mut q = EventQueue::new();
        let horizon = BUCKET_WIDTH_PS * NUM_BUCKETS as u64;
        q.schedule(SimTime(3 * horizon), 30u64);
        q.schedule(SimTime(7), 1);
        q.schedule(SimTime(horizon + 5), 20);
        q.schedule(SimTime(BUCKET_WIDTH_PS + 1), 2);
        q.schedule(SimTime(3 * horizon), 31); // same far instant, FIFO
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 20, 30, 31]);
        assert_eq!(q.now(), SimTime(3 * horizon));
    }

    #[test]
    fn clear_keeps_clock_and_sequence_counter() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), 0u32);
        q.schedule(SimTime(BUCKET_WIDTH_PS * 500), 1); // overflow tier
        q.schedule(SimTime(BUCKET_WIDTH_PS * 2), 2); // ring tier
        assert_eq!(q.pop(), Some((SimTime(100), 0)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        // The clock does not rewind, and scheduling before it still panics.
        assert_eq!(q.now(), SimTime(100));
        assert_eq!(q.processed(), 1);
        // FIFO ordering spans the clear: the sequence counter keeps
        // counting, so a pre-clear tie-breaker can never outrank a
        // post-clear event at the same instant.
        q.schedule(SimTime(200), 10);
        q.schedule(SimTime(200), 11);
        assert_eq!(q.pop(), Some((SimTime(200), 10)));
        assert_eq!(q.pop(), Some((SimTime(200), 11)));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn clear_then_reschedule_in_an_earlier_bucket_works() {
        // After a far-future-only population the epoch sits far ahead;
        // clearing and scheduling near-past-the-clock must still serve the
        // new event first.
        let mut q = EventQueue::new();
        q.schedule(SimTime(BUCKET_WIDTH_PS * 1000), 1u32);
        q.clear();
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(BUCKET_WIDTH_PS * 1000), 3);
        assert_eq!(q.pop(), Some((SimTime(5), 2)));
        assert_eq!(q.pop(), Some((SimTime(BUCKET_WIDTH_PS * 1000), 3)));
    }

    #[test]
    fn keyed_scheduling_orders_by_key_within_an_instant() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime(50), 7, "c");
        q.schedule_keyed(SimTime(50), 2, "a");
        q.schedule_keyed(SimTime(10), u128::MAX, "first");
        q.schedule_keyed(SimTime(50), 3, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "a", "b", "c"]);
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn drain_entries_round_trips_across_all_tiers() {
        let mut q = EventQueue::new();
        let horizon = BUCKET_WIDTH_PS * NUM_BUCKETS as u64;
        q.schedule_keyed(SimTime(5), 10, 1u32);
        q.schedule_keyed(SimTime(5), 4, 0); // same instant, smaller key
        q.schedule_keyed(SimTime(BUCKET_WIDTH_PS * 3), 20, 2); // ring tier
        q.schedule_keyed(SimTime(horizon * 2), 30, 3); // overflow tier
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        let entries = q.drain_entries();
        assert!(q.is_empty());
        assert_eq!(q.processed(), 1);
        assert_eq!(
            entries.iter().map(|&(_, k, e)| (k, e)).collect::<Vec<_>>(),
            vec![(10, 1), (20, 2), (30, 3)]
        );
        // Reinsertion reproduces the same order, clock intact.
        let mut q2 = EventQueue::new();
        q2.advance_to(SimTime(5));
        for (at, key, e) in entries {
            q2.schedule_keyed(at, key, e);
        }
        q2.add_processed(1);
        let order: Vec<u32> = std::iter::from_fn(|| q2.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q2.processed(), 4);
    }

    /// The differential net from the issue: ~1M seeded random
    /// schedule/pop/clear interleavings against the `BinaryHeap` oracle,
    /// with heavy same-instant collisions and far-future outliers crossing
    /// the bucket horizon. Pop sequences, clock values and processed counts
    /// must match exactly.
    #[test]
    fn differential_against_binary_heap_oracle() {
        let mut rng = Rng::new(0xC0FFEE);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut o: OracleQueue<u64> = OracleQueue::new();
        let mut next_id = 0u64;
        let horizon = BUCKET_WIDTH_PS * NUM_BUCKETS as u64;
        let mut ops = 0u64;
        while ops < 1_000_000 {
            match rng.below(100) {
                // 55%: schedule with a tier-stressing delay distribution.
                0..=54 => {
                    let delay = match rng.below(10) {
                        // Same instant — collides with everything pending now.
                        0..=2 => 0,
                        // Within the current bucket.
                        3..=4 => rng.below(BUCKET_WIDTH_PS),
                        // Near future: a few buckets out.
                        5..=7 => rng.below(BUCKET_WIDTH_PS * 8),
                        // Across the ring — lands near the horizon edge.
                        8 => horizon - BUCKET_WIDTH_PS * 2 + rng.below(BUCKET_WIDTH_PS * 4),
                        // Far-future outlier, deep in the overflow tier.
                        _ => horizon * (1 + rng.below(4)) + rng.below(horizon),
                    };
                    let at = q.now() + SimDuration(delay);
                    q.schedule(at, next_id);
                    o.schedule(at, next_id);
                    next_id += 1;
                }
                // 44%: pop and compare.
                55..=98 => {
                    let got = q.pop();
                    let want = o.pop();
                    assert_eq!(got, want, "pop diverged after {ops} ops");
                    assert_eq!(q.now(), o.now, "clock diverged after {ops} ops");
                }
                // 1%: clear both.
                _ => {
                    q.clear();
                    o.clear();
                    assert!(q.is_empty());
                    assert_eq!(q.peek_time(), None);
                }
            }
            assert_eq!(q.len(), o.heap.len());
            ops += 1;
        }
        // Drain what's left; sequences must stay identical to the end.
        loop {
            let got = q.pop();
            let want = o.pop();
            assert_eq!(got, want, "drain diverged");
            if got.is_none() {
                break;
            }
        }
        assert_eq!(q.processed(), o.processed);
        assert_eq!(q.now(), o.now);
        assert!(q.processed() > 300_000, "pop arm under-exercised");
    }
}
