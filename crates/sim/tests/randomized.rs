//! Seeded randomized tests for the DES engine primitives.
//!
//! The build is fully offline, so instead of an external property-testing
//! framework these tests drive the same invariants with the crate's own
//! deterministic [`Rng`]: every case is reproducible from the loop seed.

use cohfree_sim::queueing::{BoundedFifoServer, Offer};
use cohfree_sim::stats::{LatencyHistogram, OnlineSummary, TimeWeighted};
use cohfree_sim::{EventQueue, FifoServer, Rng, SimDuration, SimTime};

const CASES: u64 = 64;

/// Events pop in nondecreasing time order, FIFO within a timestamp.
#[test]
fn event_queue_total_order() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xE0_0000 + seed);
        let count = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..count).map(|_| rng.below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            assert_eq!(at, SimTime(times[idx]), "seed {seed}");
            if let Some((lt, lidx)) = last {
                assert!(at >= lt, "seed {seed}: time went backwards");
                if at == lt {
                    assert!(idx > lidx, "seed {seed}: same-instant FIFO violated");
                }
            }
            last = Some((at, idx));
        }
        assert_eq!(q.processed(), times.len() as u64);
    }
}

/// FIFO server: departures are strictly ordered by acceptance order, never
/// earlier than arrival + service, and total busy time is the sum of
/// services.
#[test]
fn fifo_server_conservation() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xF1F0 + seed);
        let count = rng.range(1, 100) as usize;
        let mut arrivals: Vec<(SimTime, SimDuration)> = (0..count)
            .map(|_| (SimTime(rng.below(10_000)), SimDuration(rng.range(1, 500))))
            .collect();
        arrivals.sort_by_key(|&(a, _)| a);
        let mut s = FifoServer::new();
        let mut prev_depart = SimTime::ZERO;
        let mut total_service = 0u64;
        for &(arrive, service) in &arrivals {
            let depart = s.accept(arrive, service);
            assert!(
                depart >= arrive + service,
                "seed {seed}: service shortchanged"
            );
            assert!(depart >= prev_depart, "seed {seed}: FIFO order violated");
            prev_depart = depart;
            total_service += service.as_ps();
        }
        // Work conservation: the server is never busy longer than the span
        // from first arrival to last departure.
        let first_arrival = arrivals[0].0;
        assert!(
            SimDuration(total_service) <= prev_depart.since(first_arrival),
            "seed {seed}: busy longer than the schedule allows"
        );
    }
}

/// Bounded server never exceeds its depth and rejections always come with a
/// usable retry hint.
#[test]
fn bounded_server_respects_depth() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xB0D + seed);
        let depth = rng.range(1, 8) as usize;
        let count = rng.range(1, 100) as usize;
        let mut offers: Vec<(u64, u64)> = (0..count)
            .map(|_| (rng.below(1_000), rng.range(1, 200)))
            .collect();
        offers.sort_by_key(|&(a, _)| a);
        let mut s = BoundedFifoServer::new(depth);
        for &(a, d) in &offers {
            let now = SimTime(a);
            match s.offer(now, SimDuration(d)) {
                Offer::Accepted(t) => assert!(t >= now + SimDuration(d), "seed {seed}"),
                Offer::Rejected { retry_at } => assert!(retry_at > now, "seed {seed}"),
            }
            assert!(s.occupancy(now) <= depth, "seed {seed}");
        }
    }
}

/// Lemire sampling stays in range for arbitrary bounds.
#[test]
fn rng_below_in_range() {
    for seed in 0..CASES {
        let mut meta = Rng::new(0x5EED + seed);
        let bound = meta.range(1, u64::MAX);
        let mut rng = Rng::new(meta.next_u64());
        for _ in 0..50 {
            assert!(rng.below(bound) < bound, "seed {seed}, bound {bound}");
        }
    }
}

/// range() respects both endpoints.
#[test]
fn rng_range_in_range() {
    for seed in 0..CASES {
        let mut meta = Rng::new(0x7A46E + seed);
        let lo = meta.below(1_000_000);
        let span = meta.range(1, 1_000_000);
        let mut rng = Rng::new(meta.next_u64());
        for _ in 0..50 {
            let v = rng.range(lo, lo + span);
            assert!(v >= lo && v < lo + span, "seed {seed}");
        }
    }
}

/// Online summary matches a direct two-pass computation.
#[test]
fn summary_matches_two_pass() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x5DD + seed);
        let count = rng.range(2, 200) as usize;
        let xs: Vec<f64> = (0..count)
            .map(|_| (rng.f64() - 0.5) * 2e6) // [-1e6, 1e6)
            .collect();
        let mut s = OnlineSummary::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!(
            (s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()),
            "seed {seed}: mean {} vs {mean}",
            s.mean()
        );
        assert!(
            (s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()),
            "seed {seed}: var {} vs {var}",
            s.variance()
        );
        assert_eq!(s.count(), xs.len() as u64);
    }
}

/// Histogram quantiles are monotone in q and bounded by the max.
#[test]
fn histogram_quantiles_monotone() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x415706 + seed);
        let count = rng.range(1, 200) as usize;
        let ns: Vec<u64> = (0..count).map(|_| rng.range(1, 1_000_000)).collect();
        let mut h = LatencyHistogram::new();
        for &v in &ns {
            h.record(SimDuration::ns(v));
        }
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_ns(q);
            assert!(v >= prev, "seed {seed}: quantiles must be monotone");
            prev = v;
        }
        // Log-bucket quantiles can overshoot the true max by < 2x.
        let max = *ns.iter().max().unwrap() as f64;
        assert!(prev <= max * 2.0 + 2.0, "seed {seed}");
    }
}

/// Time-weighted mean is bounded by the signal's extremes.
#[test]
fn time_weighted_mean_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x714E + seed);
        let count = rng.range(1, 50) as usize;
        let mut w = TimeWeighted::new();
        let mut t = 0u64;
        let mut lo = 0.0f64; // signal starts at 0
        let mut hi = 0.0f64;
        for _ in 0..count {
            t += rng.range(1, 1_000);
            let v = rng.f64() * 100.0;
            w.set(SimTime(t * 1_000), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let horizon = SimTime((t + 10) * 1_000);
        let mean = w.mean(horizon);
        assert!(
            mean >= lo - 1e-9 && mean <= hi + 1e-9,
            "seed {seed}: mean {mean} outside [{lo}, {hi}]"
        );
    }
}
