//! Property-based tests for the DES engine primitives.

use cohfree_sim::queueing::{BoundedFifoServer, Offer};
use cohfree_sim::stats::{LatencyHistogram, OnlineSummary, TimeWeighted};
use cohfree_sim::{EventQueue, FifoServer, Rng, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order, FIFO within a timestamp.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            prop_assert_eq!(at, SimTime(times[idx]));
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt, "time went backwards");
                if at == lt {
                    prop_assert!(idx > lidx, "same-instant FIFO violated");
                }
            }
            last = Some((at, idx));
        }
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// FIFO server: departures are strictly ordered by acceptance order,
    /// never earlier than arrival + service, and total busy time is the sum
    /// of services.
    #[test]
    fn fifo_server_conservation(
        jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let mut s = FifoServer::new();
        let mut arrivals: Vec<(SimTime, SimDuration)> = jobs
            .iter()
            .map(|&(a, d)| (SimTime(a), SimDuration(d)))
            .collect();
        arrivals.sort_by_key(|&(a, _)| a);
        let mut prev_depart = SimTime::ZERO;
        let mut total_service = 0u64;
        for &(arrive, service) in &arrivals {
            let depart = s.accept(arrive, service);
            prop_assert!(depart >= arrive + service, "service shortchanged");
            prop_assert!(depart >= prev_depart, "FIFO order violated");
            prev_depart = depart;
            total_service += service.as_ps();
        }
        // Work conservation: the server is never busy longer than the span
        // from first arrival to last departure.
        let first_arrival = arrivals[0].0;
        prop_assert!(
            SimDuration(total_service) <= prev_depart.since(first_arrival),
            "busy longer than the schedule allows"
        );
    }

    /// Bounded server never exceeds its depth and rejections always come
    /// with a usable retry hint.
    #[test]
    fn bounded_server_respects_depth(
        depth in 1usize..8,
        offers in prop::collection::vec((0u64..1_000, 1u64..200), 1..100)
    ) {
        let mut s = BoundedFifoServer::new(depth);
        let mut sorted = offers.clone();
        sorted.sort_by_key(|&(a, _)| a);
        for &(a, d) in &sorted {
            let now = SimTime(a);
            match s.offer(now, SimDuration(d)) {
                Offer::Accepted(t) => prop_assert!(t >= now + SimDuration(d)),
                Offer::Rejected { retry_at } => prop_assert!(retry_at > now),
            }
            prop_assert!(s.occupancy(now) <= depth);
        }
    }

    /// Lemire sampling stays in range for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed: u64, bound in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// range() respects both endpoints.
    #[test]
    fn rng_range_in_range(seed: u64, lo in 0u64..1_000_000, span in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            let v = rng.range(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }

    /// Online summary matches a direct two-pass computation.
    #[test]
    fn summary_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineSummary::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Histogram quantiles are monotone in q and bounded by the max.
    #[test]
    fn histogram_quantiles_monotone(ns in prop::collection::vec(1u64..1_000_000, 1..200)) {
        let mut h = LatencyHistogram::new();
        for &v in &ns {
            h.record(SimDuration::ns(v));
        }
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_ns(q);
            prop_assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
        // Log-bucket quantiles can overshoot the true max by < 2x.
        let max = *ns.iter().max().unwrap() as f64;
        prop_assert!(prev <= max * 2.0 + 2.0);
    }

    /// Time-weighted mean is bounded by the signal's extremes.
    #[test]
    fn time_weighted_mean_bounded(
        changes in prop::collection::vec((1u64..1_000, 0f64..100.0), 1..50)
    ) {
        let mut w = TimeWeighted::new();
        let mut t = 0u64;
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0; // signal starts at 0
        lo = lo.min(0.0);
        for &(dt, v) in &changes {
            t += dt;
            w.set(SimTime(t * 1_000), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let horizon = SimTime((t + 10) * 1_000);
        let mean = w.mean(horizon);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} outside [{lo}, {hi}]");
    }
}
