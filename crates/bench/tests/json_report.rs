//! Golden-shape test for the `COHFREE_JSON` pipeline: run the real `fig6`
//! binary at smoke scale, parse the document it writes, and check the
//! sections the plotting/regression tooling depends on.

use cohfree_core::Json;

#[test]
fn fig6_binary_emits_parseable_cluster_report() {
    let out = std::env::temp_dir().join(format!("cohfree_fig6_report_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_fig6"))
        .env("COHFREE_SCALE", "smoke")
        .env("COHFREE_JSON", &out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("fig6 binary runs");
    assert!(status.success(), "fig6 exited with {status}");
    let text = std::fs::read_to_string(&out).expect("report file written");
    let _ = std::fs::remove_file(&out);

    let doc = Json::parse(&text).expect("report is valid JSON");
    assert_eq!(
        doc.get("format").and_then(Json::as_str),
        Some("cohfree-report-v1")
    );
    assert_eq!(doc.get("scale").and_then(Json::as_str), Some("smoke"));

    // The figure's table came through with all its rows.
    let tables = doc.get("tables").unwrap().as_array().unwrap();
    let fig6 = tables
        .iter()
        .find(|t| {
            t.get("title")
                .and_then(Json::as_str)
                .is_some_and(|s| s.starts_with("Fig. 6"))
        })
        .expect("fig6 table present");
    let headers: Vec<_> = fig6
        .get("headers")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(headers[0], "hops");
    // Six hop distances plus the local-DRAM reference row.
    assert_eq!(fig6.get("rows").unwrap().as_array().unwrap().len(), 7);

    // One cluster snapshot per hop distance, each with live per-node
    // RMC / fabric / DRAM sections and a queue-depth time series.
    let snaps = doc.get("cluster_snapshots").unwrap().as_array().unwrap();
    assert_eq!(snaps.len(), 6, "one snapshot per hop distance");
    for snap in snaps {
        let name = snap.get("name").and_then(Json::as_str).unwrap();
        assert!(name.starts_with("fig6/hops"), "unexpected name {name}");
        let cluster = snap.get("cluster").unwrap();
        let nodes = cluster.get("nodes").unwrap().as_array().unwrap();
        assert_eq!(nodes.len(), 16);

        // The client (node 1) completed every access; its engine ran.
        let client = nodes[0].get("rmc_client").unwrap();
        assert!(client.get("completions").unwrap().as_u64().unwrap() > 0);
        assert!(
            client
                .get("engine")
                .unwrap()
                .get("utilization")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );

        // Some node served the requests out of its DRAM.
        let served: u64 = nodes
            .iter()
            .map(|n| {
                n.get("rmc_server")
                    .unwrap()
                    .get("requests")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .sum();
        assert!(served > 0, "no server requests in {name}");
        let dram: u64 = nodes
            .iter()
            .map(|n| {
                n.get("dram")
                    .unwrap()
                    .get("accesses")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .sum();
        assert!(dram >= served, "DRAM accesses missing in {name}");

        // Fabric moved messages over concrete links, losslessly.
        let fabric = cluster.get("fabric").unwrap();
        assert!(fabric.get("delivered").unwrap().as_u64().unwrap() > 0);
        assert_eq!(fabric.get("dropped").unwrap().as_u64(), Some(0));
        assert!(!fabric.get("links").unwrap().as_array().unwrap().is_empty());

        // The sampling probe recorded a time series while the run drained.
        let samples = cluster.get("samples").unwrap();
        let series = samples.get("series").unwrap().as_array().unwrap();
        assert!(!series.is_empty(), "empty time series in {name}");
        let point = &series[0];
        assert_eq!(
            point
                .get("client_in_flight")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            16
        );
        assert!(point.get("events_queued").unwrap().as_u64().is_some());
    }
}

/// Golden-shape test for the EXT-SERVING report: run the real `serving`
/// binary at smoke scale and check the table, per-tenant accounting, the
/// SLO blocks and the crash snapshot the study promises.
#[test]
fn serving_binary_emits_slo_report() {
    let out = std::env::temp_dir().join(format!(
        "cohfree_serving_report_{}.json",
        std::process::id()
    ));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_serving"))
        .env("COHFREE_SCALE", "smoke")
        .env("COHFREE_JSON", &out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("serving binary runs");
    assert!(status.success(), "serving exited with {status}");
    let text = std::fs::read_to_string(&out).expect("report file written");
    let _ = std::fs::remove_file(&out);

    let doc = Json::parse(&text).expect("report is valid JSON");
    assert_eq!(
        doc.get("format").and_then(Json::as_str),
        Some("cohfree-report-v1")
    );

    // The study table: 2 cells × (2 tenants + a cluster-total row), and
    // the per-tenant counters sum to the cluster row in every cell.
    let tables = doc.get("tables").unwrap().as_array().unwrap();
    let serving = tables
        .iter()
        .find(|t| {
            t.get("title")
                .and_then(Json::as_str)
                .is_some_and(|s| s.starts_with("EXT-SERVING"))
        })
        .expect("EXT-SERVING table present");
    let headers: Vec<_> = serving
        .get("headers")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(
        headers,
        [
            "cell",
            "tenant",
            "generated",
            "completed",
            "shed",
            "failed",
            "p50_us",
            "p99_us",
            "p999_us",
            "availability"
        ]
    );
    let rows = serving.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 6, "2 cells x (kv + scan + cluster)");
    for cell in ["nofault", "crash"] {
        let cells: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| {
                r.as_array()
                    .unwrap()
                    .iter()
                    .filter_map(Json::as_str)
                    .collect::<Vec<_>>()
            })
            .filter(|r| r[0] == cell)
            .collect();
        assert_eq!(cells.len(), 3, "{cell}: kv, scan, cluster rows");
        let cluster = cells.iter().find(|r| r[1] == "cluster").unwrap();
        // generated / completed / shed / failed columns sum per tenant.
        for col in 2..=5 {
            let total: u64 = cells
                .iter()
                .filter(|r| r[1] != "cluster")
                .map(|r| r[col].parse::<u64>().unwrap())
                .sum();
            assert_eq!(
                total,
                cluster[col].parse::<u64>().unwrap(),
                "{cell}: column {} must sum to the cluster row",
                headers[col]
            );
        }
        // Conservation holds row by row.
        for r in &cells {
            let (g, c, s, f) = (
                r[2].parse::<u64>().unwrap(),
                r[3].parse::<u64>().unwrap(),
                r[4].parse::<u64>().unwrap(),
                r[5].parse::<u64>().unwrap(),
            );
            assert_eq!(c + s + f, g, "{cell}/{}: conservation", r[1]);
            assert!(r[9].parse::<f64>().unwrap() > 0.0);
        }
    }

    // Both SLO blocks landed in the metrics section, with populated
    // phase quantiles and an availability fraction.
    let slos = doc
        .get("metrics")
        .and_then(|m| m.get("slos"))
        .and_then(Json::as_array)
        .expect("metrics.slos present");
    for name in ["ext_serving/nofault", "ext_serving/crash"] {
        let block = slos
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("{name} SLO block missing"));
        let slo = block.get("slo").unwrap();
        let phases = slo.get("phases").unwrap().as_array().unwrap();
        assert!(!phases.is_empty(), "{name}: no phase quantiles");
        for p in phases {
            assert!(p.get("p999_ns").unwrap().as_f64().unwrap() >= 0.0);
        }
        let avail = slo.get("availability").unwrap();
        let frac = avail.get("fraction").unwrap().as_f64().unwrap();
        assert!(frac > 0.0 && frac <= 1.0, "{name}: availability {frac}");
    }

    // The crash cell recorded its cluster snapshot, fault log included.
    let snaps = doc.get("cluster_snapshots").unwrap().as_array().unwrap();
    assert!(snaps
        .iter()
        .any(|s| s.get("name").and_then(Json::as_str) == Some("ext_serving/crash")));
}
