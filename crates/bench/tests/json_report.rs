//! Golden-shape test for the `COHFREE_JSON` pipeline: run the real `fig6`
//! binary at smoke scale, parse the document it writes, and check the
//! sections the plotting/regression tooling depends on.

use cohfree_core::Json;

#[test]
fn fig6_binary_emits_parseable_cluster_report() {
    let out = std::env::temp_dir().join(format!("cohfree_fig6_report_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_fig6"))
        .env("COHFREE_SCALE", "smoke")
        .env("COHFREE_JSON", &out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("fig6 binary runs");
    assert!(status.success(), "fig6 exited with {status}");
    let text = std::fs::read_to_string(&out).expect("report file written");
    let _ = std::fs::remove_file(&out);

    let doc = Json::parse(&text).expect("report is valid JSON");
    assert_eq!(
        doc.get("format").and_then(Json::as_str),
        Some("cohfree-report-v1")
    );
    assert_eq!(doc.get("scale").and_then(Json::as_str), Some("smoke"));

    // The figure's table came through with all its rows.
    let tables = doc.get("tables").unwrap().as_array().unwrap();
    let fig6 = tables
        .iter()
        .find(|t| {
            t.get("title")
                .and_then(Json::as_str)
                .is_some_and(|s| s.starts_with("Fig. 6"))
        })
        .expect("fig6 table present");
    let headers: Vec<_> = fig6
        .get("headers")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(headers[0], "hops");
    // Six hop distances plus the local-DRAM reference row.
    assert_eq!(fig6.get("rows").unwrap().as_array().unwrap().len(), 7);

    // One cluster snapshot per hop distance, each with live per-node
    // RMC / fabric / DRAM sections and a queue-depth time series.
    let snaps = doc.get("cluster_snapshots").unwrap().as_array().unwrap();
    assert_eq!(snaps.len(), 6, "one snapshot per hop distance");
    for snap in snaps {
        let name = snap.get("name").and_then(Json::as_str).unwrap();
        assert!(name.starts_with("fig6/hops"), "unexpected name {name}");
        let cluster = snap.get("cluster").unwrap();
        let nodes = cluster.get("nodes").unwrap().as_array().unwrap();
        assert_eq!(nodes.len(), 16);

        // The client (node 1) completed every access; its engine ran.
        let client = nodes[0].get("rmc_client").unwrap();
        assert!(client.get("completions").unwrap().as_u64().unwrap() > 0);
        assert!(
            client
                .get("engine")
                .unwrap()
                .get("utilization")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );

        // Some node served the requests out of its DRAM.
        let served: u64 = nodes
            .iter()
            .map(|n| {
                n.get("rmc_server")
                    .unwrap()
                    .get("requests")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .sum();
        assert!(served > 0, "no server requests in {name}");
        let dram: u64 = nodes
            .iter()
            .map(|n| {
                n.get("dram")
                    .unwrap()
                    .get("accesses")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .sum();
        assert!(dram >= served, "DRAM accesses missing in {name}");

        // Fabric moved messages over concrete links, losslessly.
        let fabric = cluster.get("fabric").unwrap();
        assert!(fabric.get("delivered").unwrap().as_u64().unwrap() > 0);
        assert_eq!(fabric.get("dropped").unwrap().as_u64(), Some(0));
        assert!(!fabric.get("links").unwrap().as_array().unwrap().is_empty());

        // The sampling probe recorded a time series while the run drained.
        let samples = cluster.get("samples").unwrap();
        let series = samples.get("series").unwrap().as_array().unwrap();
        assert!(!series.is_empty(), "empty time series in {name}");
        let point = &series[0];
        assert_eq!(
            point
                .get("client_in_flight")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            16
        );
        assert!(point.get("events_queued").unwrap().as_u64().is_some());
    }
}
