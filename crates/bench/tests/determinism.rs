//! End-to-end determinism: the entire reproduction, run twice in one
//! process, must produce byte-identical report documents.
//!
//! This is the safety net under the simulator fast path: the calendar event
//! queue, the seed-free hash maps, the parallel sweep scheduling and the
//! recycled message-path buffers are all allowed *only* because no result
//! may depend on allocation addresses, thread interleaving or map iteration
//! order. Any such dependence shows up here as a byte diff.

use cohfree_bench::{experiments, report, Scale};

#[test]
fn full_suite_is_byte_identical_across_reruns() {
    // The Aggregate-tracing overhead check reports a host wall-clock ratio —
    // the one genuinely non-reproducible number. Disable it so the byte
    // comparison covers every simulated result.
    std::env::set_var("COHFREE_NO_WALLCLOCK", "1");
    let run_once = || {
        report::reset();
        experiments::run_all(Scale::Smoke);
        let mut doc = report::document().to_string();
        doc.push('\n');
        doc
    };
    let first = run_once();
    let second = run_once();
    assert!(
        first.len() > 10_000,
        "suspiciously small report ({} bytes): did the suite run?",
        first.len()
    );
    if first != second {
        let at = first
            .bytes()
            .zip(second.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(first.len().min(second.len()));
        let lo = at.saturating_sub(120);
        panic!(
            "report documents differ at byte {at}:\n first: ...{}\nsecond: ...{}",
            &first[lo..(at + 120).min(first.len())],
            &second[lo..(at + 120).min(second.len())],
        );
    }
}
