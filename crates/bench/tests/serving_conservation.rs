//! Request-conservation oracle for the open-loop serving generator under
//! chaos-harness fault plans: every generated request ends exactly one of
//! completed / shed / failed — for every tenant, under a crash storm, on
//! both engines — and the engines agree byte for byte.

use cohfree_bench::chaos::{self, Scenario};
use cohfree_core::{
    ClusterConfig, ManagerConfig, NodeId, SimDuration, SimTime, TraceConfig, World,
};
use cohfree_workloads::serving::{self, ArrivalSpec, RequestMix, Tenant, TenantSpec};

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

/// Two serving tenants (zipf point-KV on node 1, columnar scan on node 2)
/// under a seeded crash-storm plan with the recovery manager live.
fn build(seed: u64, parallel: usize) -> (World, Vec<Tenant>) {
    let mut cfg = ClusterConfig::prototype();
    cfg.faults = chaos::scenario_plan(&cfg, Scenario::CrashStorm, seed);
    cfg.manager = ManagerConfig::enabled();
    cfg.trace = TraceConfig::aggregate();
    let mut w = World::new(cfg);
    w.enable_sampling(SimDuration::us(10));
    let tenants = serving::install(
        &mut w,
        &[
            TenantSpec {
                name: "kv".into(),
                client: n(1),
                donors: vec![n(3), n(4)],
                frames_per_donor: 96,
                lanes: 3,
                requests: 900,
                mix: RequestMix::PointKv {
                    zipf_s: 0.9,
                    value_bytes: 64,
                },
                arrivals: ArrivalSpec {
                    users: 500_000,
                    rate_per_user_hz: 4.0,
                    diurnal: None,
                    seed: seed ^ 0xA11A,
                },
                write_fraction: 0.1,
                think: SimDuration::ns(5),
                start: SimTime::ZERO,
            },
            TenantSpec {
                name: "scan".into(),
                client: n(2),
                donors: vec![n(5)],
                frames_per_donor: 96,
                lanes: 1,
                requests: 250,
                mix: RequestMix::ColumnarScan { chunk_bytes: 4096 },
                arrivals: ArrivalSpec {
                    users: 125_000,
                    rate_per_user_hz: 4.0,
                    diurnal: None,
                    seed: seed ^ 0xB22B,
                },
                write_fraction: 0.0,
                think: SimDuration::ns(20),
                start: SimTime::ZERO,
            },
        ],
    );
    w.set_parallel(parallel);
    w.run();
    (w, tenants)
}

#[test]
fn serving_requests_conserved_under_crash_storm_seq_and_parallel() {
    for seed in [0xDEAD_0001u64, 0xDEAD_0002, 0xDEAD_0003] {
        let (w, tenants) = build(seed, 1);
        let violations = chaos::check_oracles(&w);
        assert!(
            violations.is_empty(),
            "seed {seed:#x}: oracle violations: {violations:?}"
        );
        for t in &tenants {
            assert!(
                t.conserved(&w),
                "seed {seed:#x}, tenant {}: {} completed + {} shed + {} failed != {} generated",
                t.name,
                t.completed(&w),
                t.shed(&w),
                t.failed(&w),
                t.generated
            );
            assert_eq!(t.latency(&w).count(), t.completed(&w));
        }
        let baseline = chaos::fingerprint(&w);

        let (wp, par_tenants) = build(seed, 4);
        let par_violations = chaos::check_oracles(&wp);
        assert!(
            par_violations.is_empty(),
            "seed {seed:#x} (parallel): {par_violations:?}"
        );
        for t in &par_tenants {
            assert!(t.conserved(&wp), "seed {seed:#x} parallel: {}", t.name);
        }
        assert_eq!(
            chaos::fingerprint(&wp),
            baseline,
            "seed {seed:#x}: 4-partition serving run diverged from sequential"
        );
    }
}
