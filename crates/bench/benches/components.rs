//! Microbenches for the simulator's hot paths.
//!
//! The DES engine, fabric routing, cache model and address translation run
//! millions of times per experiment; these benches keep their costs visible
//! so model extensions don't silently blow up experiment wall time.

use cohfree_bench::bencher::bench_function;
use cohfree_core::world::World;
use cohfree_core::{ClusterConfig, MemSpace, MsgKind, NodeId, Rng, SimDuration, SimTime};
use cohfree_sim::{EventQueue, FifoServer};
use cohfree_workloads::BTree;
use std::hint::black_box;

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

fn main() {
    bench_function("sim_event_queue_schedule_pop_1k", || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..1_000u64 {
            q.schedule(SimTime(i * 7 % 999), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc);
    });

    bench_function("sim_fifo_server_accept_1k", || {
        let mut s = FifoServer::new();
        let mut t = SimTime::ZERO;
        for _ in 0..1_000 {
            t = s.accept(t, SimDuration::ns(10));
        }
        black_box(t);
    });

    let mut rng = Rng::new(1);
    bench_function("sim_rng_next_u64_1k", || {
        let mut acc = 0u64;
        for _ in 0..1_000 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        black_box(acc);
    });

    let topo = cohfree_core::Topology::prototype();
    bench_function("fabric_mesh_route_all_pairs", || {
        let mut hops = 0u32;
        for a in 1..=16 {
            for z in 1..=16 {
                if a != z {
                    hops += topo.hops(n(a), n(z));
                }
            }
        }
        black_box(hops);
    });

    let mut cache = cohfree_mem::Cache::new(cohfree_mem::CacheConfig::default());
    let mut rng = Rng::new(3);
    bench_function("mem_cache_access_1k", || {
        let mut hits = 0u32;
        for _ in 0..1_000 {
            if matches!(
                cache.access(rng.below(64 << 20), false),
                cohfree_mem::CacheOutcome::Hit
            ) {
                hits += 1;
            }
        }
        black_box(hits);
    });

    let mut store = cohfree_mem::SparseStore::new();
    let mut rng = Rng::new(4);
    bench_function("mem_sparse_store_rw_1k", || {
        for _ in 0..1_000 {
            let a = rng.below(64 << 20);
            store.write_u64(a, a);
            black_box(store.read_u64(a));
        }
    });

    let mut w = World::new(ClusterConfig::prototype());
    let resv = w.reserve_remote(n(1), 4_096, Some(n(2)));
    let mut t = SimTime::ZERO;
    let mut addr = resv.prefixed_base;
    bench_function("world_blocking_remote_read", || {
        t = w.blocking_transaction(t, n(1), n(2), MsgKind::ReadReq { bytes: 64 }, addr);
        addr += 64;
        if addr >= resv.prefixed_base + resv.frames * 4096 {
            addr = resv.prefixed_base;
        }
        black_box(t);
    });

    let mut m = cohfree_core::LocalMachine::new(ClusterConfig::prototype(), 8 << 30);
    let keys: Vec<u64> = (0..100_000u64).map(|i| i * 3).collect();
    let tree = BTree::bulk_load(&mut m, &keys, 167);
    let mut rng = Rng::new(5);
    bench_function("btree_search_local_100k", || {
        let k = keys[rng.below(keys.len() as u64) as usize];
        black_box(tree.search(&mut m, k).found);
    });

    let mut m = cohfree_core::SwapSpace::remote(
        ClusterConfig::prototype(),
        n(1),
        cohfree_core::backend::SwapConfig {
            cache_pages: 16,
            ..Default::default()
        },
    );
    let va = m.alloc(256 * 4096);
    for p in 0..256u64 {
        m.write_u64(va + p * 4096, p);
    }
    let mut p = 0u64;
    bench_function("swap_major_fault_path", || {
        p = (p + 17) % 256; // always out of the 16-page resident set
        black_box(m.read_u64(va + p * 4096));
    });
}
