//! Criterion benches over every figure's code path (smoke scale).
//!
//! `cargo bench` exercises the same experiment functions the `fig*` and
//! `abl_*` binaries run at larger scale, so regressions in any figure's
//! pipeline show up as timing changes here. One benchmark per paper figure
//! plus the analytic validation and key ablations.

use cohfree_bench::experiments as ex;
use cohfree_bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_latency_vs_hops", |b| {
        b.iter(|| black_box(ex::fig6::run(Scale::Smoke)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_random_benchmark", |b| {
        b.iter(|| black_box(ex::fig7::run(Scale::Smoke)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_server_congestion", |b| {
        b.iter(|| black_box(ex::fig8::run(Scale::Smoke)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let sz = ex::fig9::Sizing {
        keys: 20_000,
        searches: 100,
        cache_pages: 30,
    };
    c.bench_function("fig9_btree_fanout_point", |b| {
        b.iter(|| black_box(ex::fig9::run_fanout(sz, 168, 1)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_scalability_point", |b| {
        b.iter(|| black_box(ex::fig10::run_point(Scale::Smoke, 30_000)))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_parsec_suite", |b| {
        b.iter(|| black_box(ex::fig11::run(Scale::Smoke)))
    });
}

fn bench_analytic(c: &mut Criterion) {
    c.bench_function("analytic_validation_point", |b| {
        b.iter(|| black_box(ex::analytic::run_point(Scale::Smoke, 16)))
    });
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("abl_prefetch", |b| {
        b.iter(|| black_box(ex::ablations::prefetch(Scale::Smoke)))
    });
    c.bench_function("abl_topology", |b| {
        b.iter(|| black_box(ex::ablations::topology(Scale::Smoke)))
    });
    c.bench_function("abl_reliability", |b| {
        b.iter(|| black_box(ex::ablations::reliability(Scale::Smoke)))
    });
}

fn bench_extensions(c: &mut Criterion) {
    c.bench_function("ext_db_queries", |b| {
        b.iter(|| black_box(ex::ext_db::run(Scale::Smoke)))
    });
    c.bench_function("ext_parallel_readonly", |b| {
        b.iter(|| black_box(ex::ext_parallel::run(Scale::Smoke)))
    });
    c.bench_function("ext_tenants_scaling", |b| {
        b.iter(|| black_box(ex::ext_tenants::run(Scale::Smoke)))
    });
    c.bench_function("ext_coherent_baseline", |b| {
        b.iter(|| black_box(ex::ext_coherent::run(Scale::Smoke)))
    });
    c.bench_function("ext_balloon_provisioning", |b| {
        b.iter(|| black_box(ex::ext_balloon::run(Scale::Smoke)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6, bench_fig7, bench_fig8, bench_fig9, bench_fig10,
              bench_fig11, bench_analytic, bench_ablations, bench_extensions
}
criterion_main!(figures);
