//! Benches over every figure's code path (smoke scale).
//!
//! `cargo bench` exercises the same experiment functions the `fig*` and
//! `abl_*` binaries run at larger scale, so regressions in any figure's
//! pipeline show up as timing changes here. One benchmark per paper figure
//! plus the analytic validation and key ablations.

use cohfree_bench::bencher::bench_function;
use cohfree_bench::experiments as ex;
use cohfree_bench::Scale;
use std::hint::black_box;

fn main() {
    bench_function("fig6_latency_vs_hops", || {
        black_box(ex::fig6::run(Scale::Smoke));
    });
    bench_function("fig7_random_benchmark", || {
        black_box(ex::fig7::run(Scale::Smoke));
    });
    bench_function("fig8_server_congestion", || {
        black_box(ex::fig8::run(Scale::Smoke));
    });
    let sz = ex::fig9::Sizing {
        keys: 20_000,
        searches: 100,
        cache_pages: 30,
    };
    bench_function("fig9_btree_fanout_point", || {
        black_box(ex::fig9::run_fanout(sz, 168, 1));
    });
    bench_function("fig10_scalability_point", || {
        black_box(ex::fig10::run_point(Scale::Smoke, 30_000));
    });
    bench_function("fig11_parsec_suite", || {
        black_box(ex::fig11::run(Scale::Smoke));
    });
    bench_function("analytic_validation_point", || {
        black_box(ex::analytic::run_point(Scale::Smoke, 16));
    });
    bench_function("abl_prefetch", || {
        black_box(ex::ablations::prefetch(Scale::Smoke));
    });
    bench_function("abl_topology", || {
        black_box(ex::ablations::topology(Scale::Smoke));
    });
    bench_function("abl_reliability", || {
        black_box(ex::ablations::reliability(Scale::Smoke));
    });
    bench_function("ext_db_queries", || {
        black_box(ex::ext_db::run(Scale::Smoke));
    });
    bench_function("ext_parallel_readonly", || {
        black_box(ex::ext_parallel::run(Scale::Smoke));
    });
    bench_function("ext_tenants_scaling", || {
        black_box(ex::ext_tenants::run(Scale::Smoke));
    });
    bench_function("ext_coherent_baseline", || {
        black_box(ex::ext_coherent::run(Scale::Smoke));
    });
    bench_function("ext_balloon_provisioning", || {
        black_box(ex::ext_balloon::run(Scale::Smoke));
    });
}
