//! Chaos campaign harness — survive continuous fault churn.
//!
//! Generates seeded, randomized [`FaultPlan`]s (crash/restart storms,
//! link partitions, rolling server stalls, mixes of all three), runs
//! thread-driven worlds under them — with and without the online recovery
//! manager — and checks **invariant oracles** after every run:
//!
//! 1. *Accounting*: every access of every thread either completed, failed
//!    or (open-loop serving threads only) was shed; no transaction is lost
//!    or double-completed; nothing is left in flight after the run drains.
//! 2. *Frame conservation*: for every node untouched by faults and never
//!    suspected, directory free frames plus frames hosted for other nodes
//!    equal its pool size exactly; faulted nodes may only lose capacity,
//!    never mint it.
//! 3. *Snapshot self-consistency*: the JSON document agrees with the
//!    programmatic counters and its time series is monotonic.
//! 4. *Engine invariance*: the sequential and windowed-parallel engines
//!    produce byte-identical observable output under full fault churn.
//!
//! The `chaos` bin sweeps this over many seeds (`COHFREE_CHAOS_SEED`,
//! `COHFREE_CHAOS_RUNS`); the EXT-CHAOS experiment measures what the
//! recovery manager buys (availability, MTTR, shed rate) on the same
//! generator.

use cohfree_core::{
    ClusterConfig, FaultEvent, FaultPlan, ManagerConfig, NodeId, Rng, SimDuration, SimTime,
    ThreadSpec, World,
};

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::us(us)
}

/// A chaos scenario family: what kind of disaster the generator scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Several node crashes, some followed by restarts.
    CrashStorm,
    /// Correlated link outages cutting one node off the fabric, later
    /// partially repaired.
    Partition,
    /// Staggered server-RMC stalls rolling across the cluster.
    RollingStalls,
    /// All of the above at once, over a lossy fabric.
    Mixed,
}

impl Scenario {
    /// Every scenario family, in campaign order.
    pub const ALL: [Scenario; 4] = [
        Scenario::CrashStorm,
        Scenario::Partition,
        Scenario::RollingStalls,
        Scenario::Mixed,
    ];

    /// Stable name (used in reports and failure messages).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::CrashStorm => "crash_storm",
            Scenario::Partition => "partition",
            Scenario::RollingStalls => "rolling_stalls",
            Scenario::Mixed => "mixed",
        }
    }
}

/// The physical links incident to `node` on the prototype mesh.
pub fn links_of(cfg: &ClusterConfig, node: NodeId) -> Vec<(NodeId, NodeId)> {
    cfg.topology
        .links()
        .into_iter()
        .filter(|&(a, b)| a == node || b == node)
        .collect()
}

/// Generate the seeded fault plan for one `(scenario, seed)` cell. All
/// event times land inside the first ~300 us so faults strike while the
/// workload is hot; every named node and link exists (the plans are also a
/// standing regression for [`World::try_new`] validation).
pub fn scenario_plan(cfg: &ClusterConfig, scenario: Scenario, seed: u64) -> FaultPlan {
    let nodes = cfg.topology.num_nodes() as u64;
    let mut rng = Rng::new(seed ^ 0xC4A0_5EED);
    let mut plan = FaultPlan::new();
    match scenario {
        Scenario::CrashStorm => {
            let crashes = rng.range(2, 5);
            let mut victims: Vec<u16> = Vec::new();
            for _ in 0..crashes {
                let v = rng.range(2, nodes + 1) as u16;
                if victims.contains(&v) {
                    continue;
                }
                victims.push(v);
                let at = rng.range(20, 250);
                plan.push(FaultEvent::NodeCrash {
                    at: t(at),
                    node: n(v),
                });
                if rng.chance(0.5) {
                    plan.push(FaultEvent::NodeRestart {
                        at: t(at + rng.range(80, 300)),
                        node: n(v),
                    });
                }
            }
        }
        Scenario::Partition => {
            // Cut every link of one victim node (a correlated outage that
            // isolates it), then repair a random subset later.
            let victim = n(rng.range(2, nodes + 1) as u16);
            let cut_at = rng.range(20, 150);
            let heal_at = cut_at + rng.range(100, 300);
            for (a, b) in links_of(cfg, victim) {
                plan.push(FaultEvent::LinkDown {
                    at: t(cut_at),
                    a,
                    b,
                });
                if rng.chance(0.6) {
                    plan.push(FaultEvent::LinkUp {
                        at: t(heal_at),
                        a,
                        b,
                    });
                }
            }
        }
        Scenario::RollingStalls => {
            let stalls = rng.range(3, 6);
            for k in 0..stalls {
                plan.push(FaultEvent::ServerStall {
                    at: t(15 + k * rng.range(25, 60)),
                    node: n(rng.range(1, nodes + 1) as u16),
                    duration: SimDuration::us(rng.range(20, 80)),
                });
            }
        }
        Scenario::Mixed => {
            let victim = rng.range(2, nodes + 1) as u16;
            let at = rng.range(30, 150);
            plan.push(FaultEvent::NodeCrash {
                at: t(at),
                node: n(victim),
            });
            if rng.chance(0.5) {
                plan.push(FaultEvent::NodeRestart {
                    at: t(at + rng.range(100, 250)),
                    node: n(victim),
                });
            }
            let flap = links_of(cfg, n(rng.range(1, nodes + 1) as u16));
            if let Some(&(a, b)) = flap.first() {
                let down = rng.range(10, 120);
                plan.push(FaultEvent::LinkDown { at: t(down), a, b });
                plan.push(FaultEvent::LinkUp {
                    at: t(down + rng.range(40, 200)),
                    a,
                    b,
                });
            }
            for k in 0..rng.range(1, 3) {
                plan.push(FaultEvent::ServerStall {
                    at: t(20 + k * 70),
                    node: n(rng.range(1, nodes + 1) as u16),
                    duration: SimDuration::us(rng.range(20, 60)),
                });
            }
        }
    }
    plan
}

/// The cluster nodes a plan names (crash victims, stalled servers, link
/// endpoints) — the set the frame-conservation oracle exempts from its
/// equality check.
fn named_nodes(plan: &FaultPlan) -> Vec<NodeId> {
    let mut out = Vec::new();
    for ev in plan.events() {
        match ev {
            FaultEvent::NodeCrash { node, .. }
            | FaultEvent::NodeRestart { node, .. }
            | FaultEvent::ServerStall { node, .. } => out.push(node),
            FaultEvent::LinkDown { a, b, .. } | FaultEvent::LinkUp { a, b, .. } => {
                out.push(a);
                out.push(b);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// One chaos cell: scenario, seed, manager on/off.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Scenario family.
    pub scenario: Scenario,
    /// Generator seed.
    pub seed: u64,
    /// Whether the online recovery manager runs.
    pub manager: bool,
}

/// Build the world for a chaos cell (faults, threads, sampling) without
/// running it.
pub fn build_world(spec: ChaosSpec, accesses: u64) -> World {
    let mut cfg = ClusterConfig::prototype();
    cfg.faults = scenario_plan(&cfg, spec.scenario, spec.seed);
    if spec.scenario == Scenario::Mixed {
        cfg.fabric.loss_rate = 1e-3;
    }
    if spec.manager {
        cfg.manager = ManagerConfig::enabled();
    }
    let mut w = World::new(cfg);
    w.enable_sampling(SimDuration::us(5));
    let mut rng = Rng::new(spec.seed ^ 0x7117_EAD5);
    let threads = rng.range(3, 7);
    for k in 0..threads {
        let node = n(rng.range(1, 17) as u16);
        let donor = loop {
            let d = n(rng.range(1, 17) as u16);
            if d != node {
                break d;
            }
        };
        let resv = w.reserve_remote(node, 256, Some(donor));
        w.spawn_thread(
            ThreadSpec {
                node,
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: accesses / 2 + rng.below(accesses / 2 + 1),
                bytes: 64,
                write_fraction: rng.f64() * 0.5,
                think: SimDuration::ns(5),
                seed: rng.next_u64(),
            },
            SimTime::ZERO,
        );
        let _ = k;
    }
    w
}

/// Every observable byte of a finished chaos world, for seq-vs-parallel
/// comparison: the snapshot document (which embeds the fault log, manager
/// stats and time series) plus per-thread counters and the engine clock.
pub fn fingerprint(w: &World) -> String {
    let mut out = w.snapshot().doc.to_string();
    out.push('\n');
    for id in 0..w.threads_spawned() {
        out.push_str(&format!(
            "t{id}: {} {} {} {} {}\n",
            w.thread_completed(id),
            w.thread_failed(id),
            w.thread_shed(id),
            w.thread_nacks(id),
            w.thread_evacuated_retries(id)
        ));
    }
    out.push_str(&format!(
        "now={} processed={}",
        w.now(),
        w.events_processed()
    ));
    out
}

/// Run the invariant oracles over a drained world. Returns every violation
/// found (empty = all oracles hold).
pub fn check_oracles(w: &World) -> Vec<String> {
    let mut violations = Vec::new();
    let cfg = w.config();
    let nodes = cfg.topology.num_nodes();

    // 1. Accounting: every access resolved, nothing still in flight,
    //    cluster-wide completions match thread completions exactly.
    let mut thread_completed = 0u64;
    for id in 0..w.threads_spawned() {
        let (c, f, s, acc) = (
            w.thread_completed(id),
            w.thread_failed(id),
            w.thread_shed(id),
            w.thread_accesses(id),
        );
        if c + f + s != acc {
            violations.push(format!(
                "thread {id}: completed {c} + failed {f} + shed {s} != accesses {acc}"
            ));
        }
        thread_completed += c;
    }
    if w.pending_count() != 0 {
        violations.push(format!(
            "{} transactions still in flight after drain",
            w.pending_count()
        ));
    }
    let client_completions: u64 = (1..=nodes).map(|i| w.client(n(i)).completions()).sum();
    if client_completions != thread_completed {
        violations.push(format!(
            "client completions {client_completions} != thread completions \
             {thread_completed} (lost or double-completed transactions)"
        ));
    }

    // 2. Frame conservation. `hosted[d]` = frames other nodes' regions say
    //    are homed on d.
    let mut hosted = vec![0u64; nodes as usize + 1];
    for i in 1..=nodes {
        for seg in w.region(n(i)).segments() {
            if seg.home != n(i) {
                hosted[seg.home.get() as usize] += seg.frames;
            }
        }
    }
    let pool = cfg.pool_frames_per_node();
    let exempt = named_nodes(&cfg.faults);
    for i in 1..=nodes {
        // Nodes the plan names break conservation by design: a crashed
        // donor's capacity is zeroed, and a restart resets its pool while
        // pre-crash grants may linger in owners' regions. Suspected nodes
        // likewise had their capacity zeroed by the failure detector.
        if exempt.contains(&n(i)) || w.node_is_suspected(n(i)) {
            continue;
        }
        let free = w.directory().free_frames(n(i));
        let lost = w.lost_frames(n(i));
        let total = free + hosted[i as usize] + lost;
        if total != pool {
            violations.push(format!(
                "node {i} (untouched by faults): free {free} + hosted {h} + lost {lost} \
                 != pool {pool}",
                h = hosted[i as usize]
            ));
        }
    }

    // 3. Snapshot self-consistency.
    let doc = w.snapshot().doc;
    let at_ns = doc.get("at_ns").and_then(|v| v.as_u64());
    if at_ns != Some(w.now().as_ns()) {
        violations.push(format!(
            "snapshot at_ns {at_ns:?} != engine clock {}",
            w.now()
        ));
    }
    let mut snap_completions = 0u64;
    match doc.get("nodes").and_then(|v| v.as_array()) {
        Some(node_docs) if node_docs.len() == nodes as usize => {
            for nd in node_docs {
                snap_completions += nd
                    .get("rmc_client")
                    .and_then(|c| c.get("completions"))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
            }
        }
        _ => violations.push("snapshot nodes array missing or wrong length".to_string()),
    }
    if snap_completions != thread_completed {
        violations.push(format!(
            "snapshot completions {snap_completions} != thread completions {thread_completed}"
        ));
    }
    let series_ts: Vec<u64> = doc
        .get("samples")
        .and_then(|s| s.get("series"))
        .and_then(|s| s.as_array())
        .map(|rows| {
            rows.iter()
                .filter_map(|r| r.get("t_ns").and_then(|v| v.as_u64()))
                .collect()
        })
        .unwrap_or_default();
    if series_ts.windows(2).any(|w| w[0] > w[1]) {
        violations.push("sample time series is not monotonic".to_string());
    }
    if w.manager().is_none() && doc.get("manager").is_some() {
        violations.push("manager stats present with the manager disabled".to_string());
    }

    violations
}

/// Outcome of one chaos cell (both engines).
#[derive(Debug)]
pub struct CellOutcome {
    /// The cell that ran.
    pub spec: ChaosSpec,
    /// Oracle violations (empty = pass), including any engine divergence.
    pub violations: Vec<String>,
    /// Total completed accesses.
    pub completed: u64,
    /// Total failed accesses.
    pub failed: u64,
    /// Total shed deferrals across all clients.
    pub shed_deferrals: u64,
    /// Zone evacuations + migrations.
    pub evacuations: u64,
}

/// Run one chaos cell: sequential engine, oracle checks, then the
/// `parallel`-partition engine byte-compared against it (skipped when
/// `parallel <= 1`).
pub fn run_cell(spec: ChaosSpec, accesses: u64, parallel: usize) -> CellOutcome {
    let mut w = build_world(spec, accesses);
    w.run();
    let mut violations = check_oracles(&w);
    let baseline = fingerprint(&w);
    if parallel > 1 {
        let mut wp = build_world(spec, accesses);
        wp.set_parallel(parallel);
        wp.run();
        if fingerprint(&wp) != baseline {
            violations.push(format!(
                "{}-partition engine diverged from sequential",
                parallel
            ));
        }
    }
    let nodes = w.config().topology.num_nodes();
    CellOutcome {
        spec,
        violations,
        completed: (0..w.threads_spawned())
            .map(|i| w.thread_completed(i))
            .sum(),
        failed: (0..w.threads_spawned()).map(|i| w.thread_failed(i)).sum(),
        shed_deferrals: (1..=nodes).map(|i| w.client(n(i)).shed_deferrals()).sum(),
        evacuations: w.evacuations(),
    }
}

/// Sweep the full campaign: every scenario × manager on/off × `runs`
/// seeds starting at `base_seed`, in parallel across worker threads.
/// Returns every cell outcome (callers decide how to report failures).
pub fn campaign(base_seed: u64, runs: u64, accesses: u64, parallel: usize) -> Vec<CellOutcome> {
    let mut cells = Vec::new();
    for k in 0..runs {
        for scenario in Scenario::ALL {
            for manager in [false, true] {
                cells.push(ChaosSpec {
                    scenario,
                    seed: base_seed.wrapping_add(k),
                    manager,
                });
            }
        }
    }
    crate::parallel_map(cells, |spec| run_cell(spec, accesses, parallel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic_and_valid() {
        let cfg = ClusterConfig::prototype();
        for scenario in Scenario::ALL {
            let a = scenario_plan(&cfg, scenario, 7);
            let b = scenario_plan(&cfg, scenario, 7);
            let evs_a: Vec<String> = a.events().map(|e| format!("{e:?}")).collect();
            let evs_b: Vec<String> = b.events().map(|e| format!("{e:?}")).collect();
            assert_eq!(evs_a, evs_b, "{} plan not deterministic", scenario.name());
            assert!(
                !a.is_empty(),
                "{} plan must schedule faults",
                scenario.name()
            );
            // Every plan must survive World::try_new validation.
            let mut c = cfg;
            c.faults = a;
            assert!(
                World::try_new(c).is_ok(),
                "{} plan names a nonexistent node or link",
                scenario.name()
            );
        }
    }

    #[test]
    fn partition_plans_isolate_the_victim() {
        let cfg = ClusterConfig::prototype();
        let plan = scenario_plan(&cfg, Scenario::Partition, 3);
        let downs = plan
            .events()
            .filter(|e| matches!(e, FaultEvent::LinkDown { .. }))
            .count();
        assert!(downs >= 2, "a mesh node has at least two links to cut");
    }

    #[test]
    fn oracles_hold_on_a_smoke_cell_with_and_without_manager() {
        for manager in [false, true] {
            let out = run_cell(
                ChaosSpec {
                    scenario: Scenario::CrashStorm,
                    seed: 1,
                    manager,
                },
                60,
                4,
            );
            assert!(
                out.violations.is_empty(),
                "oracle violations (manager={manager}): {:?}",
                out.violations
            );
            assert!(out.completed > 0);
        }
    }

    #[test]
    fn oracles_catch_a_cooked_world() {
        // Sanity that the oracles can actually fail: an undrained world
        // (threads still running) violates accounting.
        let w = build_world(
            ChaosSpec {
                scenario: Scenario::RollingStalls,
                seed: 2,
                manager: false,
            },
            40,
        );
        // Not run: threads have completed nothing.
        let v = check_oracles(&w);
        assert!(
            v.iter().any(|m| m.contains("!= accesses")),
            "undrained world must trip the accounting oracle: {v:?}"
        );
    }
}
