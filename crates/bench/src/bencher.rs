//! Minimal self-contained micro-benchmark timer.
//!
//! The container build is fully offline, so the harness avoids external
//! benchmarking crates. Each benchmark is a closure timed with
//! [`std::time::Instant`] using *batched* sampling: one `Instant` pair
//! brackets a whole batch of iterations, so the ~20–40 ns timer-call
//! overhead is amortised across the batch instead of being charged to
//! every iteration (which would swamp sub-100 ns closures). The reported
//! figure is the median of the per-batch samples — robust against the
//! occasional scheduler hiccup that a mean would absorb.

use std::time::{Duration, Instant};

/// Target wall time for one sample batch.
const BATCH_TARGET: Duration = Duration::from_millis(2);
/// Target number of sample batches per benchmark.
const SAMPLES: usize = 25;
/// Total wall-time budget per benchmark.
const TOTAL_BUDGET: Duration = Duration::from_millis(250);
/// Hard cap on iterations per batch (no-op closures would otherwise spin).
const MAX_BATCH: u64 = 4_000_000;

/// Outcome of one benchmark: per-iteration times in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name as passed to [`bench_function`].
    pub name: String,
    /// Median of the per-batch mean iteration times.
    pub median_ns: f64,
    /// Fastest per-batch mean iteration time observed.
    pub best_ns: f64,
    /// Iterations timed per batch.
    pub batch: u64,
    /// Number of sample batches measured.
    pub samples: usize,
}

/// Time `f` with batched sampling and print
/// `name: <median> ns/iter (best <best>, <batch> iters x <samples> samples)`.
///
/// A short warm-up sizes the batch so each sample spans ~2 ms, then up to
/// 25 batches are timed (bounded by a 250 ms total budget). Returns the
/// measurement so programmatic harnesses (the `perf` bin) can record it.
pub fn bench_function<F: FnMut()>(name: &str, f: F) -> BenchResult {
    let r = bench_quiet(name, f);
    println!(
        "{}: {:.1} ns/iter (best {:.1}, {} iters x {} samples)",
        r.name, r.median_ns, r.best_ns, r.batch, r.samples
    );
    r
}

/// [`bench_function`] without the stdout line.
pub fn bench_quiet<F: FnMut()>(name: &str, mut f: F) -> BenchResult {
    // Warm-up and batch sizing: grow the batch until it costs >= ~200 us,
    // then scale it to the 2 ms target. Guards against both sub-ns no-ops
    // (capped) and multi-ms closures (batch of 1).
    let mut batch = 1u64;
    let per_iter_ns = loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let dt = t0.elapsed();
        if dt >= Duration::from_micros(200) || batch >= MAX_BATCH {
            break dt.as_nanos() as f64 / batch as f64;
        }
        batch = (batch * 8).min(MAX_BATCH);
    };
    batch = ((BATCH_TARGET.as_nanos() as f64 / per_iter_ns.max(0.01)) as u64).clamp(1, MAX_BATCH);

    let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES);
    let started = Instant::now();
    while per_iter.len() < SAMPLES {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        per_iter.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        if started.elapsed() >= TOTAL_BUDGET {
            break;
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ns = per_iter[per_iter.len() / 2];
    let best_ns = per_iter[0];
    BenchResult {
        name: name.to_string(),
        median_ns,
        best_ns,
        batch,
        samples: per_iter.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_closure_measures_below_sanity_bound() {
        // A no-op must not be charged the per-call `Instant` overhead
        // (~20-40 ns); batched timing amortises it below this bound even
        // on a loaded shared runner.
        let r = bench_quiet("noop", || {});
        assert!(
            r.median_ns < 15.0,
            "no-op measured at {} ns/iter — timer bias is back",
            r.median_ns
        );
        assert!(
            r.batch > 1_000,
            "no-op batch unexpectedly small: {}",
            r.batch
        );
    }

    #[test]
    fn slow_closure_is_measured_with_small_batches() {
        let r = bench_quiet("sleepy", || std::thread::sleep(Duration::from_millis(2)));
        assert!(r.median_ns >= 1_500_000.0, "{}", r.median_ns);
        assert!(r.batch <= 2, "{}", r.batch);
        assert!(r.samples >= 1);
    }

    #[test]
    fn work_scales_roughly_linearly() {
        // `black_box` on the loop variable keeps release builds from
        // constant-folding the whole sum to a closed form, which made both
        // loops take identical (near-zero) time and the test flaky.
        let mut acc = 0u64;
        let r1 = bench_quiet("sum1k", || {
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
        });
        let r4 = bench_quiet("sum4k", || {
            for i in 0..4_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
        });
        std::hint::black_box(acc);
        // 4x the work should take meaningfully longer per iteration.
        assert!(
            r4.median_ns > 2.0 * r1.median_ns,
            "{} vs {}",
            r1.median_ns,
            r4.median_ns
        );
    }
}
