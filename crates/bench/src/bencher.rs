//! Minimal self-contained micro-benchmark timer.
//!
//! The container build is fully offline, so the harness avoids external
//! benchmarking crates: each benchmark is a closure timed with
//! [`std::time::Instant`] after a short warm-up. Reported numbers are the
//! mean and best per-iteration wall time — coarse, but stable enough to
//! spot order-of-magnitude regressions in the simulator's hot paths.

use std::time::{Duration, Instant};

/// Target wall time to spend measuring one benchmark.
const TARGET: Duration = Duration::from_millis(100);
/// Hard cap on measured iterations (fast closures would otherwise spin).
const MAX_ITERS: u32 = 10_000;

/// Time `f` and print `name: <mean> ns/iter (best <best> ns)`.
///
/// Runs a handful of warm-up iterations, then measures individual
/// iterations until 100 ms of wall time or 10 000 iterations have
/// elapsed, whichever comes first.
pub fn bench_function<F: FnMut()>(name: &str, mut f: F) {
    for _ in 0..3 {
        f();
    }
    let mut best = u128::MAX;
    let mut total = 0u128;
    let mut iters = 0u32;
    let started = Instant::now();
    while started.elapsed() < TARGET && iters < MAX_ITERS {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_nanos();
        best = best.min(dt);
        total += dt;
        iters += 1;
    }
    let mean = total / iters.max(1) as u128;
    println!("{name}: {mean} ns/iter (best {best} ns, {iters} iters)");
}
