//! Extension: quantifying the coherency overhead the paper eliminates.
fn main() {
    cohfree_bench::experiments::ext_coherent::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
