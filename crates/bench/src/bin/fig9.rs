//! Regenerates Figure 9: b-tree search time vs. fanout under remote swap.
fn main() {
    cohfree_bench::experiments::fig9::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
