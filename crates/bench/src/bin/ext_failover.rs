//! Extension: mid-run donor crash — detection, evacuation, MTTR.
fn main() {
    cohfree_bench::experiments::ext_failover::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
