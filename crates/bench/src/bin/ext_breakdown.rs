//! EXT-BREAKDOWN: per-phase latency attribution of remote accesses, plus
//! the Aggregate-tracing overhead check. With `COHFREE_TRACE=<path>` the
//! Full-mode span streams are exported as a Chrome trace for Perfetto.
fn main() {
    let s = cohfree_bench::Scale::from_env();
    cohfree_bench::experiments::ext_breakdown::table(s).print();
    cohfree_bench::experiments::ext_breakdown::overhead_table(s).print();
    cohfree_bench::report::finish();
}
