//! Ablation: single-cache baseline vs. L1+L2 hierarchy refinement.
fn main() {
    cohfree_bench::experiments::ablations::l1_hierarchy(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
