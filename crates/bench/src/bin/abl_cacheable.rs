//! Ablation: write-back-cacheable vs. uncached remote ranges.
fn main() {
    cohfree_bench::experiments::ablations::cacheable(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
