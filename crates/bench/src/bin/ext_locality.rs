//! Extension: trace-driven locality analysis validating Eqs. 1-2 on real kernels.
fn main() {
    cohfree_bench::experiments::ext_locality::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
