//! The performance-regression harness.
//!
//! ```sh
//! # Measure and write the document:
//! COHFREE_JSON=BENCH_PERF.json cargo run --release -p cohfree-bench --bin perf
//! # Measure and gate against the checked-in baseline (CI):
//! cargo run --release -p cohfree-bench --bin perf -- \
//!     --check crates/bench/perf_baseline.json --tolerance 3.0
//! # Gate the parallel engine: fail if big_world_par8 is slower than
//! # big_world_seq (threshold adjustable with --par-min-speedup):
//! cargo run --release -p cohfree-bench --bin perf -- --par-gate
//! ```
//!
//! With `--check`, exits non-zero if any benchmark regressed past the
//! tolerance factor. See `cohfree_bench::perf` for the baseline policy.
//! With `--par-gate`, exits non-zero if the parallel big-world row does not
//! reach `--par-min-speedup` (default 1.0) times the sequential row — a
//! host-relative check that needs no baseline, comparing two rows measured
//! in the same run on the same machine.
//!
//! With `--metrics-overhead`, measures the self-profiling registry's cost
//! on the sequential big-world row (off vs on, same run, same machine) and
//! exits non-zero if enabling it costs more than
//! `--metrics-max-regression` (default 0.03 = 3%) of events/second — the
//! teeth behind the registry's zero-cost-when-off contract.

use cohfree_bench::perf;
use cohfree_core::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 3.0f64;
    let mut par_gate = false;
    let mut par_min_speedup = 1.0f64;
    let mut metrics_gate = false;
    let mut metrics_max_regression = 0.03f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check requires a baseline path");
                    std::process::exit(2);
                }));
            }
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--tolerance requires a factor");
                    std::process::exit(2);
                });
                tolerance = v.parse().unwrap_or_else(|e| {
                    eprintln!("bad tolerance {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            "--par-gate" => par_gate = true,
            "--metrics-overhead" => metrics_gate = true,
            "--metrics-max-regression" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--metrics-max-regression requires a fraction");
                    std::process::exit(2);
                });
                metrics_max_regression = v.parse().unwrap_or_else(|e| {
                    eprintln!("bad regression bound {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            "--par-min-speedup" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--par-min-speedup requires a factor");
                    std::process::exit(2);
                });
                par_min_speedup = v.parse().unwrap_or_else(|e| {
                    eprintln!("bad speedup floor {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (expected --check/--tolerance/--par-gate/--par-min-speedup/\
                     --metrics-overhead/--metrics-max-regression)"
                );
                std::process::exit(2);
            }
        }
    }

    let micro = perf::micro();
    let mac = perf::macro_suite();
    // The macro suite runs whole figures, which record their cluster
    // snapshots into the report collector; drop those so BENCH_PERF.json
    // carries only the perf tables (megabytes of snapshots would drown the
    // numbers the regression gate reads).
    cohfree_bench::report::reset();
    for t in perf::tables(&micro, &mac) {
        t.print();
    }

    if par_gate {
        let speedup = perf::par_speedup(&mac).unwrap_or_else(|| {
            eprintln!("perf: --par-gate needs the big_world_seq/par8 rows");
            std::process::exit(2);
        });
        if speedup < par_min_speedup {
            eprintln!(
                "perf: parallel engine too slow: big_world_par8 is {speedup:.2}x \
                 big_world_seq (floor {par_min_speedup:.2}x)"
            );
            cohfree_bench::report::finish();
            std::process::exit(1);
        }
        let serving = perf::serving_par_speedup(&mac).unwrap_or_else(|| {
            eprintln!("perf: --par-gate needs the serving_seq/par8 rows");
            std::process::exit(2);
        });
        if serving < par_min_speedup {
            eprintln!(
                "perf: parallel engine too slow on serving: serving_par8 is {serving:.2}x \
                 serving_seq (floor {par_min_speedup:.2}x)"
            );
            cohfree_bench::report::finish();
            std::process::exit(1);
        }
        println!(
            "perf: par gate ok — big_world_par8 {speedup:.2}x big_world_seq, \
             serving_par8 {serving:.2}x serving_seq"
        );
    }

    if metrics_gate {
        let (off_eps, on_eps) = perf::metrics_overhead();
        // Positive = the enabled registry costs throughput.
        let regression = 1.0 - on_eps / off_eps.max(1e-9);
        if regression > metrics_max_regression {
            eprintln!(
                "perf: metrics registry too costly: {on_eps:.0} events/s on vs \
                 {off_eps:.0} off ({:.2}% regression, bound {:.2}%)",
                regression * 100.0,
                metrics_max_regression * 100.0
            );
            cohfree_bench::report::finish();
            std::process::exit(1);
        }
        println!(
            "perf: metrics overhead ok — {on_eps:.0} events/s on vs {off_eps:.0} off \
             ({:+.2}%)",
            -regression * 100.0
        );
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("perf: cannot parse baseline {path}: {e:?}");
            std::process::exit(2);
        });
        let baseline = perf::metrics_from_document(&doc).unwrap_or_else(|e| {
            eprintln!("perf: {e}");
            std::process::exit(2);
        });
        let current = perf::metrics(&micro, &mac);
        let violations = perf::compare(&current, &baseline, tolerance);
        if violations.is_empty() {
            println!("perf: all benchmarks within {tolerance:.1}x of baseline");
        } else {
            eprintln!("perf: regression beyond {tolerance:.1}x of baseline:");
            for v in &violations {
                eprintln!("  {v}");
            }
            cohfree_bench::report::finish();
            std::process::exit(1);
        }
    }

    cohfree_bench::report::finish();
}
