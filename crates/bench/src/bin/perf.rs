//! The performance-regression harness.
//!
//! ```sh
//! # Measure and write the document:
//! COHFREE_JSON=BENCH_PERF.json cargo run --release -p cohfree-bench --bin perf
//! # Measure and gate against the checked-in baseline (CI):
//! cargo run --release -p cohfree-bench --bin perf -- \
//!     --check crates/bench/perf_baseline.json --tolerance 3.0
//! ```
//!
//! With `--check`, exits non-zero if any benchmark regressed past the
//! tolerance factor. See `cohfree_bench::perf` for the baseline policy.

use cohfree_bench::perf;
use cohfree_core::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 3.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check requires a baseline path");
                    std::process::exit(2);
                }));
            }
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--tolerance requires a factor");
                    std::process::exit(2);
                });
                tolerance = v.parse().unwrap_or_else(|e| {
                    eprintln!("bad tolerance {v:?}: {e}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --check/--tolerance)");
                std::process::exit(2);
            }
        }
    }

    let micro = perf::micro();
    let mac = perf::macro_suite();
    // The macro suite runs whole figures, which record their cluster
    // snapshots into the report collector; drop those so BENCH_PERF.json
    // carries only the perf tables (megabytes of snapshots would drown the
    // numbers the regression gate reads).
    cohfree_bench::report::reset();
    let (tm, tg) = perf::tables(&micro, &mac);
    tm.print();
    tg.print();

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("perf: cannot parse baseline {path}: {e:?}");
            std::process::exit(2);
        });
        let baseline = perf::metrics_from_document(&doc).unwrap_or_else(|e| {
            eprintln!("perf: {e}");
            std::process::exit(2);
        });
        let current = perf::metrics(&micro, &mac);
        let violations = perf::compare(&current, &baseline, tolerance);
        if violations.is_empty() {
            println!("perf: all benchmarks within {tolerance:.1}x of baseline");
        } else {
            eprintln!("perf: regression beyond {tolerance:.1}x of baseline:");
            for v in &violations {
                eprintln!("  {v}");
            }
            cohfree_bench::report::finish();
            std::process::exit(1);
        }
    }

    cohfree_bench::report::finish();
}
