//! Extension: cluster-wide scalability with simultaneous borrowers.
fn main() {
    cohfree_bench::experiments::ext_tenants::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
