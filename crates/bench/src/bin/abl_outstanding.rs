//! Ablation: RMC request slots and FPGA-vs-ASIC front-end speed.
fn main() {
    cohfree_bench::experiments::ablations::outstanding(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
