//! Regenerates Figure 8: memory-server congestion under client stress.
fn main() {
    cohfree_bench::experiments::fig8::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
