//! Extension: read-only parallel phases (Section IV-B of the paper).
fn main() {
    cohfree_bench::experiments::ext_parallel::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
