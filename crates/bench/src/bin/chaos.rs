//! Chaos campaign: randomized fault churn over many seeds, invariant
//! oracles after every run, sequential-vs-parallel byte comparison.
//!
//! Environment:
//! * `COHFREE_CHAOS_SEED` — base seed (default `0xC4A0`); run `k` of the
//!   campaign uses `seed + k`.
//! * `COHFREE_CHAOS_RUNS` — seeds per scenario (default by scale:
//!   smoke 5, default 25, paper 100).
//! * `COHFREE_PARALLEL_WORLD` — partition count for the byte-compared
//!   parallel rerun of every cell (default 4; 1 skips the comparison).
//!
//! Exits non-zero if any oracle is violated or any engine pair diverges.

use cohfree_bench::chaos;
use cohfree_bench::Scale;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = Scale::from_env();
    let base_seed = env_u64("COHFREE_CHAOS_SEED", 0xC4A0);
    let runs = env_u64("COHFREE_CHAOS_RUNS", scale.pick(5, 25, 100));
    let accesses = scale.pick(80u64, 200, 500);
    let parallel = std::env::var("COHFREE_PARALLEL_WORLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    eprintln!(
        "chaos campaign: {runs} seeds x {} scenarios x manager on/off \
         (base seed {base_seed:#x}, {accesses} accesses/thread, parallel {parallel})",
        chaos::Scenario::ALL.len()
    );
    let outcomes = chaos::campaign(base_seed, runs, accesses, parallel);
    let mut failures = 0usize;
    for o in &outcomes {
        if o.violations.is_empty() {
            continue;
        }
        failures += 1;
        eprintln!(
            "FAIL {} seed {:#x} manager {}:",
            o.spec.scenario.name(),
            o.spec.seed,
            o.spec.manager
        );
        for v in &o.violations {
            eprintln!("  - {v}");
        }
    }
    let cells = outcomes.len();
    let completed: u64 = outcomes.iter().map(|o| o.completed).sum();
    let failed: u64 = outcomes.iter().map(|o| o.failed).sum();
    let sheds: u64 = outcomes.iter().map(|o| o.shed_deferrals).sum();
    let evacs: u64 = outcomes.iter().map(|o| o.evacuations).sum();
    println!(
        "chaos: {}/{cells} cells passed all oracles \
         ({completed} completed, {failed} failed, {sheds} shed deferrals, \
         {evacs} evacuations)",
        cells - failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
