//! Regenerates Figure 7: the random benchmark (threads / servers / hops).
fn main() {
    cohfree_bench::experiments::fig7::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
