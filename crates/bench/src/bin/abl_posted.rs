//! Ablation: posted vs. blocking remote stores.
fn main() {
    cohfree_bench::experiments::ablations::posted(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
