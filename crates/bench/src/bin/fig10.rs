//! Regenerates Figure 10: b-tree scalability, remote memory vs. remote swap.
fn main() {
    cohfree_bench::experiments::fig10::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
