//! Extension: recovery manager vs static provisioning under fault churn.
fn main() {
    cohfree_bench::experiments::ext_chaos::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
