//! Ablation: the sequential prefetcher (the paper's future work).
fn main() {
    cohfree_bench::experiments::ablations::prefetch(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
