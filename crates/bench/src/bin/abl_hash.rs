//! Ablation: hash index vs. b-tree (footnote 3 of the paper).
fn main() {
    cohfree_bench::experiments::ablations::hash_vs_btree(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
