//! Regenerates Figure 11: PARSEC-class kernels over the three backends.
fn main() {
    cohfree_bench::experiments::fig11::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
