//! Regenerates Figure 6: remote read latency vs. hop distance.
fn main() {
    cohfree_bench::experiments::fig6::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
