//! Extension: hot-plug ballooning vs. worst-case provisioning.
fn main() {
    cohfree_bench::experiments::ext_balloon::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
