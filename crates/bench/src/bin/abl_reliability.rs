//! Ablation: link loss with RMC timeout/retransmission recovery.
fn main() {
    cohfree_bench::experiments::ablations::reliability(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
