//! Ablation: fabric topology (mesh / torus / fully-connected).
fn main() {
    cohfree_bench::experiments::ablations::topology(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
