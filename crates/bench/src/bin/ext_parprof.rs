//! Extension: parallel-engine wall-clock attribution from the
//! self-profiling registry. Set `COHFREE_METRICS=<path>` to also export
//! the final sweep point's raw registry as Prometheus text.
fn main() {
    cohfree_bench::experiments::ext_parprof::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
