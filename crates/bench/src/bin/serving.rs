//! EXT-SERVING standalone bin: open-loop multi-tenant serving, healthy vs
//! mid-run donor crash, with per-tenant SLO rows. Honors `COHFREE_SCALE`,
//! `COHFREE_PARALLEL_WORLD`, `COHFREE_SERVING_*` and `COHFREE_JSON`.
fn main() {
    cohfree_bench::experiments::ext_serving::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
