//! Validates the paper's Equations 1-2 against full simulation.
fn main() {
    cohfree_bench::experiments::analytic::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
