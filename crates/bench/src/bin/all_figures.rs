//! Runs every figure and ablation in sequence (the full reproduction).
use cohfree_bench::{experiments, Scale};

fn main() {
    experiments::run_all(Scale::from_env());
    cohfree_bench::report::finish();
}
