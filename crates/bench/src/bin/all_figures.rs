//! Runs every figure and ablation in sequence (the full reproduction).
use cohfree_bench::{experiments as ex, Scale};

fn main() {
    let s = Scale::from_env();
    ex::fig6::table(s).print();
    ex::fig7::table(s).print();
    ex::fig8::table(s).print();
    ex::fig9::table(s).print();
    ex::fig10::table(s).print();
    ex::fig11::table(s).print();
    ex::analytic::table(s).print();
    ex::ablations::outstanding(s).print();
    ex::ablations::prefetch(s).print();
    ex::ablations::topology(s).print();
    ex::ablations::cacheable(s).print();
    ex::ablations::hash_vs_btree(s).print();
    ex::ablations::residency(s).print();
    ex::ablations::reliability(s).print();
    ex::ablations::posted(s).print();
    ex::ablations::l1_hierarchy(s).print();
    ex::ext_db::table(s).print();
    ex::ext_parallel::table(s).print();
    ex::ext_tenants::table(s).print();
    ex::ext_coherent::table(s).print();
    ex::ext_locality::table(s).print();
    ex::ext_balloon::table(s).print();
    ex::ext_failover::table(s).print();
    ex::ext_breakdown::table(s).print();
    ex::ext_breakdown::overhead_table(s).print();
    cohfree_bench::report::finish();
}
