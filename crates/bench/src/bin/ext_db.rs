//! Extension: the database query study the paper names as its next step.
fn main() {
    cohfree_bench::experiments::ext_db::table(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
