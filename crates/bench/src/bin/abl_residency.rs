//! Ablation: swap resident-set sweep and swap-transport comparison.
fn main() {
    cohfree_bench::experiments::ablations::residency(cohfree_bench::Scale::from_env()).print();
    cohfree_bench::report::finish();
}
