//! Figure 8 — server-side congestion.
//!
//! One memory server (node 6). A *control thread* runs on node 10, which is
//! directly connected to the server by a link no other traffic uses (all
//! stress nodes are chosen so their dimension-order routes avoid it). We
//! measure the control thread's execution time for a fixed access count
//! while 0–7 stress nodes, each with 1–4 threads, hammer the same server.
//!
//! Paper's findings reproduced: flat up to a few stressing nodes, then the
//! control thread slows as the **server RMC** (not the network) congests;
//! and total pressure keeps growing beyond 2 threads per client because
//! network latency relieves the *client* RMC bottleneck.

use crate::table::Table;
use crate::Scale;
use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{SimDuration, SimTime};

/// Server node (interior).
const SERVER: u16 = 6;
/// Control node: one hop from the server over a private link (10 -> 6).
const CONTROL: u16 = 10;
/// Stress nodes whose x-first routes to node 6 avoid the 10->6 link.
const STRESS: [u16; 7] = [1, 2, 3, 4, 5, 7, 8];

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Stressing client nodes.
    pub stress_nodes: usize,
    /// Threads per stressing node.
    pub threads_per_node: u64,
    /// Control-thread execution time in microseconds.
    pub control_time_us: f64,
    /// Server RMC engine utilization over the control thread's lifetime.
    pub server_utilization: f64,
}

fn run_config(
    scale: Scale,
    control_accesses: u64,
    stress_nodes: usize,
    threads_per_node: u64,
) -> Row {
    let server = super::n(SERVER);
    let control = super::n(CONTROL);
    let mut w = World::new(super::cluster());
    // Time-series snapshots only for the fully-stressed configurations —
    // the ones whose server-side congestion the figure is about.
    if stress_nodes == STRESS.len() {
        w.enable_sampling(super::sample_interval(scale));
    }
    let control_resv = w.reserve_remote(control, 8_192, Some(server));
    let control_zone = (control_resv.prefixed_base, control_resv.frames * 4096);

    let control_id = w.spawn_thread(
        ThreadSpec {
            node: control,
            zones: vec![control_zone],
            accesses: control_accesses,
            bytes: 64,
            write_fraction: 0.0,
            think: SimDuration::ns(5),
            seed: 77,
        },
        SimTime::ZERO,
    );
    for (i, &sn) in STRESS.iter().take(stress_nodes).enumerate() {
        let node = super::n(sn);
        let resv = w.reserve_remote(node, 4_096, Some(server));
        let zone = (resv.prefixed_base, resv.frames * 4096);
        for t in 0..threads_per_node {
            // Stress threads run far longer than the control thread so the
            // pressure is sustained over its whole lifetime.
            w.spawn_thread(
                ThreadSpec {
                    node,
                    zones: vec![zone],
                    accesses: control_accesses * 4,
                    bytes: 64,
                    write_fraction: 0.0,
                    think: SimDuration::ns(5),
                    seed: 1_000 + (i as u64) * 16 + t,
                },
                SimTime::ZERO,
            );
        }
    }
    super::apply_parallel(&mut w);
    w.run();
    if stress_nodes == STRESS.len() {
        crate::report::record_snapshot(
            &format!("fig8/{stress_nodes}nodes_{threads_per_node}t"),
            w.snapshot(),
        );
    }
    let elapsed = w.thread_elapsed(control_id);
    Row {
        stress_nodes,
        threads_per_node,
        control_time_us: elapsed.as_us_f64(),
        server_utilization: w.server(server).engine_utilization(SimTime::ZERO + elapsed),
    }
}

/// Run the sweep: 0..=7 stress nodes × {1, 2, 4} threads each.
pub fn run(scale: Scale) -> Vec<Row> {
    let control_accesses = scale.pick(500u64, 5_000, 50_000);
    let mut rows = Vec::new();
    for &tpn in &[1u64, 2, 4] {
        for nodes in 0..=STRESS.len() {
            if nodes == 0 && tpn > 1 {
                continue; // zero-stress baseline measured once
            }
            rows.push(run_config(scale, control_accesses, nodes, tpn));
        }
    }
    rows
}

/// Render the figure as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "Fig. 8 — control-thread time vs. clients stressing one memory server",
        &[
            "stress_nodes",
            "threads_per_node",
            "control_time_us",
            "server_util",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.stress_nodes.to_string(),
            r.threads_per_node.to_string(),
            format!("{:.1}", r.control_time_us),
            format!("{:.2}", r.server_utilization),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_routes_avoid_the_control_link() {
        // The experimental setup's premise: no stress node's route to the
        // server crosses the control link (10 -> 6), in either direction.
        let topo = super::super::cluster().topology;
        for &s in &STRESS {
            let to = topo.route(super::super::n(s), super::super::n(SERVER));
            let from = topo.route(super::super::n(SERVER), super::super::n(s));
            for path in [&to, &from] {
                for w in path.windows(2) {
                    assert!(
                        !(w[0] == super::super::n(CONTROL) && w[1] == super::super::n(SERVER)),
                        "stress node {s} uses the control link"
                    );
                }
            }
            assert!(
                !to.contains(&super::super::n(CONTROL)),
                "stress {s} transits control node"
            );
        }
        assert_eq!(
            topo.hops(super::super::n(CONTROL), super::super::n(SERVER)),
            1
        );
    }

    #[test]
    fn control_thread_flat_then_degrading() {
        let control_accesses = 400;
        let r0 = run_config(Scale::Smoke, control_accesses, 0, 1);
        let r2 = run_config(Scale::Smoke, control_accesses, 2, 4);
        let r7 = run_config(Scale::Smoke, control_accesses, 7, 4);
        // Light stress barely moves the control thread…
        assert!(
            r2.control_time_us < r0.control_time_us * 1.5,
            "2 nodes: {} vs {}",
            r2.control_time_us,
            r0.control_time_us
        );
        // …heavy stress visibly degrades it (server RMC congestion).
        assert!(
            r7.control_time_us > r2.control_time_us * 1.1,
            "7 nodes {} !> 2 nodes {}",
            r7.control_time_us,
            r2.control_time_us
        );
        assert!(
            r7.server_utilization > r2.server_utilization,
            "server utilization must climb: {} vs {}",
            r7.server_utilization,
            r2.server_utilization
        );
    }

    #[test]
    fn more_threads_per_client_still_add_server_pressure() {
        // Paper: "the number of memory requests that arrive to the server
        // increases when increasing the number of threads in the clients,
        // even beyond two threads".
        let r2 = run_config(Scale::Smoke, 400, 6, 2);
        let r4 = run_config(Scale::Smoke, 400, 6, 4);
        assert!(
            r4.server_utilization >= r2.server_utilization * 0.98,
            "4 threads/client must not reduce server pressure: {} vs {}",
            r4.server_utilization,
            r2.server_utilization
        );
    }
}
