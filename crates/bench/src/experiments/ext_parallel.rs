//! EXT-PARALLEL — read-only parallel phases (Section IV-B).
//!
//! The prototype cannot keep remote ranges coherent across cores, so it
//! runs applications serially — *except* read-only phases: "when there is a
//! read-only phase in the application, we can successfully parallelize it
//! and execute it with several threads, as no coherency is needed (once the
//! cache contents corresponding to the write phase have been flushed)".
//!
//! This study quantifies how far that parallelization carries: k threads
//! stream disjoint slices of a remote data set (each with per-line compute,
//! blackscholes-style). The finding: on the FPGA prototype the shared
//! client RMC caps read-only speedup just below 2×; the ASIC-class RMC the
//! paper's conclusions anticipate unlocks near-linear scaling.

use crate::table::Table;
use crate::Scale;
use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{ClusterConfig, SimDuration, SimTime};
use cohfree_rmc::RmcConfig;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// RMC front-end class.
    pub front_end: &'static str,
    /// Threads scanning in parallel.
    pub threads: u64,
    /// Phase wall time in microseconds.
    pub time_us: f64,
    /// Speedup over the 1-thread run of the same front end.
    pub speedup: f64,
}

fn phase_time(rmc: RmcConfig, threads: u64, total_lines: u64, compute: SimDuration) -> f64 {
    let mut cfg = ClusterConfig::prototype();
    cfg.rmc = rmc;
    let mut w = World::new(cfg);
    let client = super::n(6);
    // Each thread scans its own slice, striped across four 1-hop servers
    // so the server side is never the bottleneck.
    let servers = cfg.topology.nodes_at_distance(client, 1);
    let ids: Vec<usize> = (0..threads)
        .map(|k| {
            let server = servers[(k % servers.len() as u64) as usize];
            let resv = w.reserve_remote(client, 4_096, Some(server));
            w.spawn_sequential_thread(
                ThreadSpec {
                    node: client,
                    zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                    accesses: total_lines / threads,
                    bytes: 64,
                    write_fraction: 0.0, // read-only by definition
                    think: compute,
                    seed: 300 + k,
                },
                SimTime::ZERO,
            )
        })
        .collect();
    super::apply_parallel(&mut w);
    w.run();
    ids.iter()
        .map(|&i| w.thread_elapsed(i))
        .max()
        .expect("threads spawned")
        .as_us_f64()
}

/// Run the study.
pub fn run(scale: Scale) -> Vec<Row> {
    let total_lines = scale.pick(2_000u64, 20_000, 200_000);
    let compute = SimDuration::ns(160); // per-line math, blackscholes-class
    let mut rows = Vec::new();
    for (label, rmc) in [("fpga", RmcConfig::default()), ("asic", RmcConfig::asic())] {
        let t1 = phase_time(rmc, 1, total_lines, compute);
        for threads in [1u64, 2, 4, 8] {
            let t = phase_time(rmc, threads, total_lines, compute);
            rows.push(Row {
                front_end: label,
                threads,
                time_us: t,
                speedup: t1 / t,
            });
        }
    }
    rows
}

/// Render the study as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "EXT-PARALLEL — read-only phase: threads vs. wall time",
        &["front_end", "threads", "time_us", "speedup"],
    );
    for r in &rows {
        t.row(vec![
            r.front_end.into(),
            r.threads.to_string(),
            format!("{:.1}", r.time_us),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_caps_below_two_asic_scales_past_it() {
        let rows = run(Scale::Smoke);
        let get = |fe: &str, th: u64| {
            rows.iter()
                .find(|r| r.front_end == fe && r.threads == th)
                .unwrap()
                .speedup
        };
        // FPGA: 2 threads help, 8 threads plateau under 2.2x (client RMC).
        assert!(get("fpga", 2) > 1.3, "2-thread speedup {}", get("fpga", 2));
        assert!(get("fpga", 8) < 2.2, "8-thread speedup {}", get("fpga", 8));
        // ASIC: 8 threads scale well past the FPGA ceiling.
        assert!(
            get("asic", 8) > 2.0 * get("fpga", 8),
            "asic 8t {} vs fpga 8t {}",
            get("asic", 8),
            get("fpga", 8)
        );
        // Speedups are monotone in thread count for both.
        for fe in ["fpga", "asic"] {
            assert!(get(fe, 2) >= get(fe, 1) * 0.98);
            assert!(get(fe, 4) >= get(fe, 2) * 0.95);
        }
    }
}
