//! EXT-BREAKDOWN — per-phase latency attribution for remote accesses.
//!
//! Extension experiment over the span-tracing subsystem: where does a
//! remote access's end-to-end time go? Each scenario runs with tracing
//! enabled and reports the share of total transaction time spent in each
//! phase (serialization stall, client queue, issue, wire, fabric queue,
//! server queue, memory service, reply, retry), plus an analytic
//! cross-check of the stall share where the model predicts one:
//!
//! * **Fig. 6 workload** (single blocking reader, 1 and 6 hops): no slot
//!   contention, so the stall share is ~0 and the wire share must match
//!   the unloaded fabric model.
//! * **Fig. 7 workload** (4 threads, one request slot): the paper's
//!   serialization quirk. With `T` threads sharing one slot, each access
//!   waits out the other `T-1` holders, so the predicted stall share is
//!   `(T-1)/T = 0.75`.
//! * **Swap backend** (fabric-transport remote swap, thrashing): page
//!   faults move whole 4 KiB pages, shifting the breakdown toward wire
//!   time.
//! * **Local backend**: the reference — no remote phases at all.
//!
//! With `COHFREE_TRACE=<path>` the Full-mode span streams of the world
//! scenarios are merged into one Perfetto-loadable Chrome trace.

use crate::table::Table;
use crate::Scale;
use cohfree_core::backend::{LocalMachine, MemSpace, SwapConfig, SwapSpace, SwapTransport};
use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{MsgKind, Phase, Rng, SimDuration, SimTime, TraceConfig};

/// Phases reported as share columns, in table order.
pub const SHARE_PHASES: [Phase; 9] = [
    Phase::Stall,
    Phase::ClientQueue,
    Phase::Issue,
    Phase::Wire,
    Phase::FabricQueue,
    Phase::ServerQueue,
    Phase::Service,
    Phase::Reply,
    Phase::Retry,
];

/// One scenario's attribution result.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scenario label.
    pub scenario: String,
    /// Traced transactions (completed + failed).
    pub txs: u64,
    /// Mean end-to-end transaction latency in nanoseconds (local scenario:
    /// mean access latency).
    pub mean_tx_ns: f64,
    /// Share of total transaction time per phase, [`SHARE_PHASES`] order;
    /// empty for the local reference.
    pub shares: Vec<f64>,
    /// Analytic stall-share prediction, when the model gives one.
    pub predicted_stall: Option<f64>,
}

impl Row {
    /// Measured stall share (0 when no phases were traced).
    pub fn stall_share(&self) -> f64 {
        self.shares.first().copied().unwrap_or(0.0)
    }

    /// Measured wire share (0 when no phases were traced).
    pub fn wire_share(&self) -> f64 {
        self.shares.get(3).copied().unwrap_or(0.0)
    }
}

/// Summarize a traced world into `(txs, mean_tx_ns, shares)`.
fn attribution(w: &World) -> (u64, f64, Vec<f64>) {
    let t = w.trace();
    let txs = t.completed() + t.failed();
    let total = t.phase_total_ns(Phase::Tx);
    let count = t.phase_hist(Phase::Tx).count();
    let mean = if count > 0 { total / count as f64 } else { 0.0 };
    let shares = SHARE_PHASES
        .iter()
        .map(|&p| {
            if total > 0.0 {
                t.phase_total_ns(p) / total
            } else {
                0.0
            }
        })
        .collect();
    (txs, mean, shares)
}

/// Scenario: the Fig. 6 workload — one blocking reader at `hops` hops.
fn fig6_like(scale: Scale, hops: u32) -> (Row, World) {
    let accesses = scale.pick(200u64, 2_000, 20_000);
    let client = super::n(1);
    let mut cfg = super::cluster();
    cfg.trace = TraceConfig::full();
    let mut w = World::new(cfg);
    let server = *w
        .config()
        .topology
        .nodes_at_distance(client, hops)
        .first()
        .expect("distance exists in a 4x4 mesh");
    let resv = w.reserve_remote(client, 4_096, Some(server));
    let mut rng = Rng::new(77_000 + hops as u64);
    let mut t = SimTime::ZERO;
    for _ in 0..accesses {
        let addr = resv.prefixed_base + rng.below(resv.frames * 4096 / 64) * 64;
        t = w.blocking_transaction(t, client, server, MsgKind::ReadReq { bytes: 64 }, addr);
    }
    let (txs, mean, shares) = attribution(&w);
    let row = Row {
        scenario: format!("remote read, {hops} hop{}", if hops > 1 { "s" } else { "" }),
        txs,
        mean_tx_ns: mean,
        shares,
        predicted_stall: Some(0.0),
    };
    (row, w)
}

/// Scenario: the Fig. 7 saturation workload — `threads` threads on one
/// node sharing a single RMC request slot, one server one hop away.
fn fig7_like(scale: Scale, threads: u64) -> (Row, World) {
    let per_thread = scale.pick(300u64, 5_000, 50_000);
    let client = super::n(6); // interior node
    let mut cfg = super::cluster();
    cfg.rmc.request_slots = 1;
    cfg.trace = TraceConfig::full();
    let mut w = World::new(cfg);
    let server = *w
        .config()
        .topology
        .nodes_at_distance(client, 1)
        .first()
        .expect("1-hop neighbour");
    let resv = w.reserve_remote(client, 8_192, Some(server));
    for k in 0..threads {
        w.spawn_thread(
            ThreadSpec {
                node: client,
                zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                accesses: per_thread,
                bytes: 64,
                write_fraction: 0.0,
                think: SimDuration::ns(5),
                seed: 31_000 + k,
            },
            SimTime::ZERO,
        );
    }
    super::apply_parallel(&mut w);
    w.run();
    let (txs, mean, shares) = attribution(&w);
    let row = Row {
        scenario: format!("{threads} threads, 1 slot"),
        txs,
        mean_tx_ns: mean,
        shares,
        // T threads share one slot: an access waits out the other T-1
        // holders before its own turn, so stall/(stall+own) = (T-1)/T.
        predicted_stall: Some((threads - 1) as f64 / threads as f64),
    };
    (row, w)
}

/// Scenario: fabric-transport remote swap, thrashing (Fig. 9-class swap
/// baseline under the worst locality).
fn swap_like(scale: Scale) -> Row {
    let pages = scale.pick(32u64, 128, 512);
    let sweeps = scale.pick(2u32, 4, 8);
    let mut cfg = super::cluster();
    cfg.trace = TraceConfig::aggregate();
    let mut m = SwapSpace::remote(
        cfg,
        super::n(1),
        SwapConfig {
            cache_pages: pages as usize / 4,
            zone_frames: 4_096,
            servers: Some(vec![super::n(2)]),
            transport: SwapTransport::Fabric,
        },
    );
    let va = m.alloc(pages * 4096);
    for i in 0..pages {
        m.write_u64(va + i * 4096, i);
    }
    for _ in 0..sweeps {
        for i in 0..pages {
            m.read_u64(va + i * 4096);
        }
    }
    let w = m.world().expect("fabric swap has a world");
    let (txs, mean, shares) = attribution(w);
    Row {
        scenario: "remote swap (4 KiB pages)".to_string(),
        txs,
        mean_tx_ns: mean,
        shares,
        predicted_stall: None,
    }
}

/// Scenario: the all-local reference machine (no remote phases).
fn local_like(scale: Scale) -> Row {
    let accesses = scale.pick(2_000u64, 20_000, 200_000);
    let bytes = 1u64 << 22;
    let mut m = LocalMachine::new(super::cluster(), 1 << 30);
    let va = m.alloc(bytes);
    let mut rng = Rng::new(4_040);
    let t0 = m.now();
    for _ in 0..accesses {
        m.read_u64(va + rng.below(bytes / 8 - 1) * 8);
    }
    Row {
        scenario: "local memory".to_string(),
        txs: accesses,
        mean_tx_ns: m.now().since(t0).as_ns_f64() / accesses as f64,
        shares: Vec::new(),
        predicted_stall: None,
    }
}

/// Run all scenarios. World-backed scenarios are traced in Full mode and
/// their span streams recorded for `COHFREE_TRACE` export.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for hops in [1u32, 6] {
        let (row, w) = fig6_like(scale, hops);
        let name = format!("ext_breakdown/remote_{hops}hop");
        crate::report::record_snapshot(&name, w.snapshot());
        crate::report::record_trace(&name, &w);
        rows.push(row);
    }
    let (row, w) = fig7_like(scale, 4);
    crate::report::record_snapshot("ext_breakdown/4t_1slot", w.snapshot());
    crate::report::record_trace("ext_breakdown/4t_1slot", &w);
    rows.push(row);
    rows.push(swap_like(scale));
    rows.push(local_like(scale));
    rows
}

/// Aggregate-mode tracing overhead on the Fig. 6 run: execute the figure's
/// own sweep (`fig6::run_traced` — world construction, sampling probe, and
/// final snapshots included) with tracing Off versus Aggregate. Simulated
/// results must be identical and the wall-clock ratio ~1. Wall times are
/// the minimum over a few interleaved repetitions, which suppresses timer
/// and scheduler noise. Returns `(mean_ns_off, mean_ns_aggregate,
/// wall_ratio)`.
pub fn aggregate_overhead(scale: Scale) -> (f64, f64, Option<f64>) {
    let sweep = |trace: TraceConfig| {
        let wall = std::time::Instant::now();
        let (_, rows, _) = super::fig6::run_traced(scale, trace, false);
        let mean = rows.iter().map(|r| r.mean_ns).sum::<f64>() / rows.len() as f64;
        (mean, wall.elapsed().as_secs_f64())
    };
    // The ratio is host wall-clock — the one number in the whole report that
    // cannot be reproducible run-to-run. `COHFREE_NO_WALLCLOCK=1` skips the
    // timing repetitions (the simulated means stay exact); the determinism
    // end-to-end test sets it so byte-comparison covers everything else.
    if std::env::var("COHFREE_NO_WALLCLOCK").is_ok_and(|v| !v.is_empty() && v != "0") {
        let (mean_off, _) = sweep(TraceConfig::default());
        let (mean_agg, _) = sweep(TraceConfig::aggregate());
        return (mean_off, mean_agg, None);
    }
    let (mut mean_off, mut wall_off) = (0.0, f64::INFINITY);
    let (mut mean_agg, mut wall_agg) = (0.0, f64::INFINITY);
    for _ in 0..3 {
        let (m, wl) = sweep(TraceConfig::default());
        mean_off = m;
        wall_off = wall_off.min(wl);
        let (m, wl) = sweep(TraceConfig::aggregate());
        mean_agg = m;
        wall_agg = wall_agg.min(wl);
    }
    (mean_off, mean_agg, Some(wall_agg / wall_off.max(1e-9)))
}

/// Render the attribution table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "EXT-BREAKDOWN — per-phase latency attribution of remote accesses",
        &[
            "scenario",
            "txs",
            "mean_tx_ns",
            "stall",
            "client_q",
            "issue",
            "wire",
            "fabric_q",
            "server_q",
            "service",
            "reply",
            "retry",
            "pred_stall",
        ],
    );
    let pct = |v: f64| format!("{:.1}%", v * 100.0);
    for r in &rows {
        let mut cells = vec![
            r.scenario.clone(),
            r.txs.to_string(),
            format!("{:.1}", r.mean_tx_ns),
        ];
        if r.shares.is_empty() {
            cells.extend(std::iter::repeat_n("-".to_string(), SHARE_PHASES.len()));
        } else {
            cells.extend(r.shares.iter().map(|&s| pct(s)));
        }
        cells.push(match r.predicted_stall {
            Some(p) => pct(p),
            None => "-".to_string(),
        });
        t.row(cells);
    }
    t
}

/// Render the Aggregate-mode overhead check as its own small table.
pub fn overhead_table(scale: Scale) -> Table {
    let (off, agg, ratio) = aggregate_overhead(scale);
    let mut t = Table::new(
        "EXT-BREAKDOWN — Aggregate tracing overhead (fig6 workload)",
        &["trace", "mean_tx_ns", "wall_ratio"],
    );
    t.row(vec![
        "off".into(),
        format!("{off:.1}"),
        if ratio.is_some() { "1.00" } else { "-" }.into(),
    ]);
    t.row(vec![
        "aggregate".into(),
        format!("{agg:.1}"),
        match ratio {
            Some(r) => format!("{r:.2}"),
            None => "-".into(),
        },
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_share_matches_the_analytic_model() {
        let rows = run(Scale::Smoke);
        // Uncontended blocking reads: stall is (essentially) zero.
        let r1 = &rows[0];
        assert!(
            r1.stall_share() < 0.02,
            "1-hop blocking stall share {}",
            r1.stall_share()
        );
        // Phase shares of a traced scenario sum to 1 (exact tiling).
        let sum: f64 = r1.shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        // 4 threads on 1 slot: stall share within 10% of (T-1)/T.
        let r4 = rows
            .iter()
            .find(|r| r.scenario.starts_with("4 threads"))
            .expect("fig7 scenario present");
        let predicted = r4.predicted_stall.unwrap();
        let measured = r4.stall_share();
        assert!(
            (measured - predicted).abs() / predicted < 0.10,
            "stall share {measured} vs predicted {predicted}"
        );
        // Wire share grows with distance.
        assert!(
            rows[1].wire_share() > r1.wire_share(),
            "6-hop wire share {} must exceed 1-hop {}",
            rows[1].wire_share(),
            r1.wire_share()
        );
        // Swap moves whole pages: its transactions are much longer.
        let swap = rows
            .iter()
            .find(|r| r.scenario.starts_with("remote swap"))
            .unwrap();
        assert!(swap.txs > 0, "swap scenario traced no transactions");
        assert!(swap.mean_tx_ns > r1.mean_tx_ns);
        // Local reference is far below any remote scenario.
        let local = rows.iter().find(|r| r.scenario == "local memory").unwrap();
        assert!(local.mean_tx_ns < r1.mean_tx_ns / 5.0);
    }

    #[test]
    fn one_hop_breakdown_matches_the_unloaded_model() {
        let (row, w) = fig6_like(Scale::Smoke, 1);
        let client = super::super::n(1);
        let server = *w
            .config()
            .topology
            .nodes_at_distance(client, 1)
            .first()
            .unwrap();
        let est = w
            .estimate_remote_read_latency(client, server, 64)
            .as_ns_f64();
        // Mean measured latency tracks the unloaded estimate...
        let err = (row.mean_tx_ns - est).abs() / est;
        assert!(err < 0.15, "mean {} vs estimate {est}", row.mean_tx_ns);
        // ...and the wire share matches the model's wire fraction.
        let hops = w.config().topology.hops(client, server);
        let req = MsgKind::ReadReq { bytes: 64 };
        let resp = MsgKind::ReadResp { bytes: 64 };
        let wire_est = w.fabric().unloaded_latency(req.wire_bytes(), hops)
            + w.fabric().unloaded_latency(resp.wire_bytes(), hops);
        let predicted_wire = wire_est.as_ns_f64() / est;
        let measured_wire = row.wire_share();
        assert!(
            (measured_wire - predicted_wire).abs() / predicted_wire < 0.10,
            "wire share {measured_wire} vs predicted {predicted_wire}"
        );
    }

    #[test]
    fn aggregate_tracing_does_not_change_simulated_results() {
        let (off, agg, ratio) = aggregate_overhead(Scale::Smoke);
        assert_eq!(off, agg, "tracing must not perturb the simulation");
        // The wall-clock target is <5%; asserting that tightly on a shared
        // CI box would flake, so the hard gate is a gross-regression bound
        // (the reported ratio in the benchmark table carries the real
        // number, ~1.0 on a quiet machine).
        let ratio = ratio.expect("wall timing enabled by default");
        assert!(ratio < 1.5, "aggregate tracing wall ratio {ratio}");
    }
}
