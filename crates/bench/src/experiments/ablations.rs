//! Ablations — design-choice studies beyond the paper's figures.
//!
//! Each returns a [`Table`]; binaries in `src/bin/abl_*.rs` print them.

use crate::table::Table;
use crate::Scale;
use cohfree_core::backend::{
    AllocPolicy, RemoteMemorySpace, RemoteOptions, SwapConfig, SwapSpace, SwapTransport,
};
use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{ClusterConfig, MemSpace, Rng, SimDuration, SimTime, Topology};
use cohfree_rmc::PrefetcherConfig;
use cohfree_workloads::{BTree, HashIndex};

/// ABL-OUTST — client RMC request slots and FPGA vs. ASIC front-end.
///
/// The prototype's I/O-unit RMC allows one outstanding request per core and
/// has an FPGA-speed front-end; the paper expects an integrated (ASIC)
/// memory-controller implementation to close the gap to local memory.
pub fn outstanding(scale: Scale) -> Table {
    let total = scale.pick(2_000u64, 20_000, 200_000);
    let mut t = Table::new(
        "ABL-OUTST — 4-thread random-read time vs. RMC request slots",
        &["front_end", "slots", "time_us", "nacks"],
    );
    let mut points = Vec::new();
    for (label, base) in [
        ("fpga", cohfree_rmc::RmcConfig::default()),
        ("asic", cohfree_rmc::RmcConfig::asic()),
    ] {
        for slots in [1usize, 2, 4, 8, 16] {
            points.push((label, base, slots));
        }
    }
    // Independent worlds per (front-end, slots) point: run them on the
    // worker pool and append rows in input order.
    for cells in crate::parallel_map(points, |(label, base, slots)| {
        let mut cfg = ClusterConfig::prototype();
        cfg.rmc = cohfree_rmc::RmcConfig {
            request_slots: slots,
            ..base
        };
        let mut w = World::new(cfg);
        let client = super::n(6);
        let resv = w.reserve_remote(client, 8_192, Some(super::n(2)));
        let ids: Vec<usize> = (0..4)
            .map(|k| {
                w.spawn_thread(
                    ThreadSpec {
                        node: client,
                        zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                        accesses: total / 4,
                        bytes: 64,
                        write_fraction: 0.0,
                        think: SimDuration::ns(5),
                        seed: 40 + k,
                    },
                    SimTime::ZERO,
                )
            })
            .collect();
        super::apply_parallel(&mut w);
        w.run();
        let time = ids.iter().map(|&i| w.thread_elapsed(i)).max().unwrap();
        let nacks: u64 = ids.iter().map(|&i| w.thread_nacks(i)).sum();
        vec![
            label.into(),
            slots.to_string(),
            format!("{:.1}", time.as_us_f64()),
            nacks.to_string(),
        ]
    }) {
        t.row(cells);
    }
    t
}

/// ABL-PREFETCH — the paper's future-work sequential prefetcher.
pub fn prefetch(scale: Scale) -> Table {
    let lines = scale.pick(2_000u64, 20_000, 200_000);
    let mut t = Table::new(
        "ABL-PREFETCH — sequential vs. random scan, prefetcher off/on",
        &["pattern", "prefetch", "time_ms", "buffer_hit_rate"],
    );
    for pattern in ["sequential", "random"] {
        for pf in [None, Some(PrefetcherConfig::default())] {
            let mut m = RemoteMemorySpace::with_options(
                super::cluster(),
                super::n(1),
                AllocPolicy::AlwaysRemote,
                RemoteOptions {
                    prefetch: pf,
                    ..RemoteOptions::default()
                },
            );
            let va = m.alloc(lines * 64);
            let mut rng = Rng::new(77);
            let t0 = m.now();
            for i in 0..lines {
                let line = if pattern == "sequential" {
                    i
                } else {
                    rng.below(lines)
                };
                m.read_u64(va + line * 64);
            }
            let elapsed = m.now().since(t0);
            let s = m.stats();
            let hit_rate = if s.prefetch_issued == 0 {
                0.0
            } else {
                s.prefetch_hits as f64 / (s.remote_reads + s.prefetch_hits) as f64
            };
            t.row(vec![
                pattern.into(),
                if pf.is_some() { "on" } else { "off" }.into(),
                format!("{:.3}", elapsed.as_ms_f64()),
                format!("{:.2}", hit_rate),
            ]);
        }
    }
    t
}

/// ABL-TOPO — fabric topology: mesh (prototype), torus, fully-connected.
pub fn topology(scale: Scale) -> Table {
    let total = scale.pick(2_000u64, 20_000, 200_000);
    let mut t = Table::new(
        "ABL-TOPO — 2-thread random reads to a far server, by topology",
        &["topology", "hops", "time_us"],
    );
    let topos: [(&str, Topology); 3] = [
        (
            "mesh 4x4",
            Topology::Mesh2D {
                width: 4,
                height: 4,
            },
        ),
        (
            "torus 4x4",
            Topology::Torus2D {
                width: 4,
                height: 4,
            },
        ),
        ("fully-connected", Topology::FullyConnected { nodes: 16 }),
    ];
    for cells in crate::parallel_map(topos.to_vec(), |(name, topo)| {
        let mut cfg = ClusterConfig::prototype();
        cfg.topology = topo;
        let mut w = World::new(cfg);
        let client = super::n(1);
        let server = super::n(16); // opposite corner of the mesh
        let hops = topo.hops(client, server);
        let resv = w.reserve_remote(client, 8_192, Some(server));
        let ids: Vec<usize> = (0..2)
            .map(|k| {
                w.spawn_thread(
                    ThreadSpec {
                        node: client,
                        zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                        accesses: total / 2,
                        bytes: 64,
                        write_fraction: 0.0,
                        think: SimDuration::ns(5),
                        seed: 60 + k,
                    },
                    SimTime::ZERO,
                )
            })
            .collect();
        super::apply_parallel(&mut w);
        w.run();
        let time = ids.iter().map(|&i| w.thread_elapsed(i)).max().unwrap();
        vec![
            name.into(),
            hops.to_string(),
            format!("{:.1}", time.as_us_f64()),
        ]
    }) {
        t.row(cells);
    }
    t
}

/// ABL-CACHE — remote ranges cacheable write-back vs. uncached I/O space.
pub fn cacheable(scale: Scale) -> Table {
    let n_elems = scale.pick(4_000u64, 40_000, 400_000);
    let mut t = Table::new(
        "ABL-CACHE — remote range cacheable (write-back) vs. uncached",
        &["pattern", "mode", "time_ms"],
    );
    for pattern in ["sequential", "random"] {
        for cacheable in [true, false] {
            let mut m = RemoteMemorySpace::with_options(
                super::cluster(),
                super::n(1),
                AllocPolicy::AlwaysRemote,
                RemoteOptions {
                    cacheable,
                    ..RemoteOptions::default()
                },
            );
            let va = m.alloc(n_elems * 8);
            let mut rng = Rng::new(88);
            let t0 = m.now();
            for i in 0..n_elems {
                let idx = if pattern == "sequential" {
                    i
                } else {
                    rng.below(n_elems)
                };
                m.read_u64(va + idx * 8);
            }
            let elapsed = m.now().since(t0);
            t.row(vec![
                pattern.into(),
                if cacheable { "write-back" } else { "uncached" }.into(),
                format!("{:.3}", elapsed.as_ms_f64()),
            ]);
        }
    }
    t
}

/// ABL-HASH — hash index vs. B-tree over remote memory and remote swap
/// (footnote 3 of the paper).
pub fn hash_vs_btree(scale: Scale) -> Table {
    let n_keys = scale.pick(20_000usize, 150_000, 2_000_000);
    let lookups = scale.pick(300u64, 2_000, 100_000);
    let cache_pages = (n_keys * 24 / 4096 / 4).max(16);
    let mut t = Table::new(
        "ABL-HASH — mean lookup time (us): hash index vs. b-tree (fanout 168)",
        &["backend", "btree_us", "hash_us", "hash_speedup"],
    );
    let keys = super::random_sorted_keys(n_keys, 0x4A5);
    let run_pair = |m: &mut dyn MemSpace| -> (f64, f64) {
        let tree = BTree::bulk_load(m, &keys, 167);
        let mut h = HashIndex::new(m, n_keys as u64);
        for &k in &keys {
            h.insert(m, k, k);
        }
        let mut rng = Rng::new(0x77);
        let t0 = m.now();
        for _ in 0..lookups {
            tree.search(m, keys[rng.below(n_keys as u64) as usize]);
        }
        let btree_us = m.now().since(t0).as_us_f64() / lookups as f64;
        let mut rng = Rng::new(0x77);
        let t0 = m.now();
        for _ in 0..lookups {
            h.get(m, keys[rng.below(n_keys as u64) as usize]);
        }
        let hash_us = m.now().since(t0).as_us_f64() / lookups as f64;
        (btree_us, hash_us)
    };
    let mut remote =
        RemoteMemorySpace::new(super::cluster(), super::n(1), AllocPolicy::AlwaysRemote);
    let (b, h) = run_pair(&mut remote);
    t.row(vec![
        "remote memory".into(),
        format!("{b:.2}"),
        format!("{h:.2}"),
        format!("{:.1}x", b / h),
    ]);
    let mut swap = SwapSpace::remote(
        super::cluster(),
        super::n(1),
        SwapConfig {
            cache_pages,
            ..SwapConfig::default()
        },
    );
    let (b, h) = run_pair(&mut swap);
    t.row(vec![
        "remote swap".into(),
        format!("{b:.2}"),
        format!("{h:.2}"),
        format!("{:.1}x", b / h),
    ]);
    t
}

/// ABL-RESIDENCY — remote-swap resident-set sweep (thrash threshold), and
/// swap transport comparison (Ethernet baseline vs. idealized fabric swap).
pub fn residency(scale: Scale) -> Table {
    let n_keys = scale.pick(20_000usize, 150_000, 2_000_000);
    let searches = scale.pick(300u64, 1_500, 50_000);
    let keys = super::random_sorted_keys(n_keys, 0xE51);
    let tree_pages = (n_keys * 24 / 4096).max(1);
    let mut t = Table::new(
        "ABL-RESIDENCY — b-tree search vs. resident-set size and swap transport",
        &[
            "resident_fraction",
            "transport",
            "search_us",
            "faults_per_search",
        ],
    );
    let mut points = Vec::new();
    for frac in [8u64, 4, 2, 1] {
        for transport in [SwapTransport::default(), SwapTransport::Fabric] {
            points.push((frac, transport));
        }
    }
    for cells in crate::parallel_map(points, |(frac, transport)| {
        let cache_pages = (tree_pages as u64 / frac).max(16) as usize;
        let mut m = SwapSpace::remote(
            super::cluster(),
            super::n(1),
            SwapConfig {
                cache_pages,
                transport,
                ..SwapConfig::default()
            },
        );
        let tree = BTree::bulk_load(&mut m, &keys, 167);
        let mut rng = Rng::new(0x33);
        let f0 = m.stats().major_faults;
        let t0 = m.now();
        for _ in 0..searches {
            tree.search(&mut m, keys[rng.below(n_keys as u64) as usize]);
        }
        let us = m.now().since(t0).as_us_f64() / searches as f64;
        let fps = (m.stats().major_faults - f0) as f64 / searches as f64;
        let label = match transport {
            SwapTransport::Ethernet { .. } => "ethernet",
            SwapTransport::Fabric => "fabric",
        };
        vec![
            format!("1/{frac}"),
            label.into(),
            format!("{us:.2}"),
            format!("{fps:.2}"),
        ]
    }) {
        t.row(cells);
    }
    t
}

/// ABL-L1 — refining the cache model with an L1 level.
///
/// The baseline models the whole on-chip hierarchy as one 2 MiB cache; this
/// ablation adds a 64 KiB L1 in front (the `ClusterConfig::with_l1` preset)
/// and measures how much the refinement changes each verdict. The answer —
/// hot-loop times drop, but every remote-vs-swap comparison keeps its shape
/// — is what justifies the simpler default.
pub fn l1_hierarchy(scale: Scale) -> Table {
    let n_lines = scale.pick(4_000u64, 40_000, 400_000);
    let mut t = Table::new(
        "ABL-L1 — single-cache baseline vs. L1+L2 hierarchy",
        &["pattern", "model", "time_ms"],
    );
    for pattern in ["hot-loop", "stream", "random"] {
        for l1 in [false, true] {
            let cfg = if l1 {
                ClusterConfig::prototype().with_l1()
            } else {
                ClusterConfig::prototype()
            };
            let mut m = RemoteMemorySpace::new(cfg, super::n(1), AllocPolicy::AlwaysRemote);
            let va = m.alloc(n_lines * 64);
            let mut rng = Rng::new(31);
            if pattern == "hot-loop" {
                // Warm the working set so the measurement is the steady
                // state, not the 64 cold remote fetches.
                for line in 0..64u64 {
                    m.read_u64(va + line * 64);
                }
            }
            let t0 = m.now();
            for i in 0..n_lines {
                let line = match pattern {
                    "hot-loop" => i % 64,    // 4 KiB working set
                    "stream" => i,           // sequential
                    _ => rng.below(n_lines), // uniform random
                };
                m.read_u64(va + line * 64);
            }
            let elapsed = m.now().since(t0);
            t.row(vec![
                pattern.into(),
                if l1 { "l1+l2" } else { "single" }.into(),
                format!("{:.3}", elapsed.as_ms_f64()),
            ]);
        }
    }
    t
}

/// ABL-POSTED — HyperTransport posted stores vs. blocking stores.
///
/// The prototype's single-outstanding-request I/O mapping makes every dirty
/// write-back stall the core for a full round trip. Posted semantics (the
/// HT norm for stores) release the core at RMC acceptance. This quantifies
/// how much of the remote-memory penalty is that conservatism.
pub fn posted(scale: Scale) -> Table {
    let writes = scale.pick(2_000u64, 20_000, 200_000);
    let mut t = Table::new(
        "ABL-POSTED — write-heavy random pattern: blocking vs. posted stores",
        &[
            "pattern",
            "stores",
            "time_ms_blocking",
            "time_ms_posted",
            "speedup",
        ],
    );
    for (pattern, stride) in [("page-stride", 4096u64), ("line-stride", 64u64)] {
        let run = |posted: bool| {
            let mut m = RemoteMemorySpace::with_options(
                super::cluster(),
                super::n(1),
                AllocPolicy::AlwaysRemote,
                RemoteOptions {
                    posted_writes: posted,
                    ..RemoteOptions::default()
                },
            );
            let span = 64u64 << 20;
            let va = m.alloc(span);
            for i in 0..writes {
                m.write_u64(va + (i * stride) % span, i);
            }
            m.quiesce();
            m.now().since(cohfree_core::SimTime::ZERO).as_ms_f64()
        };
        let blocking = run(false);
        let posted_t = run(true);
        t.row(vec![
            pattern.into(),
            writes.to_string(),
            format!("{blocking:.3}"),
            format!("{posted_t:.3}"),
            format!("{:.2}x", blocking / posted_t),
        ]);
    }
    t
}

/// ABL-RELIABILITY — link-loss sweep with RMC timeout/retransmission.
///
/// The paper defers "concerns related to communication reliability"; this
/// study quantifies them: per-traversal loss probability vs. achieved
/// random-read time, retransmissions and duplicate responses.
pub fn reliability(scale: Scale) -> Table {
    let total = scale.pick(2_000u64, 20_000, 200_000);
    let mut t = Table::new(
        "ABL-RELIABILITY — 2-thread random reads under link loss",
        &[
            "loss_rate",
            "time_us",
            "dropped",
            "retransmissions",
            "duplicates",
        ],
    );
    for cells in crate::parallel_map(vec![0.0, 1e-5, 1e-4, 1e-3, 1e-2], |loss| {
        let mut cfg = ClusterConfig::prototype();
        cfg.fabric.loss_rate = loss;
        let mut w = World::new(cfg);
        let client = super::n(1);
        let resv = w.reserve_remote(client, 8_192, Some(super::n(2)));
        let ids: Vec<usize> = (0..2)
            .map(|k| {
                w.spawn_thread(
                    ThreadSpec {
                        node: client,
                        zones: vec![(resv.prefixed_base, resv.frames * 4096)],
                        accesses: total / 2,
                        bytes: 64,
                        write_fraction: 0.0,
                        think: SimDuration::ns(5),
                        seed: 90 + k,
                    },
                    SimTime::ZERO,
                )
            })
            .collect();
        super::apply_parallel(&mut w);
        w.run();
        let time = ids.iter().map(|&i| w.thread_elapsed(i)).max().unwrap();
        // Sum recovery counters across every client RMC, not just node 1's:
        // the study generalizes to multi-client configurations.
        let nodes = 1..=w.config().topology.num_nodes();
        let retx: u64 = nodes
            .clone()
            .map(|i| w.client(super::n(i)).retransmissions())
            .sum();
        let dups: u64 = nodes.map(|i| w.client(super::n(i)).duplicates()).sum();
        vec![
            format!("{loss:.0e}"),
            format!("{:.1}", time.as_us_f64()),
            w.fabric().dropped().to_string(),
            retx.to_string(),
            dups.to_string(),
        ]
    }) {
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_slots_and_asic_help_saturated_clients() {
        let t = outstanding(Scale::Smoke);
        let fpga1: f64 = t.rows()[0][2].parse().unwrap();
        let fpga16: f64 = t.rows()[4][2].parse().unwrap();
        let asic16: f64 = t.rows()[9][2].parse().unwrap();
        assert!(
            fpga16 <= fpga1 * 1.02,
            "more slots must not hurt: {fpga1} -> {fpga16}"
        );
        assert!(
            asic16 < fpga16 * 0.7,
            "ASIC must clearly beat FPGA: {asic16} vs {fpga16}"
        );
    }

    #[test]
    fn prefetch_helps_sequential_not_random() {
        let t = prefetch(Scale::Smoke);
        let seq_off: f64 = t.rows()[0][2].parse().unwrap();
        let seq_on: f64 = t.rows()[1][2].parse().unwrap();
        let rand_off: f64 = t.rows()[2][2].parse().unwrap();
        let rand_on: f64 = t.rows()[3][2].parse().unwrap();
        assert!(seq_on < seq_off * 0.8, "sequential: {seq_off} -> {seq_on}");
        assert!(
            rand_on > rand_off * 0.9,
            "random should not benefit: {rand_off} -> {rand_on}"
        );
    }

    #[test]
    fn richer_topologies_cut_far_traffic_time() {
        let t = topology(Scale::Smoke);
        let mesh: f64 = t.rows()[0][2].parse().unwrap();
        let torus: f64 = t.rows()[1][2].parse().unwrap();
        let full: f64 = t.rows()[2][2].parse().unwrap();
        assert!(torus < mesh, "torus {torus} vs mesh {mesh}");
        assert!(full < torus, "fully-connected {full} vs torus {torus}");
    }

    #[test]
    fn caching_remote_ranges_wins_everywhere_here() {
        let t = cacheable(Scale::Smoke);
        // sequential: cacheable amortizes 8 accesses per line.
        let seq_wb: f64 = t.rows()[0][2].parse().unwrap();
        let seq_uc: f64 = t.rows()[1][2].parse().unwrap();
        assert!(
            seq_wb < seq_uc * 0.5,
            "write-back {seq_wb} vs uncached {seq_uc}"
        );
    }

    #[test]
    fn hash_beats_btree_in_remote_memory() {
        let t = hash_vs_btree(Scale::Smoke);
        let remote_b: f64 = t.rows()[0][1].parse().unwrap();
        let remote_h: f64 = t.rows()[0][2].parse().unwrap();
        assert!(remote_h < remote_b, "hash {remote_h} vs btree {remote_b}");
    }

    #[test]
    fn l1_speeds_hot_loops_without_changing_miss_behaviour() {
        let t = l1_hierarchy(Scale::Smoke);
        let hot_single: f64 = t.rows()[0][2].parse().unwrap();
        let hot_l1: f64 = t.rows()[1][2].parse().unwrap();
        assert!(
            hot_l1 < hot_single * 0.5,
            "hot loop: l1 {hot_l1} vs single {hot_single}"
        );
        // Random (miss-dominated) pattern is essentially unchanged.
        let rand_single: f64 = t.rows()[4][2].parse().unwrap();
        let rand_l1: f64 = t.rows()[5][2].parse().unwrap();
        let rel = (rand_l1 - rand_single).abs() / rand_single;
        assert!(rel < 0.05, "random pattern shifted {rel:.3}");
    }

    #[test]
    fn posted_stores_help_spilling_write_patterns() {
        let t = posted(Scale::Smoke);
        let blocking: f64 = t.rows()[0][2].parse().unwrap();
        let posted_t: f64 = t.rows()[0][3].parse().unwrap();
        assert!(
            posted_t < blocking * 0.9,
            "page-stride: posted {posted_t} vs blocking {blocking}"
        );
    }

    #[test]
    fn loss_costs_time_but_never_correctness() {
        let t = reliability(Scale::Smoke);
        let clean: f64 = t.rows()[0][1].parse().unwrap();
        let lossy: f64 = t.rows()[4][1].parse().unwrap(); // 1e-2
        assert!(
            lossy > clean * 1.02,
            "1% loss must cost time: {clean} vs {lossy}"
        );
        let dropped: u64 = t.rows()[4][2].parse().unwrap();
        assert!(dropped > 0, "1% loss must actually drop messages");
        let retx: u64 = t.rows()[4][3].parse().unwrap();
        assert!(retx > 0, "recovery must have engaged");
        let dropped_clean: u64 = t.rows()[0][2].parse().unwrap();
        assert_eq!(dropped_clean, 0, "lossless fabric drops nothing");
        let retx_clean: u64 = t.rows()[0][3].parse().unwrap();
        assert_eq!(retx_clean, 0, "lossless fabric must not retransmit");
    }

    #[test]
    fn shrinking_residency_degrades_swap() {
        let t = residency(Scale::Smoke);
        // Rows alternate ethernet/fabric over growing pressure (1/8 .. 1/1).
        let eth_small: f64 = t.rows()[0][2].parse().unwrap(); // 1/8 resident? no: frac 8 => cache = tree/8
        let eth_full: f64 = t.rows()[6][2].parse().unwrap(); // frac 1 => cache = tree
        assert!(
            eth_full < eth_small,
            "full residency {eth_full} must beat 1/8 residency {eth_small}"
        );
    }
}
