//! EXT-COHERENT — the coherency overhead the paper gets rid of.
//!
//! The paper's introduction argues that aggregating chipsets (3Leaf's Aqua,
//! ScaleMP, Numascale) pay "the penalty of a lack of scalability and a
//! larger memory access latency due to the limitations and overhead imposed
//! by the protocol that keeps coherency among the nodes of the cluster" —
//! *even when the application runs on a single node* and needs only memory.
//!
//! This study runs the **same single-node application** two ways:
//!
//! * the paper's architecture: every remote access is a plain RMC
//!   transaction, coherency confined to the node;
//! * the baseline: Opteron-style broadcast coherence stretched across the
//!   fabric — every miss makes the home node snoop all other members of the
//!   inter-node coherency domain and wait for their answers.
//!
//! Sweeping the domain size shows the thesis directly: the baseline's
//! latency and fabric traffic grow with the amount of aggregated hardware;
//! the paper's architecture is flat because the coherency domain never
//! leaves the node.

use crate::table::Table;
use crate::Scale;
use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{SimDuration, SimTime};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Architecture label.
    pub system: String,
    /// Nodes in the inter-node coherency domain (1 = none extends beyond
    /// the requesting node).
    pub domain: usize,
    /// Mean time per access in nanoseconds.
    pub per_access_ns: f64,
    /// Fabric messages per access.
    pub msgs_per_access: f64,
    /// Snoop probes absorbed per member RMC (the bystander tax).
    pub probes_per_member: f64,
}

/// Domain members in activation order: requester, home, then nodes spread
/// across the mesh.
const MEMBERS: [u16; 16] = [1, 2, 5, 6, 3, 7, 9, 10, 4, 8, 11, 13, 12, 14, 15, 16];

fn run_one(coherent_members: usize, accesses: u64) -> Row {
    let mut w = World::new(super::cluster());
    let client = super::n(1);
    let home = super::n(2);
    let coherent = coherent_members > 1;
    if coherent {
        w.set_coherent_domain(
            MEMBERS[..coherent_members]
                .iter()
                .map(|&i| super::n(i))
                .collect(),
        )
        .expect("lossless, fault-free config");
    }
    let resv = w.reserve_remote(client, 4_096, Some(home));
    let spec = ThreadSpec {
        node: client,
        zones: vec![(resv.prefixed_base, resv.frames * 4096)],
        accesses,
        bytes: 64,
        write_fraction: 0.0,
        think: SimDuration::ns(5),
        seed: 77,
    };
    let id = if coherent {
        w.spawn_coherent_thread(spec, SimTime::ZERO)
    } else {
        w.spawn_thread(spec, SimTime::ZERO)
    };
    super::apply_parallel(&mut w);
    w.run();
    let elapsed = w.thread_elapsed(id);
    let bystanders = coherent_members.saturating_sub(2).max(1) as f64;
    let total_probes: f64 = (1..=16)
        .map(|i| w.server(super::n(i)).probes() as f64)
        .sum();
    Row {
        system: if coherent {
            format!("coherent DSM ({coherent_members} nodes)")
        } else {
            "cohfree (non-coherent)".to_string()
        },
        domain: coherent_members,
        per_access_ns: elapsed.as_ns_f64() / accesses as f64,
        msgs_per_access: w.fabric().delivered() as f64 / accesses as f64,
        probes_per_member: if coherent {
            total_probes / bystanders / accesses as f64
        } else {
            0.0
        },
    }
}

/// Run the sweep: the paper's architecture, then coherent domains of
/// growing size.
pub fn run(scale: Scale) -> Vec<Row> {
    let accesses = scale.pick(1_000u64, 10_000, 100_000);
    crate::parallel_map(vec![1usize, 2, 4, 8, 12, 16], |members| {
        run_one(members, accesses)
    })
}

/// Render the study as a table.
pub fn table(scale: Scale) -> Table {
    let rows = run(scale);
    let mut t = Table::new(
        "EXT-COHERENT — the same single-node app, with and without inter-node coherency",
        &[
            "system",
            "ns_per_access",
            "fabric_msgs_per_access",
            "probes_per_member",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.system.clone(),
            format!("{:.0}", r.per_access_ns),
            format!("{:.1}", r.msgs_per_access),
            format!("{:.2}", r.probes_per_member),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherency_tax_grows_with_aggregation_noncoherent_is_flat() {
        let rows = run(Scale::Smoke);
        let noncoh = &rows[0];
        let d2 = rows.iter().find(|r| r.domain == 2).unwrap();
        let d16 = rows.iter().find(|r| r.domain == 16).unwrap();
        // Message count: non-coherent = 2/access; coherent grows linearly.
        assert!((noncoh.msgs_per_access - 2.0).abs() < 0.1);
        assert!(
            d16.msgs_per_access > d2.msgs_per_access + 20.0,
            "16-node domain must broadcast: {} vs {}",
            d16.msgs_per_access,
            d2.msgs_per_access
        );
        // Latency: grows with domain size; more than 1.5x by 16 nodes.
        assert!(
            d16.per_access_ns > 1.5 * noncoh.per_access_ns,
            "coherent 16 {} vs non-coherent {}",
            d16.per_access_ns,
            noncoh.per_access_ns
        );
        // Bystander tax: every member absorbs ~1 probe per domain miss.
        assert!((d16.probes_per_member - 1.0).abs() < 0.1);
        assert_eq!(noncoh.probes_per_member, 0.0);
    }
}
