//! Figure 6 — remote access latency vs. hop distance.
//!
//! A single core on node 1 performs blocking 64-byte remote reads against a
//! memory server placed 1–6 hops away; we report the mean end-to-end
//! latency per distance, plus the local-DRAM reference. The paper's
//! described behaviour: latency grows with distance, remote ≫ local.

use crate::table::Table;
use crate::Scale;
use cohfree_core::world::World;
use cohfree_core::{MsgKind, Rng, TraceConfig};

/// One measured distance.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Fabric hops between client and memory server.
    pub hops: u32,
    /// Mean remote read latency in nanoseconds.
    pub mean_ns: f64,
    /// 99th-percentile latency in nanoseconds (log-bucket approximate).
    pub p99_ns: f64,
    /// Unloaded analytic estimate in nanoseconds.
    pub unloaded_ns: f64,
}

/// Run the sweep. Returns `(local reference ns, per-distance rows, total
/// engine events processed across the sweep's worlds)` — the event count
/// feeds the perf harness's events/second throughput figure.
pub fn run(scale: Scale) -> (f64, Vec<Row>, u64) {
    run_traced(scale, TraceConfig::default(), true)
}

/// Run the sweep with an explicit trace configuration. `record` controls
/// whether per-hop snapshots land in the report collector (the overhead
/// benchmark re-runs the figure and must not duplicate them).
pub fn run_traced(scale: Scale, trace: TraceConfig, record: bool) -> (f64, Vec<Row>, u64) {
    let accesses = scale.pick(50u64, 2_000, 20_000);
    let client = super::n(1);
    // Each distance is an independent world with its own derived seed, so
    // the sweep points run on the worker pool; results and snapshots are
    // merged back in input order to keep the report byte-identical to the
    // sequential sweep.
    let points = crate::parallel_map((1..=6u32).collect(), |hops| {
        let mut cfg = super::cluster();
        cfg.trace = trace;
        let mut w = World::new(cfg);
        w.enable_sampling(super::sample_interval(scale));
        let server = *w
            .config()
            .topology
            .nodes_at_distance(client, hops)
            .first()
            .expect("distance exists in a 4x4 mesh");
        let resv = w.reserve_remote(client, 4_096, Some(server));
        let mut rng = Rng::new(4242 + hops as u64);
        let mut t = cohfree_core::SimTime::ZERO;
        let t0 = t;
        for _ in 0..accesses {
            let addr = resv.prefixed_base + rng.below(resv.frames * 4096 / 64) * 64;
            t = w.blocking_transaction(t, client, server, MsgKind::ReadReq { bytes: 64 }, addr);
        }
        let mean_ns = t.since(t0).as_ns_f64() / accesses as f64;
        let p99_ns = w.client(client).latency().quantile_ns(0.99);
        let unloaded_ns = w
            .estimate_remote_read_latency(client, server, 64)
            .as_ns_f64();
        // Local reference: unloaded DRAM access on the client node.
        let local_ns = w.memory(client).unloaded_latency(64).as_ns_f64();
        let row = Row {
            hops,
            mean_ns,
            p99_ns,
            unloaded_ns,
        };
        let slo = crate::report::slo_json(&w);
        (row, local_ns, w.events_processed(), w.snapshot(), slo)
    });
    let mut rows = Vec::new();
    let mut local_ref = 0.0;
    let mut events = 0u64;
    for (row, local_ns, ev, snap, slo) in points {
        local_ref = local_ns;
        events += ev;
        if record {
            crate::report::record_snapshot(&format!("fig6/hops{}", row.hops), snap);
            crate::report::record_slo_json(&format!("fig6/hops{}", row.hops), slo);
        }
        rows.push(row);
    }
    (local_ref, rows, events)
}

/// Render the figure as a table.
pub fn table(scale: Scale) -> Table {
    let (local_ns, rows, _) = run(scale);
    let mut t = Table::new(
        "Fig. 6 — remote read latency vs. distance (64 B reads)",
        &["hops", "mean_ns", "p99_ns", "unloaded_ns", "vs_local"],
    );
    for r in rows {
        t.row(vec![
            r.hops.to_string(),
            format!("{:.1}", r.mean_ns),
            format!("{:.0}", r.p99_ns),
            format!("{:.1}", r.unloaded_ns),
            format!("{:.1}x", r.mean_ns / local_ns),
        ]);
    }
    t.row(vec![
        "local".into(),
        format!("{local_ns:.1}"),
        "-".into(),
        format!("{local_ns:.1}"),
        "1.0x".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_monotone_in_distance_and_dwarfs_local() {
        let (local_ns, rows, events) = run(Scale::Smoke);
        assert_eq!(rows.len(), 6);
        assert!(events > 0, "the sweep must report engine events");
        for w in rows.windows(2) {
            assert!(w[1].mean_ns > w[0].mean_ns, "{w:?}");
        }
        // Remote is prototype-class: microsecond scale, >> local DRAM.
        assert!(rows[0].mean_ns > 8.0 * local_ns);
        assert!(rows[0].mean_ns > 800.0 && rows[0].mean_ns < 5_000.0);
        // Simulation tracks the unloaded model closely when uncontended.
        for r in &rows {
            let err = (r.mean_ns - r.unloaded_ns).abs() / r.unloaded_ns;
            assert!(
                err < 0.15,
                "hop {}: sim {} vs model {}",
                r.hops,
                r.mean_ns,
                r.unloaded_ns
            );
        }
    }
}
