//! Figure 7 — the random benchmark: threads, servers, distance.
//!
//! A fixed total number of 64-byte random remote reads is split across
//! 1/2/4 threads on one client node. Left group: one memory server one hop
//! away. Right group: remote memory striped over four servers, placed at
//! 1, 2 or 3 hops. The paper's findings, all reproduced here:
//!
//! * 1 → 2 threads halves execution time;
//! * 2 → 4 threads does **not** (the client RMC saturates);
//! * four servers do not help (the bottleneck is not the server);
//! * with 4 threads, moving the servers *farther away* slightly *reduces*
//!   time — the retry-arbitration waste at the overloaded client RMC drops
//!   faster than the path latency grows.
//!
//! The client sits at node 6 (an interior node with four 1-hop neighbours).

use crate::table::Table;
use crate::Scale;
use cohfree_core::world::{ThreadSpec, World};
use cohfree_core::{NodeId, SimDuration, SimTime};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Group label ("1 server" / "4 servers").
    pub group: &'static str,
    /// Bar label (e.g. "2t, 1 hop").
    pub label: String,
    /// Threads used.
    pub threads: u64,
    /// Server distance in hops.
    pub hops: u32,
    /// Execution time (max over threads) in microseconds.
    pub time_us: f64,
    /// NACK retries observed at the client (bottleneck witness).
    pub nacks: u64,
}

/// Interior client node with four 1-hop neighbours.
const CLIENT: u16 = 6;

fn run_config(
    scale: Scale,
    name: &str,
    total_accesses: u64,
    threads: u64,
    servers: &[NodeId],
) -> (f64, u64, u64) {
    let client = super::n(CLIENT);
    let mut w = World::new(super::cluster());
    w.enable_sampling(super::sample_interval(scale));
    let zones: Vec<(u64, u64)> = servers
        .iter()
        .map(|&s| {
            let resv = w.reserve_remote(client, 8_192, Some(s));
            (resv.prefixed_base, resv.frames * 4096)
        })
        .collect();
    let ids: Vec<usize> = (0..threads)
        .map(|k| {
            w.spawn_thread(
                ThreadSpec {
                    node: client,
                    zones: zones.clone(),
                    accesses: total_accesses / threads,
                    bytes: 64,
                    write_fraction: 0.0,
                    think: SimDuration::ns(5),
                    seed: 9_000 + k,
                },
                SimTime::ZERO,
            )
        })
        .collect();
    super::apply_parallel(&mut w);
    w.run();
    let t = ids
        .iter()
        .map(|&i| w.thread_elapsed(i))
        .max()
        .expect("threads spawned");
    let nacks: u64 = ids.iter().map(|&i| w.thread_nacks(i)).sum();
    crate::report::record_snapshot(name, w.snapshot());
    (t.as_us_f64(), nacks, w.events_processed())
}

/// Pick `count` servers at exactly `hops` from the client.
fn servers_at(hops: u32, count: usize) -> Vec<NodeId> {
    let topo = super::cluster().topology;
    let c = topo.nodes_at_distance(super::n(CLIENT), hops);
    assert!(c.len() >= count, "need {count} nodes at distance {hops}");
    c[..count].to_vec()
}

/// Run the full figure. Returns the rows plus the total engine events
/// processed across all configurations (for the perf harness's
/// events/second throughput figure).
pub fn run(scale: Scale) -> (Vec<Row>, u64) {
    let total = scale.pick(2_000u64, 40_000, 400_000);
    let mut rows = Vec::new();
    let mut events = 0u64;
    // Left group: one server, one hop.
    let one = servers_at(1, 1);
    for threads in [1u64, 2, 4] {
        let (time_us, nacks, ev) = run_config(
            scale,
            &format!("fig7/1server_{threads}t"),
            total,
            threads,
            &one,
        );
        events += ev;
        rows.push(Row {
            group: "1 server",
            label: format!("{threads}t, 1 hop"),
            threads,
            hops: 1,
            time_us,
            nacks,
        });
    }
    // Right group: four servers; 2 threads at 1 hop, then 4 threads at 1-3.
    let (t2, n2, e2) = run_config(scale, "fig7/4servers_2t_1hop", total, 2, &servers_at(1, 4));
    events += e2;
    rows.push(Row {
        group: "4 servers",
        label: "2t, 1 hop".into(),
        threads: 2,
        hops: 1,
        time_us: t2,
        nacks: n2,
    });
    for hops in [1u32, 2, 3] {
        let (time_us, nacks, ev) = run_config(
            scale,
            &format!("fig7/4servers_4t_{hops}hops"),
            total,
            4,
            &servers_at(hops, 4),
        );
        events += ev;
        rows.push(Row {
            group: "4 servers",
            label: format!("4t, {hops} hop{}", if hops > 1 { "s" } else { "" }),
            threads: 4,
            hops,
            time_us,
            nacks,
        });
    }
    (rows, events)
}

/// Render the figure as a table.
pub fn table(scale: Scale) -> Table {
    let (rows, _) = run(scale);
    let mut t = Table::new(
        "Fig. 7 — random benchmark: threads / servers / distance",
        &["group", "config", "time_us", "nacks"],
    );
    for r in &rows {
        t.row(vec![
            r.group.into(),
            r.label.clone(),
            format!("{:.1}", r.time_us),
            r.nacks.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_shape() {
        let (rows, events) = run(Scale::Smoke);
        assert!(events > 0, "the figure must report engine events");
        let by_label = |l: &str| {
            rows.iter()
                .find(|r| r.label == l && r.group == "1 server")
                .map(|r| r.time_us)
        };
        let t1 = by_label("1t, 1 hop").unwrap();
        let t2 = by_label("2t, 1 hop").unwrap();
        let t4 = by_label("4t, 1 hop").unwrap();
        // 1 -> 2 threads roughly halves.
        let r12 = t2 / t1;
        assert!((0.40..0.70).contains(&r12), "t2/t1 = {r12}");
        // 2 -> 4 threads is far from halving again.
        let r24 = t4 / t2;
        assert!(r24 > 0.72, "t4/t2 = {r24} — client RMC should saturate");

        // Four servers do not rescue four threads at one hop.
        let four_servers_4t_1hop = rows
            .iter()
            .find(|r| r.group == "4 servers" && r.threads == 4 && r.hops == 1)
            .unwrap()
            .time_us;
        assert!(
            four_servers_4t_1hop > 0.8 * t4,
            "4 servers {four_servers_4t_1hop} vs 1 server {t4}: server is not the bottleneck"
        );

        // The counter-intuitive effect: 4 threads get no slower (slightly
        // faster) as the four servers move away.
        let d1 = rows
            .iter()
            .find(|r| r.group == "4 servers" && r.threads == 4 && r.hops == 1)
            .unwrap();
        let d3 = rows
            .iter()
            .find(|r| r.group == "4 servers" && r.threads == 4 && r.hops == 3)
            .unwrap();
        assert!(
            d3.time_us < d1.time_us * 1.05,
            "distance must not hurt a saturated client: 1hop {} vs 3hops {}",
            d1.time_us,
            d3.time_us
        );
    }
}
