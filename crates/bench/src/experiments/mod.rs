//! Experiment implementations, one module per paper figure + ablations.

pub mod ablations;
pub mod analytic;
pub mod ext_balloon;
pub mod ext_breakdown;
pub mod ext_chaos;
pub mod ext_coherent;
pub mod ext_db;
pub mod ext_failover;
pub mod ext_locality;
pub mod ext_parallel;
pub mod ext_parprof;
pub mod ext_serving;
pub mod ext_tenants;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use cohfree_core::{ClusterConfig, NodeId, SimDuration, World};

/// The standard experiment cluster (the 16-node prototype).
pub fn cluster() -> ClusterConfig {
    ClusterConfig::prototype()
}

/// Shorthand node constructor.
pub fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

/// The `--parallel-world` knob: partition count for the conservative
/// parallel engine inside each thread-driven experiment world, read from
/// `COHFREE_PARALLEL_WORLD` (default 1 = the sequential engine). The
/// parallel engine is output-invariant — any partition count produces
/// byte-identical reports — so the knob only changes wall-clock time on
/// multi-core hosts.
///
/// # Panics
/// Panics with the typed [`cohfree_core::EnvKnobError`] message when the
/// variable is set but not a positive integer — a silently ignored typo
/// here would quietly benchmark the wrong engine.
pub fn parallel_world() -> usize {
    use cohfree_core::envknob;
    envknob::lookup("COHFREE_PARALLEL_WORLD", envknob::parse_positive)
        .unwrap_or_else(|e| panic!("{e}"))
        .map_or(1, |p: u64| p as usize)
}

/// Apply the `--parallel-world` knob to a world about to `run()`. Worlds
/// that cannot parallelize (a coherent domain, a single node) degrade to
/// sequential via [`World::set_parallel`]'s clamping.
pub fn apply_parallel(w: &mut World) {
    w.set_parallel(parallel_world());
}

/// Interval for the cluster-wide sampling probe, scaled so each tier keeps
/// a manageable number of time-series points (tens to hundreds per run).
pub fn sample_interval(scale: crate::Scale) -> SimDuration {
    scale.pick(
        SimDuration::us(1),
        SimDuration::us(20),
        SimDuration::us(500),
    )
}

/// Run every figure and ablation in sequence (the full reproduction),
/// printing each table and recording it into the report collector. This is
/// the body of the `all_figures` bin, factored out so the determinism
/// end-to-end test can run the whole suite in-process.
pub fn run_all(s: crate::Scale) {
    fig6::table(s).print();
    fig7::table(s).print();
    fig8::table(s).print();
    fig9::table(s).print();
    fig10::table(s).print();
    fig11::table(s).print();
    analytic::table(s).print();
    ablations::outstanding(s).print();
    ablations::prefetch(s).print();
    ablations::topology(s).print();
    ablations::cacheable(s).print();
    ablations::hash_vs_btree(s).print();
    ablations::residency(s).print();
    ablations::reliability(s).print();
    ablations::posted(s).print();
    ablations::l1_hierarchy(s).print();
    ext_db::table(s).print();
    ext_parallel::table(s).print();
    ext_tenants::table(s).print();
    ext_coherent::table(s).print();
    ext_locality::table(s).print();
    ext_balloon::table(s).print();
    ext_failover::table(s).print();
    ext_breakdown::table(s).print();
    ext_breakdown::overhead_table(s).print();
    ext_chaos::table(s).print();
    ext_serving::table(s).print();
}

/// Generate `count` strictly-ascending pseudo-random u64 keys (dedup'd,
/// deterministic), for bulk-loading trees/indexes.
pub fn random_sorted_keys(count: usize, seed: u64) -> Vec<u64> {
    let mut rng = cohfree_core::Rng::new(seed);
    let mut keys: Vec<u64> = (0..count + count / 8 + 16)
        .map(|_| rng.next_u64())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys.truncate(count);
    assert_eq!(keys.len(), count, "not enough distinct keys generated");
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_sorted_unique_exact() {
        let k = random_sorted_keys(10_000, 5);
        assert_eq!(k.len(), 10_000);
        assert!(k.windows(2).all(|w| w[0] < w[1]));
        // Deterministic.
        assert_eq!(k, random_sorted_keys(10_000, 5));
        assert_ne!(k, random_sorted_keys(10_000, 6));
    }
}
